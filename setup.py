"""Setup shim for environments without the `wheel` package.

`pip install -e .` on this offline box cannot build PEP 660 editable
wheels, so we keep a legacy setup.py enabling
`pip install -e . --no-build-isolation` via the setuptools develop path.
"""
from setuptools import setup

setup()

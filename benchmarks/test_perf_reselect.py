"""Performance gate for the warm incremental re-solve.

The reselection controller runs on the serving box, triggered by live
drift — it cannot afford a cold Eq. 1-5 solve over the full candidate
cross product on every evaluation.  `warm_reselect` restricts the
search pool to the incumbent's columns plus each query's cheapest
candidate and warm-starts local search from the incumbent, which should
be several times cheaper than the cold solve at advisor scale
(hundreds of candidates, dozens of grouped queries) while never scoring
worse than the incumbent on the capped objective.

This gate times both solvers on the identical drifted instance
(m=300 candidates, n=64 grouped queries) and asserts the warm solve is
at least 3x faster.  Results land in
``benchmarks/results/BENCH_reselect.json`` and the trajectory file.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.core import local_search_select, warm_reselect
from repro.core.problem import SelectionInstance

from benchmarks._report import RESULTS_DIR, emit, fmt_row
from benchmarks._trajectory import record as record_trajectory

M_REPLICAS = 300
N_QUERIES = 64
REPEATS = 3


def drifted_instance(rng):
    """A structured selection instance: each candidate specializes in a
    band of query sizes (like partitioning granularities do), so both
    solvers face a landscape with real structure, not iid noise."""
    specialty = rng.uniform(0, 1, M_REPLICAS)       # preferred query size
    sharpness = rng.uniform(4.0, 24.0, M_REPLICAS)  # how peaked the fit is
    sizes = np.sort(rng.uniform(0, 1, N_QUERIES))
    misfit = np.abs(sizes[:, None] - specialty[None, :])
    costs = 0.05 + misfit * sharpness[None, :] \
        + rng.uniform(0, 0.2, (M_REPLICAS,))[None, :]
    weights = rng.dirichlet(np.ones(N_QUERIES)) * N_QUERIES
    storage = rng.uniform(1.0, 2.0, M_REPLICAS)
    return SelectionInstance(
        costs=costs, weights=weights, storage=storage,
        budget=6.0,
        replica_names=tuple(f"cand-{j}" for j in range(M_REPLICAS)))


def test_warm_reselect_beats_cold_solve(capsys):
    """Warm re-solve from the incumbent >= 3x faster than the cold
    full-pool local search on the identical drifted instance, without
    ever scoring worse than the incumbent."""
    rng = np.random.default_rng(2014)
    instance = drifted_instance(rng)
    # The incumbent was optimal for *yesterday's* mix: solve under a
    # shuffled weight vector, then drift the weights.
    stale = SelectionInstance(
        costs=instance.costs,
        weights=np.asarray(instance.weights)[::-1].copy(),
        storage=instance.storage, budget=instance.budget,
        replica_names=instance.replica_names)
    incumbent = local_search_select(stale).selected

    warm_s = cold_s = float("inf")
    warm = cold = None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        warm = warm_reselect(instance, incumbent)
        warm_s = min(warm_s, time.perf_counter() - t0)
        t0 = time.perf_counter()
        cold = local_search_select(instance)
        cold_s = min(cold_s, time.perf_counter() - t0)

    speedup = cold_s / warm_s
    incumbent_cost = instance.capped_workload_cost(incumbent)
    warm_cost = instance.capped_workload_cost(warm.selected)
    pool = int(warm.solver.split("[")[1].split("/")[0])
    lines = [
        fmt_row(["solver", "best ms", "Eq.5 cost"], [12, 12, 12]),
        fmt_row(["cold", cold_s * 1e3, float(cold.cost)], [12, 12, 12]),
        fmt_row(["warm", warm_s * 1e3, float(warm_cost)], [12, 12, 12]),
        f"speedup: {speedup:.1f}x  (pool {pool}/{M_REPLICAS} columns, "
        f"incumbent cost {incumbent_cost:.3f})",
    ]
    emit("bench_reselect_warm", "BENCH: warm reselection solve", lines,
         capsys)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "BENCH_reselect.json"), "w") as f:
        json.dump({
            "m_replicas": M_REPLICAS,
            "n_queries": N_QUERIES,
            "pool_columns": pool,
            "cold_seconds": cold_s,
            "warm_seconds": warm_s,
            "speedup": speedup,
            "incumbent_cost": incumbent_cost,
            "warm_cost": warm_cost,
            "cold_cost": float(cold.cost),
        }, f, indent=2, sort_keys=True)
        f.write("\n")
    record_trajectory(
        "reselect.warm_solve",
        {"speedup": speedup, "warm_ms": warm_s * 1e3},
        directions={"speedup": "higher", "warm_ms": "lower"},
        tolerances={"speedup": 0.5, "warm_ms": 1.0},
    )
    # The warm start is a floor: never worse than the incumbent.
    assert warm_cost <= incumbent_cost + 1e-9
    assert speedup >= 3.0, (
        f"warm solve only {speedup:.1f}x faster than cold "
        f"({warm_s * 1e3:.2f} ms vs {cold_s * 1e3:.2f} ms)")

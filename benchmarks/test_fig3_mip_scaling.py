"""Figure 3 — computation time of the MIP solver.

(a) time vs workload size at several candidate-set sizes;
(b) time vs candidate-set size at several workload sizes.

The paper times a generic MIP solver on the explicit Eq. 1-5 formulation
and finds steep superlinear growth (the motivation for the greedy
algorithm).  Our equivalent of that generic path is the HiGHS backend on
the same matrices; instances mirror the real candidate structure
(scheme-granularity x encoding cost columns, paper-style budget of 3
copies of the smallest replica).

Expected shape (asserted): HiGHS solve time grows strongly with n and m.
We additionally report our specialized branch-and-bound, which exploits
the problem structure and stays in the milliseconds on the same
instances (a reproduction improvement over the paper's generic-solver
numbers), and a worst-case unstructured instance where branch-and-bound
itself degrades exponentially, as Theorem 1 says any exact method must.
"""

import time

import numpy as np
import pytest

from repro import SelectionInstance, branch_and_bound_select, greedy_select, solve_mip

from benchmarks._instances import structured_instance
from benchmarks._report import emit, fmt_row

def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


N_SWEEP = (50, 100, 200)
M_SWEEP = (30, 90, 150)


@pytest.fixture(scope="module")
def scipy_sweep():
    times = {}
    for n in N_SWEEP:
        for m in M_SWEEP:
            inst = structured_instance(n, m, seed=n * 31 + m)
            times[(n, m)], _ = _timed(lambda: solve_mip(inst, backend="scipy"))
    return times


def test_fig3a_time_vs_workload(scipy_sweep, benchmark, capsys):
    benchmark.pedantic(
        lambda: solve_mip(structured_instance(50, 30, seed=1), backend="scipy"),
        rounds=1, iterations=1,
    )
    lines = [fmt_row(["#queries", *(f"m={m}" for m in M_SWEEP)], [9, 9, 9, 9])]
    for n in N_SWEEP:
        lines.append(fmt_row(
            [n, *(scipy_sweep[(n, m)] for m in M_SWEEP)], [9, 9, 9, 9]))
    lines.append("(seconds, HiGHS on the Eq. 1-5 matrices; paper Fig 3a shows")
    lines.append(" the same superlinear growth for its MIP solver)")
    emit("fig3a", "Figure 3a: MIP solve time vs workload size", lines, capsys)
    assert scipy_sweep[(200, 150)] > 3 * scipy_sweep[(50, 150)]


def test_fig3b_time_vs_replicas(scipy_sweep, benchmark, capsys):
    benchmark.pedantic(
        lambda: solve_mip(structured_instance(50, 90, seed=2), backend="scipy"),
        rounds=1, iterations=1,
    )
    lines = [fmt_row(["#replicas", *(f"n={n}" for n in N_SWEEP)], [9, 9, 9, 9])]
    for m in M_SWEEP:
        lines.append(fmt_row(
            [m, *(scipy_sweep[(n, m)] for n in N_SWEEP)], [9, 9, 9, 9]))
    lines.append("(seconds)")
    emit("fig3b", "Figure 3b: MIP solve time vs candidate replicas", lines, capsys)
    assert scipy_sweep[(200, 150)] > 3 * scipy_sweep[(200, 30)]


def test_fig3_specialized_bnb_sidesteps_growth(benchmark, capsys):
    """Our branch-and-bound exploits the selection structure and stays
    around milliseconds where the generic MIP needs seconds."""
    lines = [fmt_row(["n x m", "bnb ms", "greedy ms", "greedy/opt"],
                     [10, 9, 10, 10])]
    for n, m in ((200, 90), (200, 150), (1000, 150)):
        inst = structured_instance(n, m, seed=n + m)
        bnb_t, exact = _timed(lambda: branch_and_bound_select(inst))
        greedy_t, greedy = _timed(lambda: greedy_select(inst))
        assert exact.optimal
        assert exact.cost <= greedy.cost + 1e-9
        lines.append(fmt_row(
            [f"{n}x{m}", bnb_t * 1e3, greedy_t * 1e3, greedy.cost / exact.cost],
            [10, 9, 10, 10]))
    inst = structured_instance(1000, 150, seed=0)
    benchmark(lambda: branch_and_bound_select(inst))
    emit("fig3_bnb", "Figure 3 follow-up: specialized B&B vs greedy", lines, capsys)


def test_fig3_worst_case_is_exponential(benchmark, capsys):
    """Theorem 1 in practice: on unstructured instances (iid-noise cost
    columns, tight budget) even the specialized solver's tree explodes."""
    rng = np.random.default_rng(5)
    n, m = 100, 60
    scale = rng.uniform(0, 6, size=m)
    size = rng.uniform(0, 6, size=n)
    costs = 10.0 * 2.0 ** np.abs(size[:, None] + scale[None, :] - 6.0)
    costs *= rng.uniform(0.85, 1.18, size=(n, m))
    storage = rng.uniform(0.5, 2.0, size=m)
    inst = SelectionInstance(costs, rng.uniform(0.1, 1, n), storage,
                             float(storage.sum() * 0.3))
    elapsed, sel = _timed(
        lambda: branch_and_bound_select(inst, max_nodes=400_000))
    benchmark.pedantic(
        lambda: branch_and_bound_select(inst, max_nodes=50_000),
        rounds=1, iterations=1,
    )
    lines = [
        f"unstructured 100x60: {elapsed:.2f}s, nodes={sel.nodes_explored:,}, "
        f"proved optimal: {sel.optimal}",
        "structured  200x150: milliseconds (see fig3_bnb)",
    ]
    emit("fig3_worstcase", "Figure 3 follow-up: worst-case hardness", lines, capsys)
    assert sel.nodes_explored >= 400_000 or elapsed > 0.5

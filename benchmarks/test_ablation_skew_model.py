"""Ablation — the non-skew assumption of the cost model (Section IV-A).

The paper's Eq. 7 assumes every partition holds |D|/|P| records, which
the equal-count k-d layouts satisfy by construction.  This bench
quantifies what the assumption costs on layouts that *don't* satisfy it
(uniform grids over hotspot-skewed taxi data) by comparing both
estimators against ground truth (actual records in the involved
partitions).

Expected shape (asserted): on the equal-count layout both estimators are
equally accurate; on the skewed grid the skew-aware estimator's scan-term
error is far below the naive one's.
"""

import numpy as np
import pytest

from repro.costmodel import (
    CostModel,
    EncodingCostParams,
    ReplicaProfile,
    expected_scanned_records,
)
from repro.partition import CompositeScheme, GridPartitioner, KdTreePartitioner
from repro.workload import Query

from benchmarks._report import emit, fmt_row


@pytest.fixture(scope="module")
def layouts(taxi_sample):
    return {
        "equal-count KD64xT4": CompositeScheme(KdTreePartitioner(64), 4)
        .build(taxi_sample),
        "uniform grid 8x8x4": GridPartitioner(8, 8, 4).build(taxi_sample),
    }


def sample_queries(universe, rng, n=40):
    out = []
    for _ in range(n):
        frac = float(np.exp(rng.uniform(np.log(0.03), np.log(0.5))))
        w, h, t = universe.width * frac, universe.height * frac, universe.duration * frac
        out.append(Query(
            w, h, t,
            rng.uniform(universe.x_min + w / 2, universe.x_max - w / 2),
            rng.uniform(universe.y_min + h / 2, universe.y_max - h / 2),
            rng.uniform(universe.t_min + t / 2, universe.t_max - t / 2),
        ))
    return out


def test_ablation_skew_assumption(layouts, taxi_sample, benchmark, capsys):
    n = len(taxi_sample)
    rng = np.random.default_rng(7)
    lines = [fmt_row(
        ["layout", "skew", "naive err", "aware err"], [20, 6, 10, 10])]
    errors = {}
    for label, partitioning in layouts.items():
        profile = ReplicaProfile.from_partitioning(
            partitioning, "ROW-PLAIN", n, 0.0, with_counts=True)
        queries = sample_queries(profile.universe, rng)
        naive_errs, aware_errs = [], []
        for q in queries:
            involved = partitioning.involved(q.box())
            truth = float(partitioning.counts[involved].sum())
            if truth == 0:
                continue
            naive = len(involved) * n / partitioning.n_partitions
            aware = expected_scanned_records(profile, q)
            naive_errs.append(abs(naive - truth) / truth)
            aware_errs.append(abs(aware - truth) / truth)
        errors[label] = (float(np.mean(naive_errs)), float(np.mean(aware_errs)))
        lines.append(fmt_row(
            [label, partitioning.skew(), errors[label][0], errors[label][1]],
            [20, 6, 10, 10]))
    lines.append("(mean relative error of the scan-record estimate over 40 queries)")
    emit("ablation_skew", "Ablation: non-skew assumption of Eq. 7", lines, capsys)

    profile = ReplicaProfile.from_partitioning(
        layouts["uniform grid 8x8x4"], "ROW-PLAIN", n, 0.0, with_counts=True)
    q = sample_queries(profile.universe, np.random.default_rng(1), n=1)[0]
    benchmark(lambda: expected_scanned_records(profile, q))

    equal_naive, equal_aware = errors["equal-count KD64xT4"]
    grid_naive, grid_aware = errors["uniform grid 8x8x4"]
    # On the equal-count layout the assumption is harmless...
    assert equal_naive < 0.05 and equal_aware < 0.05
    # ...on the skewed grid it is not, and the skew-aware path fixes it.
    assert grid_naive > 3 * grid_aware
    assert grid_aware < 0.05


def test_skew_aware_routing_changes_decisions(layouts, taxi_sample,
                                              benchmark, capsys):
    """The assumption can flip replica-routing decisions on skewed
    layouts: report how often naive and skew-aware Eq. 7 disagree."""
    n = len(taxi_sample)
    model = CostModel({
        "ROW-PLAIN": EncodingCostParams(scan_rate=10_000, extra_time=0.05),
    })
    profiles = [
        ReplicaProfile.from_partitioning(p, "ROW-PLAIN", n, 0.0, with_counts=True)
        for p in layouts.values()
    ]
    rng = np.random.default_rng(11)
    queries = sample_queries(profiles[0].universe, rng, n=60)
    disagreements = 0
    for q in queries:
        naive_pick = int(np.argmin([model.query_cost(q, p) for p in profiles]))
        aware_pick = int(np.argmin(
            [model.query_cost_skew_aware(q, p) for p in profiles]))
        disagreements += naive_pick != aware_pick
    benchmark.pedantic(
        lambda: model.query_cost_skew_aware(queries[0], profiles[1]),
        rounds=10, iterations=1,
    )
    lines = [f"routing disagreements: {disagreements}/60 queries"]
    emit("ablation_skew_routing",
         "Ablation: routing decisions, naive vs skew-aware", lines, capsys)
    assert disagreements >= 1

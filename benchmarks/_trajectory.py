"""Machine-readable perf history: the benchmark trajectory file.

Every perf benchmark appends its headline numbers to
``benchmarks/results/BENCH_trajectory.json``, keyed by the git SHA that
produced them.  The committed file is the regression baseline: CI
re-runs the benchmarks, appends the fresh numbers, and
``python benchmarks/_trajectory.py --check`` fails when a metric
regresses more than its tolerance against the last *committed* entry
(a different SHA — re-runs on the same SHA replace their own entry
instead of comparing against themselves).

Per-metric ``directions`` say which way is good (``"higher"`` for
speedups and hit rates, ``"lower"`` for seconds and bytes);
``tolerances`` override the default regression band per metric —
wall-clock ratios get a wide band (CI runners vary), deterministic
byte counts stay strict.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time

try:
    from benchmarks._report import RESULTS_DIR
except ImportError:  # run as a script, where sys.path[0] is benchmarks/
    from _report import RESULTS_DIR

TRAJECTORY_PATH = os.path.join(RESULTS_DIR, "BENCH_trajectory.json")

#: Default regression band: a metric may drift this fraction in the bad
#: direction before --check fails.
DEFAULT_TOLERANCE = 0.2


def git_sha() -> str:
    """The current commit SHA, ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def load_trajectory(path: str = TRAJECTORY_PATH) -> dict:
    if not os.path.exists(path):
        return {"version": 1, "entries": []}
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    if not isinstance(data, dict) or "entries" not in data:
        raise ValueError(f"{path} is not a trajectory file")
    return data


def record(
    benchmark: str,
    metrics: dict[str, float],
    directions: dict[str, str],
    tolerances: dict[str, float] | None = None,
    sha: str | None = None,
    path: str = TRAJECTORY_PATH,
) -> dict:
    """Append one benchmark's headline numbers for the current SHA.

    A re-run on the same ``(benchmark, sha)`` replaces its previous
    entry (the latest numbers win), so local iteration does not grow
    the file; distinct SHAs accumulate — that growth *is* the
    trajectory.
    """
    unknown = {k: v for k, v in directions.items() if v not in
               ("higher", "lower")}
    if unknown:
        raise ValueError(f"directions must be 'higher' or 'lower': {unknown}")
    missing = [k for k in directions if k not in metrics]
    if missing:
        raise ValueError(f"directions name unknown metrics: {missing}")
    sha = sha or git_sha()
    entry = {
        "benchmark": str(benchmark),
        "sha": sha,
        "recorded_unix": time.time(),
        "metrics": {k: float(v) for k, v in metrics.items()},
        "directions": dict(directions),
        "tolerances": {k: float(v) for k, v in (tolerances or {}).items()},
    }
    data = load_trajectory(path)
    data["entries"] = [
        e for e in data["entries"]
        if not (e["benchmark"] == entry["benchmark"] and e["sha"] == sha)
    ] + [entry]
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(data, f, indent=2, sort_keys=True)
        f.write("\n")
    return entry


def _baseline_for(entries: list[dict], latest: dict) -> dict | None:
    """The most recent earlier entry of the same benchmark from a
    *different* SHA — the committed number the fresh run is judged
    against."""
    for entry in reversed(entries[:entries.index(latest)]):
        if (entry["benchmark"] == latest["benchmark"]
                and entry["sha"] != latest["sha"]):
            return entry
    return None


def check_regression(threshold: float = DEFAULT_TOLERANCE,
                     path: str = TRAJECTORY_PATH) -> list[str]:
    """Compare each benchmark's newest entry against its last
    different-SHA baseline; returns human-readable problem strings
    (empty = no regression).  Benchmarks without a baseline entry pass
    (the first recorded SHA *creates* the baseline)."""
    data = load_trajectory(path)
    entries = data["entries"]
    problems: list[str] = []
    for name in sorted({e["benchmark"] for e in entries}):
        latest = [e for e in entries if e["benchmark"] == name][-1]
        baseline = _baseline_for(entries, latest)
        if baseline is None:
            continue
        for metric, direction in latest.get("directions", {}).items():
            if metric not in baseline["metrics"]:
                continue
            old = baseline["metrics"][metric]
            new = latest["metrics"][metric]
            tol = latest.get("tolerances", {}).get(metric, threshold)
            if direction == "higher":
                regressed = new < old * (1.0 - tol)
            else:
                regressed = new > old * (1.0 + tol)
            if regressed:
                problems.append(
                    f"{name}.{metric}: {old:.6g} -> {new:.6g} "
                    f"({direction} is better, tolerance {tol:.0%}; "
                    f"baseline sha {baseline['sha'][:12]})")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="inspect or gate the benchmark trajectory file")
    parser.add_argument("--path", default=TRAJECTORY_PATH)
    parser.add_argument("--check", action="store_true",
                        help="exit 1 if any benchmark regressed past its "
                             "tolerance vs the last committed entry")
    parser.add_argument("--threshold", type=float, default=DEFAULT_TOLERANCE,
                        help="default regression band for metrics without "
                             "a per-metric tolerance")
    args = parser.parse_args(argv)

    data = load_trajectory(args.path)
    if not args.check:
        for entry in data["entries"]:
            metrics = ", ".join(f"{k}={v:.6g}" for k, v in
                                sorted(entry["metrics"].items()))
            print(f"{entry['benchmark']} @ {entry['sha'][:12]}: {metrics}")
        print(f"{len(data['entries'])} entries")
        return 0
    problems = check_regression(threshold=args.threshold, path=args.path)
    if problems:
        print("benchmark regression(s) vs committed trajectory:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"trajectory check OK ({len(data['entries'])} entries)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Extension bench — unit placement vs query makespan and recovery.

Connects the placement and scheduling layers: how much does spreading a
replica's storage units across the cluster help query makespan, and what
does recovering from a node failure cost in each layout?

Expected shape (asserted): spread placement yields near-perfect data
locality and much lower full-scan makespan than a hot-node layout; the
recovery-time estimate grows with lost-unit count.
"""

import numpy as np
import pytest

from repro.cluster import (
    ClusterPlacement,
    EnvironmentSpec,
    LOCAL_HADOOP,
    LocalityScheduler,
    estimate_recovery_seconds,
)

#: Scan-dominated environment for the locality experiment: at bench scale
#: each unit holds a few hundred records, so per-task startup must be
#: small (and per-record work large) for placement effects to be visible
#: above the fixed overheads — as they are at production unit sizes.
SCAN_BOUND = EnvironmentSpec(
    name="scan-bound",
    map_slots=16,
    task_startup_seconds=0.2,
    task_startup_jitter=0.0,
    unit_lookup_seconds=0.05,
    effective_io_bandwidth=82_000.0,
    parse_seconds_per_record={"ROW": 20e-3, "COL": 10e-3},
    decompress_seconds_per_byte={"PLAIN": 0.0, "SNAPPY": 0.0, "GZIP": 0.0,
                                 "LZMA2": 0.0},
    cleanup_seconds=0.05,
)
from repro.encoding import encoding_scheme_by_name
from repro.partition import CompositeScheme, KdTreePartitioner
from repro.storage import InMemoryStore, build_replica
from repro.workload import Query

from benchmarks._report import emit, fmt_row


@pytest.fixture(scope="module")
def replicas(taxi_sample):
    a = build_replica(taxi_sample, CompositeScheme(KdTreePartitioner(16), 8),
                      encoding_scheme_by_name("COL-GZIP"), InMemoryStore(),
                      name="a")
    b = build_replica(taxi_sample, CompositeScheme(KdTreePartitioner(4), 4),
                      encoding_scheme_by_name("ROW-PLAIN"), InMemoryStore(),
                      name="b")
    return a, b


def test_ext_placement_vs_makespan(replicas, taxi_sample, benchmark, capsys):
    a, _ = replicas
    scan = Query.from_box(taxi_sample.bounding_box())
    lines = [fmt_row(["placement", "makespan s", "locality"], [12, 11, 9])]
    results = {}
    for label, nodes in (("spread", None), ("hot-node", [0])):
        placement = ClusterPlacement(8, rng=np.random.default_rng(3))
        placement.add_replica(a, policy="spread", nodes=nodes)
        sched = LocalityScheduler(SCAN_BOUND, placement, slots_per_node=2,
                                  network_bandwidth=500.0)
        result = sched.run_query("a", scan)
        results[label] = result
        lines.append(fmt_row(
            [label, result.makespan, f"{result.locality_fraction:.0%}"],
            [12, 11, 9]))
    placement = ClusterPlacement(8, rng=np.random.default_rng(3))
    placement.add_replica(a, policy="spread")
    sched = LocalityScheduler(SCAN_BOUND, placement, slots_per_node=2)
    benchmark(lambda: sched.run_query("a", scan))
    emit("ext_locality", "Extension: placement vs full-scan makespan",
         lines, capsys)
    assert results["spread"].locality_fraction > 0.6
    assert results["spread"].locality_fraction > \
        results["hot-node"].locality_fraction + 0.2
    assert results["spread"].makespan < results["hot-node"].makespan * 0.8


def test_ext_recovery_time_estimate(replicas, benchmark, capsys):
    a, b = replicas
    placement = ClusterPlacement(6, rng=np.random.default_rng(5))
    placement.add_replica(a, nodes=[0, 1, 2])
    placement.add_replica(b, nodes=[3, 4, 5])
    report = placement.fail_node(1)
    plan = placement.plan_recovery(report)
    full = estimate_recovery_seconds(placement, plan, LOCAL_HADOOP)
    # A partial plan with half the steps should cost roughly half.
    from repro.cluster import RecoveryPlan
    half_plan = RecoveryPlan(steps=plan.steps[:len(plan.steps) // 2],
                             unrecoverable=())
    half = estimate_recovery_seconds(placement, half_plan, LOCAL_HADOOP)
    benchmark(lambda: estimate_recovery_seconds(placement, plan, LOCAL_HADOOP))
    lines = [
        f"lost units: {len(report.lost)}; plan complete: {plan.is_complete}",
        f"estimated recovery: {full:.1f}s (half plan: {half:.1f}s)",
    ]
    emit("ext_recovery_time", "Extension: recovery-time estimation",
         lines, capsys)
    assert 0 < half < full

"""Figure 2 (in-text table) — the partitioning trade-off.

The paper illustrates three layouts answering one query:

            Np      data scanned S
    left     4      100%        (coarse uniform grid)
    middle   3       30%        (adaptive layout fitting the data)
    right    8       50%        (fine uniform grid)

and notes the middle case is obviously cheapest while left-vs-right needs
the cost model.  We regenerate the same comparison on real data: a
coarse grid, an adaptive equal-count k-d layout, and a fine grid, with
``Np``, ``S``, and the Eq. 7 estimated cost of each.

Expected shape (asserted): coarse scans the most data with the fewest
partitions; fine scans less data over the most partitions; the adaptive
layout minimizes estimated cost.
"""

import pytest

from repro import (
    Box3,
    CompositeScheme,
    GridPartitioner,
    KdTreePartitioner,
    Query,
    ReplicaProfile,
)
from repro.costmodel import expected_partitions

from benchmarks._report import emit, fmt_row


@pytest.fixture(scope="module")
def layouts(taxi_sample):
    return {
        "coarse-grid": GridPartitioner(2, 2, 1).build(taxi_sample),
        "adaptive-kd": CompositeScheme(KdTreePartitioner(16), 1).build(taxi_sample),
        "fine-grid": GridPartitioner(8, 8, 1).build(taxi_sample),
    }


@pytest.fixture(scope="module")
def query(taxi_sample):
    bb = taxi_sample.bounding_box()
    c = bb.centroid
    # A district-sized query over the densest part of town.
    return Query(bb.width * 0.3, bb.height * 0.3, bb.duration,
                 c.x + bb.width * 0.05, c.y - bb.height * 0.1, c.t)


def test_fig2_tradeoff(layouts, query, taxi_sample, emr_cost_model,
                       benchmark, capsys):
    rows = {}
    n = len(taxi_sample)
    for name, partitioning in layouts.items():
        profile = ReplicaProfile.from_partitioning(
            partitioning, "ROW-PLAIN", n, 0.0)
        involved = partitioning.involved(query.box())
        scanned = int(partitioning.counts[involved].sum())
        np_q = expected_partitions(profile, query)
        cost = emr_cost_model.query_cost(query, profile)
        rows[name] = (int(np_q), scanned / n, cost)

    benchmark.pedantic(
        lambda: layouts["adaptive-kd"].involved(query.box()),
        rounds=5, iterations=1,
    )

    lines = [fmt_row(["layout", "Np", "S scanned", "est cost s"], [12, 5, 10, 11])]
    for name, (np_q, s, cost) in rows.items():
        lines.append(fmt_row([name, np_q, f"{s:.1%}", cost], [12, 5, 10, 11]))
    lines.append("")
    lines.append("paper (illustration): left Np=4 S=100%; middle Np=3 S=30%; "
                 "right Np=8 S=50%")
    emit("fig2", "Figure 2: partitioning trade-off on one query", lines, capsys)

    coarse, adaptive, fine = rows["coarse-grid"], rows["adaptive-kd"], rows["fine-grid"]
    assert coarse[1] > fine[1]          # coarse scans more data
    assert coarse[0] < fine[0]          # ...over fewer partitions
    assert adaptive[2] <= coarse[2] and adaptive[2] <= fine[2]  # middle wins

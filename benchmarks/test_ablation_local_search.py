"""Ablation — greedy + local search vs plain greedy vs exact.

Figure 4 shows greedy's approximation ratio spiking at tight budgets
(1.46 at 0.5x in our reproduction).  The swap-based local-search
refinement is a polynomial-time middle ground; this bench quantifies how
much of the greedy-to-optimal gap it closes across the budget sweep.

Expected shape (asserted): local search never does worse than greedy,
never better than exact, and closes at least half of the total
greedy-to-optimal gap over the sweep.
"""

import time

import pytest

from repro import branch_and_bound_select, greedy_select, local_search_select

from benchmarks._instances import paper_budget, paper_grid_instance
from benchmarks._report import emit, fmt_row

FACTORS = (0.5, 0.75, 0.9, 1.0, 1.25, 1.5)


def test_ablation_local_search(benchmark, capsys):
    base = paper_grid_instance(65e9)  # the scale where greedy's gap shows
    unit = paper_budget(base, copies=3)
    lines = [fmt_row(
        ["rel.budget", "greedy", "greedy+LS", "exact", "gap closed"],
        [10, 9, 10, 9, 10])]
    gap_total = 0.0
    gap_closed = 0.0
    times = {"greedy": 0.0, "ls": 0.0, "exact": 0.0}
    for factor in FACTORS:
        inst = base.with_budget(unit * factor)
        t0 = time.perf_counter()
        greedy = greedy_select(inst)
        times["greedy"] += time.perf_counter() - t0
        t0 = time.perf_counter()
        refined = local_search_select(inst)
        times["ls"] += time.perf_counter() - t0
        t0 = time.perf_counter()
        exact = branch_and_bound_select(inst)
        times["exact"] += time.perf_counter() - t0
        assert exact.optimal
        assert exact.cost - 1e-9 <= refined.cost <= greedy.cost + 1e-9
        gap = greedy.cost - exact.cost
        closed = greedy.cost - refined.cost
        gap_total += gap
        gap_closed += closed
        share = closed / gap if gap > 1e-9 else 1.0
        lines.append(fmt_row(
            [factor, greedy.cost / exact.cost, refined.cost / exact.cost,
             1.0, f"{share:.0%}"],
            [10, 9, 10, 9, 10]))
    lines.append(
        f"total gap closed: {gap_closed / gap_total:.0%}" if gap_total > 1e-9
        else "greedy was already optimal at every budget"
    )
    lines.append(
        f"cumulative time: greedy {times['greedy'] * 1e3:.1f} ms, "
        f"+LS {times['ls'] * 1e3:.1f} ms, exact {times['exact'] * 1e3:.1f} ms"
    )
    inst = base.with_budget(unit * 0.5)
    benchmark(lambda: local_search_select(inst))
    emit("ablation_local_search",
         "Ablation: swap local search on top of Algorithm 1", lines, capsys)
    if gap_total > 1e-9:
        assert gap_closed / gap_total >= 0.5

"""Ablation — dominated-replica pruning (paper Section III-C2).

Measures how much of the paper-grid candidate set pruning removes, what
it does to exact-solver time, and verifies the paper's guarantee that
the optimal workload cost is unchanged.

Expected shape (asserted): pruning removes a substantial fraction of the
175 candidates, never changes the optimum, and does not slow the solver.
"""

import time

import pytest

from repro import branch_and_bound_select, prune_dominated, solve_mip

from benchmarks._instances import paper_budget, paper_grid_instance
from benchmarks._report import emit, fmt_row


@pytest.fixture(scope="module")
def instance():
    inst = paper_grid_instance(65e7)
    return inst.with_budget(paper_budget(inst, copies=3))


def test_ablation_pruning(instance, benchmark, capsys):
    t0 = time.perf_counter()
    pruned = prune_dominated(instance)
    prune_time = time.perf_counter() - t0

    t0 = time.perf_counter()
    full_sel = branch_and_bound_select(instance)
    full_time = time.perf_counter() - t0
    t0 = time.perf_counter()
    pruned_sel = branch_and_bound_select(pruned.instance)
    pruned_time = time.perf_counter() - t0

    t0 = time.perf_counter()
    scipy_full = solve_mip(instance, backend="scipy")
    scipy_full_time = time.perf_counter() - t0
    t0 = time.perf_counter()
    scipy_pruned = solve_mip(pruned.instance, backend="scipy")
    scipy_pruned_time = time.perf_counter() - t0

    benchmark(lambda: prune_dominated(instance))

    lines = [
        f"candidates: {instance.n_replicas} -> {len(pruned.kept)} "
        f"({pruned.reduction:.0%} pruned in {prune_time * 1e3:.1f} ms)",
        fmt_row(["solver", "full s", "pruned s", "cost equal"], [12, 9, 9, 11]),
        fmt_row(["bnb", full_time, pruned_time,
                 str(abs(full_sel.cost - pruned_sel.cost) < 1e-6 * full_sel.cost)],
                [12, 9, 9, 11]),
        fmt_row(["scipy-milp", scipy_full_time, scipy_pruned_time,
                 str(abs(scipy_full.cost - scipy_pruned.cost)
                     < 1e-6 * scipy_full.cost)],
                [12, 9, 9, 11]),
    ]
    emit("ablation_pruning", "Ablation: dominated-replica pruning", lines, capsys)

    assert pruned.reduction > 0.3
    assert pruned_sel.cost == pytest.approx(full_sel.cost)
    assert scipy_pruned.cost == pytest.approx(scipy_full.cost)
    assert scipy_pruned_time < scipy_full_time * 1.5

"""Performance gate for the batch query-execution path.

Two claims are asserted, not just reported:

1. ``route_batch`` (one vectorized ``Np`` broadcast per replica) routes a
   1000-query workload over 10 replicas at least 5x faster than the
   per-query ``route()`` loop, while producing the identical plan.
2. Re-executing an overlapping workload with the decoded-partition cache
   enabled reads strictly fewer bytes than the first pass and reports a
   non-zero cache hit rate.

Results land in ``benchmarks/results/BENCH_batch_engine.json`` (uploaded
as a CI artifact) alongside the usual text block.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.costmodel import CostModel, EncodingCostParams
from repro.data import synthetic_shanghai_taxis
from repro.encoding import encoding_scheme_by_name
from repro.partition import CompositeScheme, KdTreePartitioner
from repro.storage import BlotStore, ExecOptions, InMemoryStore
from repro.workload import positioned_random_workload

from benchmarks._report import RESULTS_DIR, emit, fmt_row
from benchmarks._trajectory import record as record_trajectory

N_QUERIES = 1000

#: 10 diverse replicas: 5 kd-tree granularities x 2 encodings.
REPLICA_SPECS = [
    (leaves, slices, enc)
    for leaves, slices in ((4, 2), (8, 4), (16, 4), (32, 8), (64, 8))
    for enc in ("ROW-PLAIN", "COL-SNAPPY")
]


@pytest.fixture(scope="module")
def batch_store():
    ds = synthetic_shanghai_taxis(6000, seed=2014, num_taxis=32)
    model = CostModel({
        "ROW-PLAIN": EncodingCostParams(scan_rate=11_800, extra_time=30.0),
        "COL-SNAPPY": EncodingCostParams(scan_rate=17_500, extra_time=30.5),
    })
    store = BlotStore(ds, cost_model=model, cache_bytes=256 << 20)
    for leaves, slices, enc in REPLICA_SPECS:
        store.add_replica(
            CompositeScheme(KdTreePartitioner(leaves), slices),
            encoding_scheme_by_name(enc), InMemoryStore(),
            name=f"KD{leaves}xT{slices}/{enc}",
        )
    return ds, store


@pytest.fixture(scope="module")
def workload(batch_store):
    ds, _ = batch_store
    rng = np.random.default_rng(7)
    return positioned_random_workload(
        ds.bounding_box(), N_QUERIES, rng, max_fraction=0.4)


def test_route_batch_speedup(batch_store, workload, benchmark, capsys):
    """Batch routing >= 5x faster than the per-query route() loop on a
    1k-query x 10-replica workload, with an identical plan."""
    ds, store = batch_store
    queries = workload.queries()
    assert len(store.replica_names()) == 10

    # Warm both paths once (profile memoization, numpy imports).
    store.route(queries[0])
    store.route_workload(workload)

    t0 = time.perf_counter()
    looped = [store.route(q) for q in queries]
    loop_seconds = time.perf_counter() - t0

    batch_seconds = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        plan = store.route_workload(workload)
        batch_seconds = min(batch_seconds, time.perf_counter() - t0)
    benchmark.pedantic(lambda: store.route_workload(workload),
                       rounds=3, iterations=1)

    assert plan.assigned_names() == looped
    speedup = loop_seconds / batch_seconds
    lines = [
        fmt_row(["path", "seconds", "q/s"], [14, 10, 12]),
        fmt_row(["route() loop", loop_seconds, N_QUERIES / loop_seconds],
                [14, 10, 12]),
        fmt_row(["route_batch", batch_seconds, N_QUERIES / batch_seconds],
                [14, 10, 12]),
        f"speedup: {speedup:.1f}x ({N_QUERIES} queries x "
        f"{len(store.replica_names())} replicas)",
    ]
    emit("bench_route_batch", "BENCH: vectorized batch routing", lines, capsys)
    _merge_json({
        "n_queries": N_QUERIES,
        "n_replicas": len(store.replica_names()),
        "route_loop_seconds": loop_seconds,
        "route_batch_seconds": batch_seconds,
        "route_speedup": speedup,
    })
    # Wall-clock ratios swing with runner load, so the trajectory gate
    # gives them a wide band; the >=5x floor below stays the hard gate.
    record_trajectory(
        "batch_engine.routing",
        {"route_speedup": speedup,
         "route_batch_seconds": batch_seconds},
        directions={"route_speedup": "higher",
                    "route_batch_seconds": "lower"},
        tolerances={"route_speedup": 0.5, "route_batch_seconds": 1.0},
    )
    assert speedup >= 5.0, f"batch routing only {speedup:.1f}x faster"


def test_cached_reexecution_reads_fewer_bytes(batch_store, workload, capsys):
    """With the decoded-partition cache, a second pass over an overlapping
    workload reads strictly fewer bytes and reports a hit rate > 0."""
    _, store = batch_store
    first = store.execute_workload(workload, options=ExecOptions(parallelism=4))
    second = store.execute_workload(workload, options=ExecOptions(parallelism=4))

    assert second.stats.records_returned == first.stats.records_returned
    assert second.stats.bytes_read < first.stats.bytes_read
    assert second.stats.cache_hit_rate > 0.0

    lines = [
        fmt_row(["pass", "MB read", "decodes", "hit rate", "q/s"],
                [6, 10, 9, 10, 10]),
        fmt_row(["1st", first.stats.bytes_read / 1e6,
                 first.stats.partitions_decoded, first.stats.cache_hit_rate,
                 first.stats.n_queries / first.stats.seconds],
                [6, 10, 9, 10, 10]),
        fmt_row(["2nd", second.stats.bytes_read / 1e6,
                 second.stats.partitions_decoded, second.stats.cache_hit_rate,
                 second.stats.n_queries / second.stats.seconds],
                [6, 10, 9, 10, 10]),
    ]
    emit("bench_partition_cache", "BENCH: decoded-partition cache", lines,
         capsys)
    _merge_json({
        "first_pass_bytes": first.stats.bytes_read,
        "second_pass_bytes": second.stats.bytes_read,
        "second_pass_hit_rate": second.stats.cache_hit_rate,
        "first_pass_seconds": first.stats.seconds,
        "second_pass_seconds": second.stats.seconds,
    })
    # Byte counts and hit rates are deterministic for a seeded store, so
    # these ride the strict default regression band.  The byte metric is
    # the saved fraction (not raw second-pass bytes, whose ideal value
    # of 0 breaks multiplicative tolerance bands).
    saved = 1.0 - second.stats.bytes_read / first.stats.bytes_read
    record_trajectory(
        "batch_engine.cache",
        {"bytes_saved_fraction": saved,
         "second_pass_hit_rate": second.stats.cache_hit_rate},
        directions={"bytes_saved_fraction": "higher",
                    "second_pass_hit_rate": "higher"},
    )


def test_execute_workload_golden_sample(batch_store, workload):
    """Spot-check the batch results against sequential query() on the
    same plan (the full equivalence test lives in tier-1)."""
    _, store = batch_store
    result = store.execute_workload(workload, options=ExecOptions(parallelism=4))
    assigned = result.plan.assigned_names()
    rng = np.random.default_rng(3)
    for i in rng.choice(len(assigned), size=25, replace=False):
        i = int(i)
        seq = store.query(workload.queries()[i], replica=assigned[i])
        assert np.array_equal(result.results[i].records.column("t"),
                              seq.records.column("t"))


def _merge_json(fields: dict) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_batch_engine.json")
    data = {}
    if os.path.exists(path):
        with open(path) as f:
            data = json.load(f)
    data.update(fields)
    with open(path, "w") as f:
        json.dump(data, f, indent=2, sort_keys=True)
        f.write("\n")

"""Ablation — Eq. 3 (n·m linking constraints) vs Eq. 4 (m aggregated).

The paper replaces the per-query linking constraints y_ij <= x_j with the
m aggregated constraints sum_i y_ij <= n x_j "because an MIP problem may
become extremely difficult in the presence of too many constraints".
This bench checks that claim on HiGHS: same optimum, different model
sizes and solve times.

Expected shape (asserted): identical optimal cost; the aggregated form
has far fewer constraints.  (Solve-time direction is reported but not
asserted: modern solvers often prefer the *tighter* per-query form, an
interesting reversal of the 2014-era guidance.)
"""

import time

import pytest

from repro import build_mip, solve_mip

from benchmarks._instances import structured_instance
from benchmarks._report import emit, fmt_row


@pytest.fixture(scope="module")
def instances():
    return [
        ("50x30", structured_instance(50, 30, seed=1)),
        ("100x60", structured_instance(100, 60, seed=2)),
        ("150x90", structured_instance(150, 90, seed=3)),
    ]


def test_ablation_constraint_forms(instances, benchmark, capsys):
    lines = [fmt_row(
        ["instance", "form", "#constraints", "time s", "cost"],
        [9, 10, 12, 8, 14])]
    for label, inst in instances:
        results = {}
        for form in ("aggregated", "per-query"):
            formulation = build_mip(inst, form)
            t0 = time.perf_counter()
            sel = solve_mip(inst, backend="scipy", constraint_form=form)
            elapsed = time.perf_counter() - t0
            results[form] = sel
            lines.append(fmt_row(
                [label, form, formulation.n_constraints, elapsed, sel.cost],
                [9, 10, 12, 8, 14]))
        assert results["aggregated"].cost == pytest.approx(
            results["per-query"].cost, rel=1e-9)
    small = instances[0][1]
    benchmark.pedantic(
        lambda: solve_mip(small, backend="scipy", constraint_form="aggregated"),
        rounds=1, iterations=1,
    )
    agg = build_mip(instances[-1][1], "aggregated").n_constraints
    per = build_mip(instances[-1][1], "per-query").n_constraints
    lines.append(f"constraint reduction at 150x90: {per} -> {agg} "
                 f"({per / agg:.0f}x fewer rows)")
    emit("ablation_mip_constraints",
         "Ablation: Eq.3 per-query vs Eq.4 aggregated linking", lines, capsys)
    assert agg < per / 10

"""Figure 6 cross-check — selections validated by *simulated execution*.

The Figure 4/6 benches compare replica sets through the calibrated cost
model (as the paper's selection pipeline does).  This bench closes the
loop: it takes the Single and the exact (MIP) selections at the base
scale, then actually *executes* the paper workload on the discrete-event
EMR simulator — sampling positions for each grouped query, routing each
to its cheapest selected replica, and measuring total simulated task
time.

Expected shape (asserted): the diverse (MIP) selection beats the single
replica in measured simulated seconds, by a factor comparable to the
cost model's prediction — evidence that the whole estimate → select →
route pipeline holds up on the execution substrate it never saw.
"""

import numpy as np
import pytest

from repro import AdvisorConfig, ReplicaAdvisor, paper_encoding_schemes, paper_workload
from repro.cluster import make_cluster, position_query, simulate_query
from repro.partition import small_partitioning_schemes

from benchmarks._report import emit, fmt_row

POSITIONS_PER_QUERY = 3


@pytest.fixture(scope="module")
def setup(taxi_sample, emr_cost_model):
    advisor = ReplicaAdvisor(
        sample=taxi_sample,
        partitioning_schemes=small_partitioning_schemes(
            spatial_leaves=(4, 16, 64, 256), time_slices=(4, 16, 64)),
        encoding_schemes=paper_encoding_schemes(),
        cost_model=emr_cost_model,
        config=AdvisorConfig(n_records=65_000_000),
    )
    workload = paper_workload(advisor.universe)
    budget = advisor.single_replica_budget(workload, copies=3)
    report = advisor.recommend(workload, budget, method="exact")
    return advisor, workload, report


def measured_workload_seconds(advisor, workload, replica_names, cluster,
                              cost_model, rng):
    """Execute the workload on the simulator: each grouped query sampled
    at several positions, each routed to its cheapest selected replica."""
    profiles = [c for c in advisor.candidates if c.name in set(replica_names)]
    total = 0.0
    per_query = []
    for query, weight in workload:
        seconds = 0.0
        for _ in range(POSITIONS_PER_QUERY):
            q = position_query(query, profiles[0], rng)
            best = min(profiles, key=lambda p: cost_model.query_cost(q, p))
            seconds += simulate_query(cluster, best, q).total_task_seconds
        seconds /= POSITIONS_PER_QUERY
        per_query.append(weight * seconds)
        total += weight * seconds
    return total, per_query


def test_fig6_simulated_execution_check(setup, emr_cost_model, benchmark, capsys):
    advisor, workload, report = setup
    cluster = make_cluster("amazon-s3-emr", seed=71)
    rng = np.random.default_rng(7)

    single_total, single_pq = measured_workload_seconds(
        advisor, workload, [report.single_name], cluster, emr_cost_model,
        np.random.default_rng(7))
    diverse_total, diverse_pq = measured_workload_seconds(
        advisor, workload, report.replica_names, cluster, emr_cost_model,
        np.random.default_rng(7))

    benchmark.pedantic(
        lambda: measured_workload_seconds(
            advisor, workload, [report.single_name], cluster, emr_cost_model,
            np.random.default_rng(1)),
        rounds=1, iterations=1,
    )

    predicted_speedup = report.speedup_vs_single
    measured_speedup = single_total / diverse_total
    lines = [
        fmt_row(["query", "Single (sim s)", "MIP set (sim s)"], [6, 14, 15]),
    ]
    for i, (s, d) in enumerate(zip(single_pq, diverse_pq)):
        lines.append(fmt_row([f"q{i + 1}", s, d], [6, 14, 15]))
    lines.append(
        f"workload total: Single {single_total:.1f}s, diverse "
        f"{diverse_total:.1f}s -> measured speedup {measured_speedup:.2f}x "
        f"(cost model predicted {predicted_speedup:.2f}x)"
    )
    emit("fig6_simcheck",
         "Figure 6 cross-check: simulated execution of selected sets",
         lines, capsys)

    assert diverse_total < single_total
    assert measured_speedup == pytest.approx(predicted_speedup, rel=0.35)

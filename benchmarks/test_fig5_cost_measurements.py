"""Figure 5 — measured Cost(q, p) vs partition size, with fitted lines.

The paper's measurement procedure (Section V-B): per encoding, scan 5
sets of 20 equal-size partitions, average the mapper times, then fit
Eq. 6 by linear regression.  The left panels show the measured points,
the right panels the fitted lines; the text concludes Cost(q, p) is
"well-fitted by Equation 6 especially when the size of partition is
relatively large".

Expected shape (asserted): residuals shrink with partition size, fits are
tight (R^2), and the fitted ExtraTime per environment matches the
environment's startup magnitude.
"""

import pytest

from repro import calibrate_environment

from benchmarks._report import emit, fmt_row

SIZES = (5_000, 20_000, 50_000, 100_000, 200_000)
SHOWN = ("ROW-PLAIN", "ROW-GZIP", "COL-LZMA2")  # the paper plots 3 fits


@pytest.fixture(scope="module")
def measurements(emr_cluster, hadoop_cluster):
    return {
        "amazon-s3-emr": calibrate_environment(emr_cluster, list(SHOWN), sizes=SIZES),
        "local-hadoop": calibrate_environment(hadoop_cluster, list(SHOWN), sizes=SIZES),
    }


def test_fig5_measured_and_fitted(measurements, benchmark, capsys):
    benchmark.pedantic(
        lambda: calibrate_environment(
            _fresh_cluster(), ["ROW-PLAIN"], sizes=(5_000, 100_000)),
        rounds=1, iterations=1,
    )
    lines = []
    for env, fits in measurements.items():
        lines.append(f"[{env}]")
        header = ["partition |D(p)|"] + [f"{n} meas/fit" for n in SHOWN]
        lines.append(fmt_row(header, [16, 22, 22, 22]))
        for size in SIZES:
            row = [size]
            for name in SHOWN:
                fit = fits[name]
                measured = next(p.seconds for p in fit.points
                                if p.partition_records == size)
                row.append(f"{measured:8.2f} / {fit.predicted(size):8.2f}")
            lines.append(fmt_row(row, [16, 22, 22, 22]))
        for name in SHOWN:
            fit = fits[name]
            lines.append(
                f"  fit {name}: Cost = |D(p)| / {fit.params.scan_rate:,.0f} "
                f"+ {fit.params.extra_time:.2f}s   R^2={fit.r_squared:.4f}"
            )
        lines.append("")
    emit("fig5", "Figure 5: measured Cost(q, p) and Eq. 6 fits", lines, capsys)

    for fits in measurements.values():
        for fit in fits.values():
            assert fit.r_squared > 0.98
            # "Well-fitted especially when partitions are large": the
            # relative error at the largest size beats the smallest.
            small, large = fit.points[0], fit.points[-1]
            err_small = abs(fit.predicted(small.partition_records) - small.seconds) \
                / small.seconds
            err_large = abs(fit.predicted(large.partition_records) - large.seconds) \
                / large.seconds
            assert err_large <= err_small + 0.02
    emr = measurements["amazon-s3-emr"]["ROW-PLAIN"].params.extra_time
    local = measurements["local-hadoop"]["ROW-PLAIN"].params.extra_time
    assert emr > 4 * local  # 30s-class vs 5s-class ExtraTime


def _fresh_cluster():
    from repro import make_cluster

    return make_cluster("amazon-s3-emr", seed=77)

"""Extension bench — stragglers and speculative execution.

The paper's EMR jobs ran 20 mappers per measurement; real MapReduce
fleets suffer stragglers, which inflate job makespan (and would bias the
Table II calibration if not controlled).  This bench quantifies the
straggler tail on the simulated environments and how much Hadoop-style
speculation claws back.

Expected shape (asserted): stragglers inflate mean makespan well beyond
the clean baseline; speculation recovers a large share of that
inflation; calibration (which averages task times rather than taking the
makespan) stays accurate even under stragglers.
"""

import numpy as np
import pytest

from repro import calibrate_environment
from repro.cluster import LOCAL_HADOOP, MapTask, SimulatedCluster, StragglerModel

from benchmarks._report import emit, fmt_row

STRAGGLER = StragglerModel(probability=0.1, slowdown=(5.0, 10.0))
SEEDS = range(10)
TASKS = [MapTask("COL-GZIP", 50_000)] * 40


def mean_makespan(**kwargs) -> tuple[float, int]:
    spans, launched = [], 0
    for seed in SEEDS:
        cluster = SimulatedCluster(LOCAL_HADOOP, seed=seed, **kwargs)
        job = cluster.run_map_only_job(TASKS)
        spans.append(job.makespan)
        launched += job.backups_launched
    return float(np.mean(spans)), launched


def test_ext_straggler_tail_and_speculation(benchmark, capsys):
    clean, _ = mean_makespan()
    straggly, _ = mean_makespan(straggler=STRAGGLER)
    speculated, launched = mean_makespan(straggler=STRAGGLER,
                                         speculative_execution=True)
    recovered = (straggly - speculated) / (straggly - clean)
    lines = [
        fmt_row(["configuration", "mean makespan s"], [24, 16]),
        fmt_row(["clean", clean], [24, 16]),
        fmt_row(["10% stragglers", straggly], [24, 16]),
        fmt_row(["stragglers + speculation", speculated], [24, 16]),
        f"speculation recovered {recovered:.0%} of the straggler inflation "
        f"({launched} backups across {len(list(SEEDS))} jobs)",
    ]
    benchmark.pedantic(
        lambda: SimulatedCluster(LOCAL_HADOOP, seed=0, straggler=STRAGGLER,
                                 speculative_execution=True)
        .run_map_only_job(TASKS),
        rounds=3, iterations=1,
    )
    emit("ext_stragglers", "Extension: straggler tail and speculation",
         lines, capsys)
    assert straggly > clean * 1.3
    assert clean < speculated < straggly
    # The speculate-at-idle policy only fires once the task queue drains
    # (and backups can straggle too), so it recovers a meaningful share
    # of the tail, not all of it.
    assert recovered > 0.2


def test_ext_calibration_robust_to_stragglers(benchmark, capsys):
    """Calibration averages 20 mapper times per point; rare heavy
    stragglers shift the mean a little but the fitted parameters stay in
    regime (the paper's measurement procedure is naturally robust)."""
    clean_cluster = SimulatedCluster(LOCAL_HADOOP, seed=3)
    dirty_cluster = SimulatedCluster(
        LOCAL_HADOOP, seed=3,
        straggler=StragglerModel(probability=0.03, slowdown=(3.0, 6.0)))
    clean = calibrate_environment(clean_cluster, ["COL-GZIP"])["COL-GZIP"]
    dirty = calibrate_environment(dirty_cluster, ["COL-GZIP"])["COL-GZIP"]
    benchmark.pedantic(
        lambda: calibrate_environment(
            SimulatedCluster(LOCAL_HADOOP, seed=4), ["COL-GZIP"],
            sizes=(5_000, 100_000)),
        rounds=1, iterations=1,
    )
    lines = [
        f"clean fit: 1/ScanRate {1e6 / clean.params.scan_rate:.1f} us/rec, "
        f"Extra {clean.params.extra_time:.2f}s, R^2 {clean.r_squared:.4f}",
        f"straggly fit: 1/ScanRate {1e6 / dirty.params.scan_rate:.1f} us/rec, "
        f"Extra {dirty.params.extra_time:.2f}s, R^2 {dirty.r_squared:.4f}",
    ]
    emit("ext_calibration_stragglers",
         "Extension: calibration robustness under stragglers", lines, capsys)
    assert 1e6 / dirty.params.scan_rate == pytest.approx(
        1e6 / clean.params.scan_rate, rel=0.5)
    assert dirty.params.extra_time == pytest.approx(
        clean.params.extra_time, rel=0.5)

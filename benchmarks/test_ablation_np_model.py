"""Ablation — analytic Np (Eq. 11-12) vs Monte-Carlo estimation.

The paper argues the integral form (Eq. 8) "would be infeasible, or at
least extremely inefficient" and derives the closed form instead.  This
bench quantifies that choice: accuracy of both estimators against a
dense positional average, and the speed gap.

Expected shape (asserted): analytic matches Monte-Carlo within a few
percent everywhere and is at least an order of magnitude faster.
"""

import time

import numpy as np
import pytest

from repro import CompositeScheme, KdTreePartitioner, ReplicaProfile, expected_partitions
from repro.costmodel import monte_carlo_partitions
from repro.workload import GroupedQuery

from benchmarks._report import emit, fmt_row


@pytest.fixture(scope="module")
def profile(taxi_sample):
    partitioning = CompositeScheme(KdTreePartitioner(64), 16).build(taxi_sample)
    return ReplicaProfile.from_partitioning(
        partitioning, "ROW-PLAIN", len(taxi_sample), 0.0)


def test_ablation_np_accuracy_and_speed(profile, benchmark, capsys):
    u = profile.universe
    rng = np.random.default_rng(3)
    rows = []
    max_err = 0.0
    for frac in (0.01, 0.05, 0.1, 0.3, 0.6, 0.9):
        g = GroupedQuery(u.width * frac, u.height * frac, u.duration * frac)
        t0 = time.perf_counter()
        analytic = expected_partitions(profile, g)
        t_analytic = time.perf_counter() - t0
        t0 = time.perf_counter()
        mc = monte_carlo_partitions(profile, g, rng, trials=2000)
        t_mc = time.perf_counter() - t0
        err = abs(analytic - mc) / mc
        max_err = max(max_err, err)
        rows.append((frac, analytic, mc, err, t_analytic * 1e3, t_mc * 1e3))

    g_mid = GroupedQuery(u.width * 0.2, u.height * 0.2, u.duration * 0.2)
    benchmark(lambda: expected_partitions(profile, g_mid))

    lines = [fmt_row(
        ["size frac", "analytic", "monte-carlo", "rel err", "t_ana ms", "t_mc ms"],
        [9, 9, 11, 8, 9, 9])]
    for frac, analytic, mc, err, ta, tm in rows:
        lines.append(fmt_row([frac, analytic, mc, err, ta, tm],
                             [9, 9, 11, 8, 9, 9]))
    speedup = float(np.mean([r[5] / max(r[4], 1e-9) for r in rows]))
    lines.append(f"mean speedup analytic vs 2000-trial MC: {speedup:,.0f}x")
    emit("ablation_np", "Ablation: analytic Np vs Monte-Carlo", lines, capsys)

    assert max_err < 0.06
    assert speedup > 10

"""Shared selection-instance builders for the benchmark harness.

Two generators:

- :func:`paper_grid_instance` — the paper's literal candidate set (k-d
  tree spatial 4^2..4^6 x temporal 2^4..2^8, crossed with the 7
  encodings) with Eq. 7 costs.  ``Np`` uses the closed form for
  equal-count partitionings under the uniform-position query model,
  which lets the 10^6-partition schemes be modelled exactly at any data
  scale (a sample-built box array would be degenerate there; see
  EXPERIMENTS.md).
- :func:`structured_instance` — randomized workloads/scheme subsets with
  the same cost structure, for solver-scaling sweeps (Figure 3).
"""

from __future__ import annotations

import numpy as np

from repro import SelectionInstance
from repro.encoding import ROW_BYTES
from repro.workload import PAPER_QUERY_FRACTIONS, PAPER_QUERY_WEIGHTS

#: (1/ScanRate in us/record, ExtraTime s, compression ratio) per encoding —
#: Table II (Amazon S3 + EMR column) and Table I magnitudes.
ENCODING_PARAMS: dict[str, tuple[float, float, float]] = {
    "ROW-PLAIN": (85.0, 30.0, 1.000),
    "ROW-SNAPPY": (90.2, 30.2, 0.485),
    "COL-SNAPPY": (57.0, 30.5, 0.312),
    "ROW-GZIP": (90.7, 28.7, 0.283),
    "COL-GZIP": (51.7, 28.7, 0.179),
    "ROW-LZMA2": (54.4, 29.0, 0.213),
    "COL-LZMA2": (38.7, 29.6, 0.156),
}


def _np_closed_form(
    spatial_leaves: int, time_slices: int,
    spatial_frac: np.ndarray, temporal_frac: np.ndarray,
) -> np.ndarray:
    """Expected involved partitions for an equal-count s x s x t layout
    under uniformly positioned queries: per dimension a query covering
    fraction f of the axis touches ``1 + f (k - 1)`` of ``k`` slices in
    expectation (the Eq. 11/12 sum in closed form for equi-spaced cuts)."""
    side = np.sqrt(spatial_leaves)
    return (
        (1.0 + spatial_frac * (side - 1.0)) ** 2
        * (1.0 + temporal_frac * (time_slices - 1.0))
    )


def paper_grid_instance(
    n_records: float,
    fractions: tuple[tuple[float, float], ...] = PAPER_QUERY_FRACTIONS,
    weights: tuple[float, ...] = PAPER_QUERY_WEIGHTS,
) -> SelectionInstance:
    """The paper's 25 x 7 = 175-column instance at a given data size.

    (The paper counts 150 candidates; their grid is 25 schemes x 7
    encodings too, so we keep all 175 columns and let dominance pruning
    do its work.)  Budget is left at 0; use ``with_budget``.
    """
    fr = np.asarray(fractions, dtype=np.float64)
    spatial_frac, temporal_frac = fr[:, 0], fr[:, 1]
    columns, storage, names = [], [], []
    for s in range(2, 7):
        for t in range(4, 9):
            spatial, slices = 4**s, 2**t
            np_q = _np_closed_form(spatial, slices, spatial_frac, temporal_frac)
            n_partitions = spatial * slices
            for enc, (us_per_record, extra, ratio) in ENCODING_PARAMS.items():
                columns.append(
                    np_q * (n_records / n_partitions) * us_per_record * 1e-6
                    + np_q * extra
                )
                storage.append(n_records * ROW_BYTES * ratio)
                names.append(f"KD{spatial}xT{slices}/{enc}")
    return SelectionInstance(
        costs=np.stack(columns, axis=1),
        weights=np.asarray(weights, dtype=np.float64),
        storage=np.array(storage),
        budget=0.0,
        replica_names=tuple(names),
        query_labels=tuple(f"q{i + 1}" for i in range(len(fractions))),
    )


def paper_budget(instance: SelectionInstance, copies: int = 3) -> float:
    """The Section V-C budget: ``copies`` exact copies of the optimal
    single replica (optimal ignoring any budget)."""
    unbounded = instance.with_budget(float("inf"))
    j, _ = unbounded.best_single()
    return float(copies * instance.storage[j])


def structured_instance(
    n: int, m: int, seed: int, budget_copies: float = 3.0, n_records: float = 65e6
) -> SelectionInstance:
    """Randomized instances with the true cost-model structure, for the
    Figure 3 solver-scaling sweeps."""
    rng = np.random.default_rng(seed)
    schemes = [(4**s, 2**t) for s in range(1, 8) for t in range(2, 10)]
    rng.shuffle(schemes)
    schemes = schemes[: int(np.ceil(m / len(ENCODING_PARAMS)))]
    fractions = np.exp(rng.uniform(np.log(1e-3), np.log(0.9), size=(n, 2)))
    columns, storage = [], []
    for spatial, slices in schemes:
        np_q = _np_closed_form(spatial, slices, fractions[:, 0], fractions[:, 1])
        n_partitions = spatial * slices
        for us_per_record, extra, ratio in ENCODING_PARAMS.values():
            columns.append(
                np_q * (n_records / n_partitions) * us_per_record * 1e-6
                + np_q * extra
            )
            storage.append(n_records * ROW_BYTES * ratio)
    costs = np.stack(columns, axis=1)[:, :m]
    storage_arr = np.array(storage)[:m]
    return SelectionInstance(
        costs, rng.uniform(0.1, 1.0, n), storage_arr,
        float(budget_copies * storage_arr.min()),
    )

"""Performance gate for the vectorized scan/decode kernels.

Three claims, the first asserted as a hard floor:

1. The numpy batch svarint decoder is at least **10x** faster than the
   scalar reference loop (the pre-vectorization decode path, kept in the
   codebase as the differential-fuzz referee) on a realistic
   delta-encoded column stream.
2. The RLE batch decoder at least tracks its scalar reference on
   run-heavy bytes (reported + trajectory-gated; both are O(runs), so
   the ratio hovers near parity and only a real slowdown fails).
3. The engine fast paths pay off end to end: a fully-contained
   ``count()`` answers from metadata orders of magnitude faster than
   scanning, and zone-pruned queries beat the full decode+filter scan.

Results land in ``benchmarks/results/BENCH_scan_decode.json`` and the
trajectory file (>20% regression on any gated metric fails
``python benchmarks/_trajectory.py --check``).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.data import synthetic_shanghai_taxis
from repro.encoding import encoding_scheme_by_name
from repro.encoding.rle import (
    rle_decode_bytes,
    rle_decode_bytes_scalar,
    rle_encode_bytes,
)
from repro.encoding.varint import (
    decode_svarint_array_scalar,
    decode_svarint_np,
    encode_svarint_array,
)
from repro.geometry import Box3
from repro.partition import CompositeScheme, KdTreePartitioner
from repro.storage import BlotStore, InMemoryStore
from repro.workload.query import Query

from benchmarks._report import RESULTS_DIR, emit, fmt_row
from benchmarks._trajectory import record as record_trajectory

N_VALUES = 300_000


def _best_of(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_svarint_decode_speedup(capsys):
    """Vectorized svarint stream decode >= 10x the scalar loop."""
    rng = np.random.default_rng(2014)
    # Delta-encoded sorted timestamps + id churn: mostly 1-2 byte
    # varints with occasional long ones, the shape real columns have.
    deltas = np.concatenate([
        rng.integers(0, 64, size=N_VALUES // 2),
        rng.integers(-(2**20), 2**20, size=N_VALUES // 4),
        rng.integers(-(2**45), 2**45, size=N_VALUES // 4),
    ]).astype(np.int64)
    rng.shuffle(deltas)
    stream = bytearray()
    encode_svarint_array(deltas, stream)
    stream = bytes(stream)
    n = len(deltas)

    # The engine's hot path consumes the numpy array directly
    # (decode_svarint_np feeds cumsum without materializing a list).
    fast = lambda: decode_svarint_np(stream, 0, n)
    slow = lambda: decode_svarint_array_scalar(stream, 0, n)
    assert fast()[0].tolist() == slow()[0]  # bit-exact before timing

    fast_s = _best_of(fast, 5)
    slow_s = _best_of(slow, 2)
    speedup = slow_s / fast_s

    lines = [
        fmt_row(["path", "seconds", "Mvalues/s"], [12, 10, 12]),
        fmt_row(["scalar", slow_s, n / slow_s / 1e6], [12, 10, 12]),
        fmt_row(["vectorized", fast_s, n / fast_s / 1e6], [12, 10, 12]),
        f"speedup: {speedup:.1f}x over {n} values "
        f"({len(stream)} stream bytes)",
    ]
    emit("bench_svarint_decode", "BENCH: vectorized svarint decode",
         lines, capsys)
    _merge_json({
        "svarint_n_values": n,
        "svarint_scalar_seconds": slow_s,
        "svarint_vectorized_seconds": fast_s,
        "svarint_speedup": speedup,
    })
    record_trajectory(
        "scan_decode.svarint",
        {"svarint_speedup": speedup,
         "svarint_vectorized_seconds": fast_s},
        directions={"svarint_speedup": "higher",
                    "svarint_vectorized_seconds": "lower"},
        # Wall-clock ratios on shared runners get a wider band; the
        # >=10x assert below is the hard floor.
        tolerances={"svarint_speedup": 0.5,
                    "svarint_vectorized_seconds": 1.0},
    )
    assert speedup >= 10.0, f"vectorized decode only {speedup:.1f}x faster"


def test_rle_decode_speedup(capsys):
    """Vectorized RLE decode vs the scalar loop on occupancy-shaped runs."""
    rng = np.random.default_rng(7)
    runs = []
    for _ in range(4000):
        runs.append(bytes([rng.integers(0, 2)]) * int(rng.integers(1, 120)))
    raw = b"".join(runs)
    blob = rle_encode_bytes(raw)

    fast = lambda: rle_decode_bytes(blob)
    slow = lambda: rle_decode_bytes_scalar(blob, 0)
    assert fast()[0] == slow()[0]

    fast_s = _best_of(fast, 5)
    slow_s = _best_of(slow, 3)
    speedup = slow_s / fast_s
    lines = [
        fmt_row(["path", "seconds", "MB/s out"], [12, 10, 12]),
        fmt_row(["scalar", slow_s, len(raw) / slow_s / 1e6], [12, 10, 12]),
        fmt_row(["vectorized", fast_s, len(raw) / fast_s / 1e6], [12, 10, 12]),
        f"speedup: {speedup:.1f}x ({len(raw)} bytes from {len(blob)})",
    ]
    emit("bench_rle_decode", "BENCH: vectorized RLE decode", lines, capsys)
    _merge_json({
        "rle_raw_bytes": len(raw),
        "rle_scalar_seconds": slow_s,
        "rle_vectorized_seconds": fast_s,
        "rle_speedup": speedup,
    })
    record_trajectory(
        "scan_decode.rle",
        {"rle_speedup": speedup},
        directions={"rle_speedup": "higher"},
        tolerances={"rle_speedup": 0.5},
    )
    # Both decoders are O(runs) and near parity on short runs; the gate
    # only guards against the vectorized path becoming outright slower.
    assert speedup > 0.5


def test_engine_fast_paths_pay_off(capsys):
    """End-to-end: metadata counts and zone pruning vs the full scan."""
    ds = synthetic_shanghai_taxis(40_000, seed=2014, num_taxis=64)
    ds = ds.sorted_by_time()
    store = BlotStore(ds)
    store.add_replica(CompositeScheme(KdTreePartitioner(32), 8),
                      encoding_scheme_by_name("COL-SNAPPY"), InMemoryStore(),
                      name="r")
    bb = ds.bounding_box()
    full = Query.from_box(bb)
    sliver = Box3(bb.x_min, bb.x_min + bb.width * 1e-7,
                  bb.y_min, bb.y_min + bb.height * 1e-7,
                  bb.t_min, bb.t_max)

    store.count(full)
    store.query(bb)
    store.query(sliver)

    count_s = _best_of(lambda: store.count(full), 5)
    scan_s = _best_of(lambda: store.query(bb), 3)
    sliver_s = _best_of(lambda: store.query(sliver), 5)

    count_speedup = scan_s / count_s
    sliver_speedup = scan_s / sliver_s
    lines = [
        fmt_row(["path", "seconds", "vs full scan"], [22, 10, 14]),
        fmt_row(["full query()", scan_s, 1.0], [22, 10, 14]),
        fmt_row(["metadata count()", count_s, count_speedup], [22, 10, 14]),
        fmt_row(["zone-pruned sliver", sliver_s, sliver_speedup],
                [22, 10, 14]),
    ]
    emit("bench_scan_fastpaths", "BENCH: engine scan fast paths",
         lines, capsys)
    _merge_json({
        "full_scan_seconds": scan_s,
        "metadata_count_seconds": count_s,
        "metadata_count_speedup": count_speedup,
        "pruned_sliver_seconds": sliver_s,
        "pruned_sliver_speedup": sliver_speedup,
    })
    record_trajectory(
        "scan_decode.engine",
        {"metadata_count_speedup": count_speedup,
         "pruned_sliver_speedup": sliver_speedup},
        directions={"metadata_count_speedup": "higher",
                    "pruned_sliver_speedup": "higher"},
        tolerances={"metadata_count_speedup": 0.6,
                    "pruned_sliver_speedup": 0.6},
    )
    assert count_speedup > 10.0
    assert sliver_speedup > 1.0


def _merge_json(fields: dict) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_scan_decode.json")
    data = {}
    if os.path.exists(path):
        with open(path) as f:
            data = json.load(f)
    data.update(fields)
    with open(path, "w") as f:
        json.dump(data, f, indent=2, sort_keys=True)
        f.write("\n")

"""Table II — measured ScanRate and ExtraCost per encoding, both
environments.

Paper values (1/ScanRate in ms per 1000 records; ExtraCost in seconds):

    Amazon S3+EMR : row-plain 85.0/32.7s ... col-lzma2 38.7/29.6s
    Local Hadoop  : row-plain 606.8/5.3s ... col-lzma2 160.0/4.6s

Expected shape (asserted): EMR ExtraCost ~30 s and Hadoop ~5 s; on the
local cluster uncompressed row is the slowest scan and compressed
columnar the fastest; on EMR, LZMA2 scans faster than uncompressed
(slow S3 streaming); columnar beats row for every compressor in both.
"""

import pytest

from repro import calibrate_environment, paper_encoding_schemes

from benchmarks._report import emit, fmt_row

ENCODINGS = [s.name for s in paper_encoding_schemes()]


@pytest.fixture(scope="module")
def calibrations(emr_cluster, hadoop_cluster):
    return {
        "amazon-s3-emr": calibrate_environment(emr_cluster, ENCODINGS),
        "local-hadoop": calibrate_environment(hadoop_cluster, ENCODINGS),
    }


def test_table2_scanrate_extracost(calibrations, benchmark, capsys):
    """Regenerate Table II (14 calibrations) and verify its shape."""
    benchmark.pedantic(
        lambda: calibrate_environment(
            _cluster_for_bench(), ["ROW-PLAIN"], sizes=(5_000, 100_000)),
        rounds=1, iterations=1,
    )
    lines = []
    for env, fits in calibrations.items():
        lines.append(f"[{env}]")
        lines.append(fmt_row(
            ["encoding", "ms/1k rec", "ExtraCost s", "R^2"], [12, 10, 12, 7]))
        for name in ENCODINGS:
            fit = fits[name]
            lines.append(fmt_row(
                [name, 1000.0 / fit.params.scan_rate * 1000.0,
                 fit.params.extra_time, fit.r_squared],
                [12, 10, 12, 7],
            ))
        lines.append("")
    emit("table2", "Table II: calibrated ScanRate / ExtraCost", lines, capsys)

    emr, local = calibrations["amazon-s3-emr"], calibrations["local-hadoop"]

    def per_rec(fits, name):
        return 1.0 / fits[name].params.scan_rate

    # ExtraCost magnitudes.
    for name in ENCODINGS:
        assert 20 < emr[name].params.extra_time < 45
        assert 3 < local[name].params.extra_time < 8
    # Local: uncompressed row slowest scan.
    for name in ENCODINGS:
        if name != "ROW-PLAIN":
            assert per_rec(local, name) < per_rec(local, "ROW-PLAIN")
    # EMR: LZMA2 beats uncompressed row (S3 streaming dominates).
    assert per_rec(emr, "ROW-LZMA2") < per_rec(emr, "ROW-PLAIN")
    # Columnar beats row per compressor in both environments.
    for fits in (emr, local):
        for codec in ("SNAPPY", "GZIP", "LZMA2"):
            assert per_rec(fits, f"COL-{codec}") < per_rec(fits, f"ROW-{codec}")
    # Every fit is tight (the paper: "well-fitted by Equation 6").  The
    # startup jitter leaves a little variance, hence 0.98 rather than 1.
    for fits in calibrations.values():
        for fit in fits.values():
            assert fit.r_squared > 0.98


def _cluster_for_bench():
    from repro import make_cluster

    return make_cluster("local-hadoop", seed=99)

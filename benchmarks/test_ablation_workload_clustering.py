"""Ablation — workload reduction by k-means clustering (Section III-C1).

The paper clusters query range sizes and selects replicas using only the
cluster centers.  This bench measures the fidelity cost: select on the
reduced workload, evaluate the chosen replica set on the *full* workload
and compare with selecting on the full workload directly.

Expected shape (asserted): fidelity improves with k, and even modest k
(the paper uses 8 grouped queries) stays within a few percent of the
full-workload selection while shrinking the instance dramatically.
"""

import numpy as np
import pytest

from repro import branch_and_bound_select, reduce_workload
from repro.workload import GroupedQuery, Workload

from benchmarks._instances import paper_budget, paper_grid_instance
from benchmarks._report import emit, fmt_row

N_QUERIES = 200
K_SWEEP = (4, 8, 16, 32)


@pytest.fixture(scope="module")
def full_workload():
    rng = np.random.default_rng(10)
    entries = {}
    while len(entries) < N_QUERIES:
        fx, ft = np.exp(rng.uniform(np.log(1e-3), np.log(0.9), 2))
        g = GroupedQuery(fx, fx, ft)  # fractions stored directly as extents
        if g not in entries:
            entries[g] = float(rng.uniform(0.1, 1.0))
    return Workload(list(entries.items()))


def workload_instance(workload, n_records=65e7):
    fractions = tuple((q.width, q.duration) for q in workload.queries())
    weights = tuple(workload.weights())
    return paper_grid_instance(n_records, fractions=fractions, weights=weights)


def test_ablation_workload_clustering(full_workload, benchmark, capsys):
    full_inst = workload_instance(full_workload)
    full_inst = full_inst.with_budget(paper_budget(full_inst, copies=3))
    reference = branch_and_bound_select(full_inst)
    ref_cost = full_inst.workload_cost(reference.selected)

    benchmark(lambda: reduce_workload(full_workload, 8, np.random.default_rng(1)))

    lines = [fmt_row(["k", "sel. on reduced", "evaluated on full", "vs direct"],
                     [4, 16, 18, 10])]
    fidelity = {}
    name_to_col = {full_inst.name_of(j): j for j in range(full_inst.n_replicas)}
    for k in K_SWEEP:
        red = reduce_workload(full_workload, k, np.random.default_rng(k))
        red_inst = workload_instance(red.reduced)
        red_inst = red_inst.with_budget(full_inst.budget)
        sel = branch_and_bound_select(red_inst)
        # Evaluate the replica set chosen on the reduced workload against
        # the full workload (columns align by replica name).
        cols = [name_to_col[red_inst.name_of(j)] for j in sel.selected]
        cost_on_full = full_inst.workload_cost(cols)
        fidelity[k] = cost_on_full / ref_cost
        lines.append(fmt_row(
            [k, red_inst.workload_cost(sel.selected), cost_on_full, fidelity[k]],
            [4, 16, 18, 10]))
    lines.append(f"(direct full-workload selection cost: {ref_cost:.1f}; "
                 f"workload {N_QUERIES} -> k queries)")
    emit("ablation_clustering", "Ablation: k-means workload reduction", lines, capsys)

    assert fidelity[K_SWEEP[-1]] <= fidelity[K_SWEEP[0]] + 1e-9
    assert fidelity[8] < 1.10
    for k in K_SWEEP:
        assert fidelity[k] >= 1.0 - 1e-9

"""Table I — compression ratio of every encoding scheme.

Paper values (ratio vs uncompressed row binary):

                Uncompressed   Snappy        GZip          LZMA2
                Row    Col     Row    Col    Row    Col    Row    Col
    ratio       1      0.557   0.485  0.312  0.283  0.179  0.213  0.156

Expected shape (asserted): column < row for every compressor, and
LZMA2 < GZip < Snappy < Uncompressed within each layout.
"""

import pytest

from repro import all_encoding_schemes, encoding_scheme_by_name, measure_compression_ratio

from benchmarks._report import emit, fmt_row

COMPRESSORS = ("PLAIN", "SNAPPY", "GZIP", "LZMA2")


@pytest.fixture(scope="module")
def ratios(taxi_sample):
    sample = taxi_sample.head(15_000).sorted_by_time()
    return {
        s.name: measure_compression_ratio(s, sample)
        for s in all_encoding_schemes()
    }


def test_table1_compression_ratios(ratios, benchmark, capsys):
    """Regenerate Table I and verify its shape."""
    benchmark.pedantic(
        lambda: measure_compression_ratio(
            encoding_scheme_by_name("COL-GZIP"), _bench_sample(benchmark)),
        rounds=1, iterations=1,
    )
    lines = [fmt_row(["", *COMPRESSORS], [10, 8, 8, 8, 8])]
    for layout in ("ROW", "COL"):
        lines.append(fmt_row(
            [layout, *(ratios[f"{layout}-{c}"] for c in COMPRESSORS)],
            [10, 8, 8, 8, 8],
        ))
    lines.append("")
    lines.append("paper:     ROW  1.000  0.485  0.283  0.213")
    lines.append("paper:     COL  0.557  0.312  0.179  0.156")
    emit("table1", "Table I: compression ratios (vs uncompressed row)", lines, capsys)

    # Shape assertions.
    assert ratios["ROW-PLAIN"] == pytest.approx(1.0)
    for layout in ("ROW", "COL"):
        assert ratios[f"{layout}-LZMA2"] <= ratios[f"{layout}-GZIP"] \
            < ratios[f"{layout}-SNAPPY"] < ratios[f"{layout}-PLAIN"]
    for comp in COMPRESSORS:
        assert ratios[f"COL-{comp}"] < ratios[f"ROW-{comp}"]


_SAMPLE_CACHE = {}


def _bench_sample(benchmark):
    if "s" not in _SAMPLE_CACHE:
        from repro import synthetic_shanghai_taxis
        _SAMPLE_CACHE["s"] = synthetic_shanghai_taxis(2000, seed=5).sorted_by_time()
    return _SAMPLE_CACHE["s"]


@pytest.mark.parametrize("name", [s.name for s in all_encoding_schemes()])
def test_encode_throughput(name, benchmark):
    """Per-scheme encode timing (the cost of building replicas)."""
    scheme = encoding_scheme_by_name(name)
    sample = _bench_sample(benchmark)
    benchmark(scheme.encode, sample)


@pytest.mark.parametrize("name", [s.name for s in all_encoding_schemes()])
def test_decode_throughput(name, benchmark):
    """Per-scheme decode timing (the ScanRate side of Table II)."""
    scheme = encoding_scheme_by_name(name)
    blob = scheme.encode(_bench_sample(benchmark))
    benchmark(scheme.decode, blob)

"""Ablation — partial replication (the paper's stated future work).

A partial replica covering only the hot downtown core costs a fraction
of a full replica's storage but can answer only queries contained in its
coverage.  This bench selects replica sets with and without partial
candidates under a tight budget and measures the workload-cost gain on a
hotspot-heavy positioned workload.

Expected shape (asserted): with the same budget, adding partial
candidates never hurts, and under a hotspot-skewed workload it yields a
strictly cheaper selection that includes at least one partial replica.
"""

import numpy as np
import pytest

from repro import (
    CompositeScheme,
    KdTreePartitioner,
    Query,
    ReplicaProfile,
    branch_and_bound_select,
)
from repro.core import PartialReplica, partial_selection_instance, record_fraction_in_box
from repro.geometry import Box3
from repro.workload import Workload

from benchmarks._report import emit, fmt_row


@pytest.fixture(scope="module")
def setup(taxi_sample, emr_cost_model):
    n_records = 65e6
    profiles = []
    for leaves, slices, enc in [(16, 16, "COL-LZMA2"), (256, 16, "COL-LZMA2"),
                                (16, 64, "COL-GZIP")]:
        part = CompositeScheme(KdTreePartitioner(leaves), slices).build(taxi_sample)
        ratio = {"COL-LZMA2": 0.156, "COL-GZIP": 0.179}[enc]
        profiles.append(ReplicaProfile.from_partitioning(
            part, enc, n_records, n_records * 41 * ratio))
    u = profiles[0].universe
    hot = Box3(121.3, 121.7, 31.05, 31.4, u.t_min, u.t_max)
    frac = record_fraction_in_box(taxi_sample, hot)
    partials = [
        PartialReplica(profiles[1], hot, frac),
        PartialReplica(profiles[2], hot, frac),
    ]
    # Hotspot-skewed positioned workload: most queries hit downtown.
    rng = np.random.default_rng(4)
    entries = []
    for i in range(14):
        w = float(rng.uniform(0.02, 0.06) * (hot.x_max - hot.x_min))
        h = float(rng.uniform(0.02, 0.06) * (hot.y_max - hot.y_min))
        t = float(rng.uniform(0.01, 0.2) * u.duration)
        entries.append((Query(
            w, h, t,
            float(rng.uniform(hot.x_min + w, hot.x_max - w)),
            float(rng.uniform(hot.y_min + h, hot.y_max - h)),
            float(rng.uniform(u.t_min + t, u.t_max - t)),
        ), 5.0))
    entries.append((Query.from_box(u), 1.0))  # the occasional full scan
    return profiles, partials, Workload(entries), frac


def test_ablation_partial_replication(setup, emr_cost_model, benchmark, capsys):
    profiles, partials, workload, frac = setup
    budget = profiles[0].storage_bytes * 1.6  # < two full replicas

    without = partial_selection_instance(
        emr_cost_model, workload, profiles, [], budget)
    with_partial = partial_selection_instance(
        emr_cost_model, workload, profiles, partials, budget)

    sel_without = branch_and_bound_select(without)
    sel_with = branch_and_bound_select(with_partial)
    benchmark(lambda: branch_and_bound_select(with_partial))

    chosen = [with_partial.name_of(j) for j in sel_with.selected]
    lines = [
        f"hot range holds {frac:.0%} of the records; budget = 1.6 full replicas",
        fmt_row(["candidates", "workload cost s", "selected"], [12, 16, 40]),
        fmt_row(["full only", sel_without.cost,
                 ", ".join(without.name_of(j) for j in sel_without.selected)],
                [12, 16, 40]),
        fmt_row(["+ partial", sel_with.cost, ", ".join(chosen)], [12, 16, 40]),
        f"gain from partial replication: "
        f"{(1 - sel_with.cost / sel_without.cost):.1%}",
    ]
    emit("ablation_partial", "Ablation: partial replication (future work)",
         lines, capsys)

    assert sel_with.cost <= sel_without.cost + 1e-9
    assert any("@partial" in name for name in chosen)
    assert sel_with.cost < sel_without.cost * 0.999

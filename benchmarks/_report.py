"""Shared reporting helper for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  The
rows/series are (a) printed straight to the terminal (bypassing pytest's
capture, so they land in ``bench_output.txt``) and (b) written to
``benchmarks/results/<name>.txt`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name: str, title: str, lines: list[str], capsys) -> str:
    """Print a result block through the capture and persist it."""
    text = "\n".join([f"== {title} ==", *lines, ""])
    with capsys.disabled():
        print("\n" + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as f:
        f.write(text + "\n")
    return text


def fmt_row(values, widths) -> str:
    """Fixed-width row formatting for result tables."""
    cells = []
    for value, width in zip(values, widths):
        if isinstance(value, float):
            cells.append(f"{value:>{width}.3f}")
        else:
            cells.append(f"{str(value):>{width}}")
    return "  ".join(cells)

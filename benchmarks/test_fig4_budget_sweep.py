"""Figure 4 — overall query cost relative to ideal vs storage budget.

The paper sweeps the storage budget (x-axis: budget relative to 3 copies
of the optimal single replica) and plots Single / Greedy / MIP / Ideal.
Expected shape (asserted):

- the exact (MIP) solution stays close to the ideal regardless of budget
  and beats the single replica substantially (paper: "up to 80%" faster);
- the greedy approximation ratio decreases sharply as the budget grows
  and is below 1.2 for relative budgets > 1;
- more budget never hurts any method.
"""

import pytest

from repro import AdvisorConfig, ReplicaAdvisor, paper_encoding_schemes, paper_workload
from repro.partition import small_partitioning_schemes

from benchmarks._report import emit, fmt_row

FACTORS = (0.5, 0.75, 1.0, 1.5, 2.0, 3.0)


@pytest.fixture(scope="module")
def advisor(taxi_sample, emr_cost_model):
    return ReplicaAdvisor(
        sample=taxi_sample,
        partitioning_schemes=small_partitioning_schemes(
            spatial_leaves=(4, 16, 64, 256), time_slices=(4, 16, 64)),
        encoding_schemes=paper_encoding_schemes(),
        cost_model=emr_cost_model,
        config=AdvisorConfig(n_records=65_000_000),
    )


@pytest.fixture(scope="module")
def sweep(advisor):
    workload = paper_workload(advisor.universe)
    base = advisor.single_replica_budget(workload, copies=3)
    rows = {}
    for factor in FACTORS:
        greedy = advisor.recommend(workload, base * factor, method="greedy")
        exact = advisor.recommend(workload, base * factor, method="exact")
        rows[factor] = (greedy, exact)
    return workload, base, rows


def test_fig4_budget_sweep(sweep, advisor, benchmark, capsys):
    workload, base, rows = sweep
    benchmark.pedantic(
        lambda: advisor.recommend(workload, base, method="greedy"),
        rounds=1, iterations=1,
    )
    ideal = rows[1.0][1].ideal_cost
    single = rows[1.0][1].single_cost
    lines = [fmt_row(
        ["rel.budget", "Single/Ideal", "Greedy/Ideal", "MIP/Ideal", "#sel"],
        [10, 13, 13, 12, 5])]
    for factor in FACTORS:
        greedy, exact = rows[factor]
        lines.append(fmt_row(
            [factor, single / ideal, greedy.cost / ideal, exact.cost / ideal,
             len(exact.replica_names)],
            [10, 13, 13, 12, 5]))
    lines.append("")
    lines.append("paper Fig 4: MIP hugs the ideal at every budget; greedy ratio")
    lines.append("falls below 1.2 once the relative budget exceeds 1.")
    emit("fig4", "Figure 4: relative overall query cost vs storage budget",
         lines, capsys)

    # Shape assertions.
    for factor in FACTORS:
        greedy, exact = rows[factor]
        assert exact.cost <= greedy.cost + 1e-9
        assert exact.cost <= single + 1e-9
    # Exact close to ideal once the budget reaches the paper's baseline.
    for factor in (1.0, 1.5, 2.0, 3.0):
        assert rows[factor][1].cost / ideal < 1.10
    # Greedy ratio < 1.2 for relative budget > 1 (paper's claim).
    for factor in (1.5, 2.0, 3.0):
        assert rows[factor][0].cost / ideal < 1.2
    # Monotone in budget for both methods.
    for which in (0, 1):
        costs = [rows[f][which].cost for f in FACTORS]
        assert all(a >= b - 1e-9 for a, b in zip(costs, costs[1:]))
    # Diverse replicas beat the single replica clearly at the 1x budget.
    assert rows[1.0][1].speedup_vs_single > 1.15

"""Performance gate for the serving tier's batched dispatch.

The front door's :class:`~repro.serve.Batcher` exists for one reason:
``execute_workload`` decodes each involved partition once per *batch*,
so coalescing concurrent queries into one routed dispatch amortizes
decode work that naive one-query-per-request dispatch repeats.  This
gate drives the same concurrent traffic through both shapes (thread
workers, identical store, identical queries) and asserts:

1. batching actually coalesces — far fewer flushes than queries; and
2. batched dispatch clears a throughput floor over naive dispatch.

Results land in ``benchmarks/results/BENCH_serving.json`` and the
trajectory file.
"""

from __future__ import annotations

import asyncio
import json
import os
import time

import numpy as np
import pytest

from repro.data import synthetic_shanghai_taxis
from repro.encoding import encoding_scheme_by_name
from repro.partition import CompositeScheme, GridPartitioner, KdTreePartitioner
from repro.serve import ShardServer
from repro.storage import materialize_store
from repro.workload import positioned_random_workload

from benchmarks._report import RESULTS_DIR, emit, fmt_row
from benchmarks._trajectory import record as record_trajectory

N_QUERIES = 150


@pytest.fixture(scope="module")
def served_config(tmp_path_factory):
    ds = synthetic_shanghai_taxis(8000, seed=2014, num_taxis=32)
    root = tmp_path_factory.mktemp("bench-serve")
    return materialize_store(
        ds,
        [
            (GridPartitioner(4, 4),
             encoding_scheme_by_name("ROW-PLAIN"), "grid-plain"),
            (CompositeScheme(KdTreePartitioner(16), 4),
             encoding_scheme_by_name("COL-GZIP"), "kd-gzip"),
        ],
        str(root),
    )


@pytest.fixture(scope="module")
def serving_queries(served_config):
    from repro.storage import hydrate_store

    store = hydrate_store(served_config)
    try:
        universe = store.universe
    finally:
        store.close()
    rng = np.random.default_rng(7)
    # Overlapping mid-sized extents: the regime where shared partition
    # decodes dominate and batching has real work to amortize.
    return positioned_random_workload(universe, N_QUERIES, rng,
                                      min_fraction=0.05,
                                      max_fraction=0.4).queries()


def _drive(config, queries, **server_kwargs):
    """Answer all queries concurrently; wall seconds + server stats."""
    async def go():
        async with ShardServer(config, n_shards=2, worker_mode="thread",
                               **server_kwargs) as server:
            # Warm the workers (imports, first decode) off the clock.
            await server.query(queries[0])
            t0 = time.perf_counter()
            results = await server.execute(queries)
            seconds = time.perf_counter() - t0
            stats = server.server_stats()
        return seconds, results, stats

    seconds, results, stats = asyncio.run(go())
    assert not any(isinstance(r, BaseException) for r in results)
    return seconds, stats


def test_batched_dispatch_beats_naive(served_config, serving_queries, capsys):
    """Coalesced dispatch >= 1.5x the throughput of one-query-per-request
    dispatch on the identical sharded store."""
    naive_seconds = batched_seconds = float("inf")
    for _ in range(3):
        s, naive_stats = _drive(served_config, serving_queries, max_batch=1)
        naive_seconds = min(naive_seconds, s)
        s, batched_stats = _drive(served_config, serving_queries,
                                  max_batch=64, window_seconds=0.005)
        batched_seconds = min(batched_seconds, s)

    # Naive mode flushes every query alone; batching must coalesce hard.
    assert naive_stats["batches_flushed"] >= N_QUERIES
    assert batched_stats["batches_flushed"] <= N_QUERIES // 4

    naive_qps = N_QUERIES / naive_seconds
    batched_qps = N_QUERIES / batched_seconds
    speedup = batched_qps / naive_qps
    lines = [
        fmt_row(["dispatch", "seconds", "q/s", "batches"], [10, 10, 12, 9]),
        fmt_row(["naive", naive_seconds, naive_qps,
                 naive_stats["batches_flushed"]], [10, 10, 12, 9]),
        fmt_row(["batched", batched_seconds, batched_qps,
                 batched_stats["batches_flushed"]], [10, 10, 12, 9]),
        f"speedup: {speedup:.1f}x ({N_QUERIES} queries, 2 thread shards)",
    ]
    emit("bench_serving_dispatch", "BENCH: serving-tier batched dispatch",
         lines, capsys)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "BENCH_serving.json"), "w") as f:
        json.dump({
            "n_queries": N_QUERIES,
            "naive_seconds": naive_seconds,
            "batched_seconds": batched_seconds,
            "naive_qps": naive_qps,
            "batched_qps": batched_qps,
            "dispatch_speedup": speedup,
            "batched_flushes": batched_stats["batches_flushed"],
        }, f, indent=2, sort_keys=True)
        f.write("\n")
    # Wall-clock ratios swing with runner load: wide trajectory bands,
    # with the 1.5x floor below as the hard gate.
    record_trajectory(
        "serving.dispatch",
        {"dispatch_speedup": speedup, "batched_qps": batched_qps},
        directions={"dispatch_speedup": "higher", "batched_qps": "higher"},
        tolerances={"dispatch_speedup": 0.5, "batched_qps": 1.0},
    )
    assert speedup >= 1.5, (
        f"batched dispatch only {speedup:.2f}x naive throughput")

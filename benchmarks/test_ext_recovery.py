"""Extension bench — recovery throughput of diverse replicas.

Not a paper figure: quantifies the Section I fault-tolerance claim that
this repository implements.  Measures (a) per-unit repair throughput by
source encoding and (b) targeted repair vs naive full-replica rebuild in
bytes read.

Expected shape (asserted): repairing k of N units reads far fewer bytes
than rebuilding the replica, and recovery restores bit-identical units.
"""

import time

import numpy as np
import pytest

from repro.data import synthetic_shanghai_taxis
from repro.encoding import encoding_scheme_by_name
from repro.partition import CompositeScheme, KdTreePartitioner
from repro.storage import (
    InMemoryStore,
    build_manifest,
    build_replica,
    repair_replica,
    verify_replica,
)

from benchmarks._report import emit, fmt_row


@pytest.fixture(scope="module")
def dataset():
    return synthetic_shanghai_taxis(20_000, seed=2015, num_taxis=32)


def fresh_pair(dataset, source_encoding):
    damaged = build_replica(
        dataset, CompositeScheme(KdTreePartitioner(64), 8),
        encoding_scheme_by_name("COL-GZIP"), InMemoryStore(), name="damaged",
    )
    source = build_replica(
        dataset, CompositeScheme(KdTreePartitioner(4), 4),
        encoding_scheme_by_name(source_encoding), InMemoryStore(), name="source",
    )
    return damaged, source


def test_ext_recovery_throughput(dataset, benchmark, capsys):
    rng = np.random.default_rng(0)
    lines = [fmt_row(["source encoding", "units", "records/s", "verified"],
                     [15, 6, 10, 9])]
    for source_encoding in ("ROW-PLAIN", "COL-GZIP", "ROW-LZMA2"):
        damaged, source = fresh_pair(dataset, source_encoding)
        manifest = build_manifest(damaged)
        victims = sorted(rng.choice(damaged.n_partitions, size=12,
                                    replace=False).tolist())
        for pid in victims:
            damaged.store.delete(damaged.unit_keys[pid])
        t0 = time.perf_counter()
        restored = repair_replica(damaged, victims, source)
        elapsed = time.perf_counter() - t0
        ok = verify_replica(damaged, manifest) == []
        lines.append(fmt_row(
            [source_encoding, len(victims), restored / elapsed, str(ok)],
            [15, 6, 10, 9]))
        assert ok
        assert restored == int(damaged.partitioning.counts[victims].sum())

    damaged, source = fresh_pair(dataset, "COL-GZIP")
    pid = 7
    benchmark.pedantic(
        lambda: repair_replica(damaged_copy(damaged, pid), [pid], source),
        rounds=3, iterations=1,
    )
    emit("ext_recovery", "Extension: diverse-replica repair throughput",
         lines, capsys)


def damaged_copy(replica, pid):
    """Damage one unit in place (idempotent for repeated benchmark rounds)."""
    key = replica.unit_keys[pid]
    try:
        replica.store.delete(key)
    except KeyError:
        pass
    return replica


def test_ext_targeted_repair_reads_less_than_rebuild(dataset, benchmark, capsys):
    damaged, source = fresh_pair(dataset, "COL-GZIP")
    total_source_bytes = source.storage_bytes()
    # Damage the 8 temporal slices of one fine spatial leaf (a localized
    # failure); a batch repairer reads each overlapping source unit once.
    victims = list(range(24, 32))
    needed_keys = set()
    for pid in victims:
        from repro.geometry import Box3
        box = Box3(*damaged.partitioning.box_array[pid])
        for spid in source.involved_partitions(box):
            key = source.unit_keys[int(spid)]
            if key is not None:
                needed_keys.add(key)
        damaged.store.delete(damaged.unit_keys[pid])
    read_bytes = sum(source.store.size(k) for k in needed_keys)
    restored = repair_replica(damaged, victims, source)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [
        f"naive rebuild would read {total_source_bytes / 1e6:.2f} MB "
        f"(the whole source replica)",
        f"targeted repair of {len(victims)} units read at most "
        f"{read_bytes / 1e6:.2f} MB and restored {restored:,} records",
        f"read ratio: {read_bytes / total_source_bytes:.2f}x of one replica",
    ]
    emit("ext_recovery_traffic", "Extension: targeted repair vs full rebuild",
         lines, capsys)
    assert read_bytes < total_source_bytes
    assert restored == int(damaged.partitioning.counts[victims].sum())

"""Figure 6 — per-query weighted cost as the dataset grows.

The paper evaluates the 8-grouped-query workload at 3.7 / 37 / 370 /
3,700 GB (budget: 3 copies of the optimal single replica) and plots
per-query weighted cost for Single / Greedy / MIP / Ideal, with
approximation ratios in brackets; the stated conclusion is that "when
the size of data grows ... the advantages of using diverse replicas
become more and more prominent".

Reproduction protocol.  The candidate set is the paper's literal 25 x 7
grid (analytic Np; see benchmarks/_instances.py).  Each method selects
its replica set **once, on the base 3.7 GB configuration** — the
operational reading under which the paper's monotone trend emerges: a
single physical configuration tuned on today's data rots as data grows
1000-fold, while a diverse replica set spanning several granularities
stays near the per-scale ideal.  (Re-selecting per scale is also
reported, as a secondary table: there the advantage peaks mid-range and
narrows at the extremes — see EXPERIMENTS.md for the discussion.)

Expected shape (asserted): the frozen Single's approximation ratio
degrades monotonically and substantially with scale; frozen Greedy/MIP
stay below 1.3 at every scale (the paper's headline claim); per-scale
re-selected MIP stays within ~5% of ideal everywhere.
"""

import numpy as np
import pytest

from repro import branch_and_bound_select, greedy_select

from benchmarks._instances import paper_budget, paper_grid_instance
from benchmarks._report import emit, fmt_row

#: 65M records = 3.7 GB CSV, then x10 per step, as in the paper.
SCALES = ((65e6, "3.7GB"), (65e7, "37GB"), (65e8, "370GB"), (65e9, "3700GB"))


@pytest.fixture(scope="module")
def frozen_selections():
    """Single / Greedy / MIP selections made at the base scale."""
    base = paper_grid_instance(SCALES[0][0])
    base = base.with_budget(paper_budget(base, copies=3))
    single_j, _ = base.best_single()
    greedy = greedy_select(base)
    exact = branch_and_bound_select(base)
    assert exact.optimal
    return base, (single_j,), greedy.selected, exact.selected


@pytest.fixture(scope="module")
def per_scale():
    """Evaluation instances at every data size."""
    return {label: paper_grid_instance(n) for n, label in SCALES}


def test_fig6_per_query_costs(frozen_selections, per_scale, benchmark, capsys):
    base, single, greedy_sel, exact_sel = frozen_selections
    benchmark.pedantic(
        lambda: branch_and_bound_select(
            paper_grid_instance(SCALES[0][0]).with_budget(base.budget)),
        rounds=1, iterations=1,
    )
    lines = [
        f"selections frozen at 3.7GB: Single={base.name_of(single[0])}; "
        f"Greedy={[base.name_of(j) for j in greedy_sel]}; "
        f"MIP={[base.name_of(j) for j in exact_sel]}",
        "",
    ]
    ratios: dict[str, dict[str, float]] = {}
    for _, label in SCALES:
        inst = per_scale[label]
        weights = inst.weights
        ideal_pq = weights * inst.costs.min(axis=1)
        blocks = {
            "Single": weights * inst.per_query_cost(single),
            "Greedy": weights * inst.per_query_cost(greedy_sel),
            "MIP": weights * inst.per_query_cost(exact_sel),
            "Ideal": ideal_pq,
        }
        ratios[label] = {
            name: float(pq.sum() / ideal_pq.sum()) for name, pq in blocks.items()
        }
        lines.append(
            f"[data size {label}]  approximation ratios: "
            + ", ".join(f"{k} {v:.2f}" for k, v in ratios[label].items())
        )
        lines.append(fmt_row(["query", *blocks], [6, 11, 11, 11, 11]))
        for i in range(inst.n_queries):
            lines.append(fmt_row(
                [f"q{i + 1}", *(blocks[k][i] for k in blocks)],
                [6, 11, 11, 11, 11]))
        lines.append("")
    emit("fig6", "Figure 6: per-query weighted cost (s) by data size "
         "(selections frozen at 3.7GB)", lines, capsys)

    labels = [label for _, label in SCALES]
    singles = [ratios[l]["Single"] for l in labels]
    # Single degrades monotonically and substantially with data growth.
    assert all(a <= b + 1e-9 for a, b in zip(singles, singles[1:]))
    assert singles[-1] > singles[0] + 0.2
    # Diverse replicas stay below the paper's 1.3 everywhere.
    for l in labels:
        assert ratios[l]["Greedy"] < 1.3
        assert ratios[l]["MIP"] < 1.3
        assert ratios[l]["Greedy"] <= ratios[l]["Single"] + 1e-9
    # At the base scale the exact selection is (near-)optimal.
    assert ratios[labels[0]]["MIP"] < 1.05


def test_fig6_reselected_per_scale(per_scale, benchmark, capsys):
    """Secondary protocol: re-run selection at every scale."""
    benchmark.pedantic(
        lambda: greedy_select(
            paper_grid_instance(SCALES[1][0]).with_budget(
                paper_budget(paper_grid_instance(SCALES[1][0])))),
        rounds=1, iterations=1,
    )
    lines = [fmt_row(["scale", "Single", "Greedy", "MIP", "Ideal"],
                     [8, 8, 8, 8, 8])]
    for _, label in SCALES:
        inst = per_scale[label].with_budget(0.0)
        inst = inst.with_budget(paper_budget(inst, copies=3))
        ideal = inst.ideal_cost()
        _, single_cost = inst.best_single()
        greedy = greedy_select(inst)
        exact = branch_and_bound_select(inst)
        lines.append(fmt_row(
            [label, single_cost / ideal, greedy.cost / ideal,
             exact.cost / ideal, 1.0],
            [8, 8, 8, 8, 8]))
        assert exact.cost <= greedy.cost + 1e-9
        assert exact.cost / ideal < 1.05
        assert greedy.cost / ideal < 1.3
    lines.append("(approximation ratios; selection re-run per scale)")
    emit("fig6_reselected", "Figure 6 variant: per-scale re-selection",
         lines, capsys)


def test_fig6_routing_disagrees_across_query_sizes(per_scale, benchmark, capsys):
    """At scale, the smallest and largest query prefer different physical
    organizations — the premise of diverse replicas."""
    inst = per_scale[SCALES[-1][1]]
    benchmark.pedantic(lambda: inst.ideal_cost(), rounds=3, iterations=1)
    best = inst.costs.argmin(axis=1)
    lines = ["ideal replica per query at 3700GB (no budget):"]
    for i, j in enumerate(best):
        lines.append(f"  q{i + 1}: {inst.name_of(int(j))}")
    emit("fig6_routing", "Figure 6 follow-up: per-query ideal replicas",
         lines, capsys)
    assert len(set(best.tolist())) >= 3
    assert best[0] != best[-1]

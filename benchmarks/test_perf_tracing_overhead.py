"""Performance gate for distributed tracing overhead.

Tracing is meant to be always-affordable: span handles are cheap
dataclasses, the disabled path is a shared no-op recorder, and the
enabled path appends to a bounded ring.  This gate drives the identical
concurrent workload through the sharded server twice — tracing off,
tracing on — and asserts the traced run stays within 1.10x the
untraced wall clock (min over repeats, so runner noise has to be
sustained to fail it).

Results land in ``benchmarks/results/BENCH_tracing_overhead.json`` and
the trajectory file.
"""

from __future__ import annotations

import asyncio
import json
import os
import time

import numpy as np
import pytest

from repro.data import synthetic_shanghai_taxis
from repro.encoding import encoding_scheme_by_name
from repro.partition import CompositeScheme, GridPartitioner, KdTreePartitioner
from repro.serve import ShardServer
from repro.storage import materialize_store
from repro.workload import positioned_random_workload

from benchmarks._report import RESULTS_DIR, emit, fmt_row
from benchmarks._trajectory import record as record_trajectory

N_QUERIES = 150
N_PASSES = 3
MAX_OVERHEAD = 1.10
REPEATS = 5


@pytest.fixture(scope="module")
def traced_config(tmp_path_factory):
    ds = synthetic_shanghai_taxis(30000, seed=2014, num_taxis=48)
    root = tmp_path_factory.mktemp("bench-tracing")
    return materialize_store(
        ds,
        [
            (GridPartitioner(4, 4),
             encoding_scheme_by_name("ROW-PLAIN"), "grid-plain"),
            (CompositeScheme(KdTreePartitioner(16), 4),
             encoding_scheme_by_name("COL-GZIP"), "kd-gzip"),
        ],
        str(root),
    )


@pytest.fixture(scope="module")
def tracing_queries(traced_config):
    from repro.storage import hydrate_store

    store = hydrate_store(traced_config)
    try:
        universe = store.universe
    finally:
        store.close()
    rng = np.random.default_rng(11)
    return positioned_random_workload(universe, N_QUERIES, rng,
                                      min_fraction=0.05,
                                      max_fraction=0.4).queries()


def _drive(config, queries, tracing):
    async def go():
        async with ShardServer(config, n_shards=2, worker_mode="thread",
                               max_batch=64, window_seconds=0.002,
                               tracing=tracing) as server:
            # Warm the workers (imports, first decode) off the clock.
            await server.query(queries[0])
            t0 = time.perf_counter()
            all_results = []
            # Several passes lengthen the timed section past scheduler
            # jitter; the ratio of ~0.2s sections is far more stable
            # than the ratio of ~0.06s ones.
            for _ in range(N_PASSES):
                all_results.append(await server.execute(queries))
            seconds = time.perf_counter() - t0
        return seconds, all_results

    seconds, all_results = asyncio.run(go())
    for results in all_results:
        assert not any(isinstance(r, BaseException) for r in results)
    return seconds


def test_tracing_overhead_is_bounded(traced_config, tracing_queries,
                                     capsys):
    """Tracing-on batched dispatch must stay within 1.10x tracing-off
    on the identical store and workload."""
    off_seconds = on_seconds = float("inf")
    for _ in range(REPEATS):
        off_seconds = min(off_seconds,
                          _drive(traced_config, tracing_queries, False))
        on_seconds = min(on_seconds,
                         _drive(traced_config, tracing_queries, True))

    ratio = on_seconds / off_seconds
    lines = [
        fmt_row(["tracing", "seconds", "q/s"], [10, 10, 12]),
        fmt_row(["off", off_seconds, N_QUERIES / off_seconds],
                [10, 10, 12]),
        fmt_row(["on", on_seconds, N_QUERIES / on_seconds],
                [10, 10, 12]),
        f"overhead: {ratio:.3f}x (gate: <= {MAX_OVERHEAD}x, "
        f"min over {REPEATS} repeats)",
    ]
    emit("bench_tracing_overhead", "BENCH: distributed tracing overhead",
         lines, capsys)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR,
                           "BENCH_tracing_overhead.json"), "w") as f:
        json.dump({
            "n_queries": N_QUERIES,
            "n_passes": N_PASSES,
            "tracing_off_seconds": off_seconds,
            "tracing_on_seconds": on_seconds,
            "overhead_ratio": ratio,
        }, f, indent=2, sort_keys=True)
        f.write("\n")
    # Wall-clock ratio near 1.0 jitters with runner load; the hard gate
    # below is the contract, the trajectory band just flags drift.
    record_trajectory(
        "tracing.overhead",
        {"overhead_ratio": ratio},
        directions={"overhead_ratio": "lower"},
        tolerances={"overhead_ratio": 0.15},
    )
    assert ratio <= MAX_OVERHEAD, (
        f"tracing overhead {ratio:.3f}x exceeds {MAX_OVERHEAD}x")

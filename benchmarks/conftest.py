"""Shared fixtures for the benchmark harness.

Expensive inputs (the synthetic taxi sample, calibrated cost models) are
session-scoped so the table/figure benches share them.
"""

from __future__ import annotations

import pytest

from repro import (
    cost_model_for,
    make_cluster,
    paper_encoding_schemes,
    synthetic_shanghai_taxis,
)


@pytest.fixture(scope="session")
def taxi_sample():
    """The evaluation sample: a synthetic stand-in for the paper's 65M
    Shanghai records, at laptop scale."""
    return synthetic_shanghai_taxis(30_000, seed=2014, num_taxis=64)


@pytest.fixture(scope="session")
def emr_cluster():
    return make_cluster("amazon-s3-emr", seed=2014)


@pytest.fixture(scope="session")
def hadoop_cluster():
    return make_cluster("local-hadoop", seed=2014)


@pytest.fixture(scope="session")
def emr_cost_model(emr_cluster):
    """Cost model calibrated on the simulated EMR environment with the
    paper's 7 encodings."""
    return cost_model_for(
        emr_cluster, [s.name for s in paper_encoding_schemes()],
    )


@pytest.fixture(scope="session")
def hadoop_cost_model(hadoop_cluster):
    return cost_model_for(
        hadoop_cluster, [s.name for s in paper_encoding_schemes()],
    )

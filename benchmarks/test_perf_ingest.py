"""Performance gate for the always-on ingest path.

The whole point of background compaction is that `append()` never waits
for a replica rebuild: the writer thread frames the batch, extends the
live buffer, and returns, while a worker rebuilds the replica set off
to the side and swaps it in atomically.  With *synchronous* compaction
the unlucky append that tips the buffer over ``auto_compact_at`` pays
for the entire rebuild inline — a tail-latency cliff three-plus orders
of magnitude above the median.

This gate streams the identical batch sequence into both shapes at
``auto_compact_at`` scale and asserts the p99 append latency with
background compaction is at least 10x lower than the synchronous
baseline.  Results land in ``benchmarks/results/BENCH_ingest.json``
and the trajectory file.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.encoding import encoding_scheme_by_name
from repro.partition import CompositeScheme, KdTreePartitioner
from repro.storage.ingest import IngestingBlotStore, ReplicaSpec

from benchmarks._report import RESULTS_DIR, emit, fmt_row
from benchmarks._trajectory import record as record_trajectory

N_INITIAL = 6_000
N_STREAM = 8_000
BATCH = 50
AUTO_COMPACT_AT = 2_000


def _specs():
    return [ReplicaSpec(CompositeScheme(KdTreePartitioner(8), 4),
                        encoding_scheme_by_name("COL-GZIP"), name="main")]


def _stream_appends(initial, batches, *, background):
    """Append every batch, timing each `append()` call; returns the
    per-append latency array (seconds)."""
    store = IngestingBlotStore(
        initial, _specs(),
        auto_compact_at=AUTO_COMPACT_AT,
        background_compaction=background,
    )
    try:
        latencies = np.empty(len(batches))
        for i, batch in enumerate(batches):
            t0 = time.perf_counter()
            store.append(batch)
            latencies[i] = time.perf_counter() - t0
        if background:
            store.wait_for_compaction(timeout=120)
            assert store.compaction_failures == 0, store.last_compaction_error
        assert store.compactions >= 2, (
            "benchmark scale never triggered auto-compaction: "
            f"{store.compactions} compactions")
        assert len(store) == len(initial) + sum(len(b) for b in batches)
    finally:
        store.close()
    return latencies


def test_background_compaction_unblocks_appends(taxi_sample, capsys):
    """p99 append latency with background compaction >= 10x lower than
    the synchronous-compaction baseline on the identical stream."""
    initial = taxi_sample.take(np.arange(0, N_INITIAL))
    batches = [taxi_sample.take(np.arange(lo, lo + BATCH))
               for lo in range(N_INITIAL, N_INITIAL + N_STREAM, BATCH)]

    # Best-of-2 per shape: the gate compares steady-state behaviour, not
    # a single run's scheduler noise.
    sync_p99 = bg_p99 = float("inf")
    sync_mean = bg_mean = float("inf")
    for _ in range(2):
        lat = _stream_appends(initial, batches, background=False)
        if float(np.percentile(lat, 99)) < sync_p99:
            sync_p99 = float(np.percentile(lat, 99))
            sync_mean = float(lat.mean())
        lat = _stream_appends(initial, batches, background=True)
        if float(np.percentile(lat, 99)) < bg_p99:
            bg_p99 = float(np.percentile(lat, 99))
            bg_mean = float(lat.mean())

    speedup = sync_p99 / bg_p99
    lines = [
        fmt_row(["compaction", "p99 ms", "mean ms"], [12, 12, 12]),
        fmt_row(["sync", sync_p99 * 1e3, sync_mean * 1e3], [12, 12, 12]),
        fmt_row(["background", bg_p99 * 1e3, bg_mean * 1e3], [12, 12, 12]),
        f"p99 speedup: {speedup:.1f}x "
        f"({len(batches)} appends of {BATCH}, "
        f"auto_compact_at={AUTO_COMPACT_AT})",
    ]
    emit("bench_ingest_append", "BENCH: ingest append tail latency", lines,
         capsys)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "BENCH_ingest.json"), "w") as f:
        json.dump({
            "n_appends": len(batches),
            "batch_records": BATCH,
            "auto_compact_at": AUTO_COMPACT_AT,
            "sync_p99_seconds": sync_p99,
            "background_p99_seconds": bg_p99,
            "sync_mean_seconds": sync_mean,
            "background_mean_seconds": bg_mean,
            "p99_speedup": speedup,
        }, f, indent=2, sort_keys=True)
        f.write("\n")
    # Tail-latency ratios swing with runner load: wide trajectory bands,
    # with the 10x floor below as the hard gate.
    record_trajectory(
        "ingest.append_tail",
        {"p99_speedup": speedup, "background_p99_ms": bg_p99 * 1e3},
        directions={"p99_speedup": "higher", "background_p99_ms": "lower"},
        tolerances={"p99_speedup": 0.5, "background_p99_ms": 1.0},
    )
    assert speedup >= 10.0, (
        f"background compaction p99 only {speedup:.1f}x better than "
        f"synchronous ({sync_p99 * 1e3:.2f} ms vs {bg_p99 * 1e3:.2f} ms)")

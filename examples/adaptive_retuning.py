#!/usr/bin/env python3
"""Adaptive reconfiguration as the workload drifts.

BLOT systems "adaptively optimize the configuration of the physical
storage organization based on analyzing the historical queries" (paper
Section II-E).  This demo deploys a replica set tuned for analytics-style
big scans, then lets a month of interactive traffic (tiny range queries)
arrive; the reconfigurator notices the drift from the query log and
re-selects the replica set, quantifying the improvement.

    python examples/adaptive_retuning.py
"""

import numpy as np

from repro import (
    AdvisorConfig,
    GroupedQuery,
    ReplicaAdvisor,
    Workload,
    cost_model_for,
    make_cluster,
    paper_encoding_schemes,
    synthetic_shanghai_taxis,
)
from repro.core import AdaptiveReconfigurator
from repro.partition import small_partitioning_schemes


def live_queries(universe, frac, n, rng):
    out = []
    for _ in range(n):
        w = universe.width * frac
        h = universe.height * frac
        t = universe.duration * frac
        out.append(GroupedQuery(w, h, t).at(
            rng.uniform(universe.x_min + w / 2, universe.x_max - w / 2),
            rng.uniform(universe.y_min + h / 2, universe.y_max - h / 2),
            rng.uniform(universe.t_min + t / 2, universe.t_max - t / 2),
        ))
    return out


def main() -> None:
    sample = synthetic_shanghai_taxis(15_000, seed=55)
    cluster = make_cluster("amazon-s3-emr", seed=8)
    model = cost_model_for(cluster, [s.name for s in paper_encoding_schemes()])
    advisor = ReplicaAdvisor(
        sample,
        small_partitioning_schemes((4, 16, 64, 256), (4, 16, 64)),
        paper_encoding_schemes(),
        model,
        AdvisorConfig(n_records=65_000_000),
    )
    u = advisor.universe

    # Day 0: the DBA expects analytics scans.
    expected = Workload([
        (GroupedQuery(u.width * 0.7, u.height * 0.7, u.duration * 0.5), 0.8),
        (GroupedQuery(u.width * 0.3, u.height * 0.3, u.duration * 0.2), 0.2),
    ])
    budget = advisor.single_replica_budget(expected, copies=3)
    recon = AdaptiveReconfigurator(advisor, budget, method="exact",
                                   threshold=0.05, min_queries=20)
    initial = recon.deploy_initial(expected)
    print("deployed for the expected scan workload:")
    for name in initial.replica_names:
        print(f"  {name}")

    # Reality: interactive dashboards issue tiny queries.
    rng = np.random.default_rng(9)
    print("\nobserving live traffic (40 tiny interactive queries)...")
    for q in live_queries(u, 0.004, 40, rng):
        recon.observe(q)

    decision = recon.evaluate()
    print(f"retune evaluation: deployed-set cost {decision.current_cost:.1f}s, "
          f"re-optimized {decision.optimized_cost:.1f}s "
          f"({decision.improvement:.0%} improvement)")
    if decision.retuned:
        print("replica set redeployed:")
        for name in recon.deployed.replica_names:
            print(f"  {name}")
    else:
        print("drift below threshold; keeping the deployed set")

    # And stable traffic afterwards does not thrash.
    for q in live_queries(u, 0.004, 25, rng):
        recon.observe(q)
    second = recon.evaluate()
    print(f"\nsecond evaluation on the same traffic: retuned={second.retuned} "
          f"(improvement {second.improvement:.1%}) — no thrashing")


if __name__ == "__main__":
    main()

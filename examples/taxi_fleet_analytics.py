#!/usr/bin/env python3
"""Taxi fleet analytics on a BLOT store.

The paper's motivating applications — urban transportation planning and
human behaviour analysis — expressed as spatio-temporal range queries
against a diverse-replica store: a city-grid occupancy heatmap, hotspot
ranking, and hour-by-hour fleet activity.  Every statistic below is
computed *through the storage engine's range queries*, not by touching
the raw arrays, so the example exercises the full read path.

    python examples/taxi_fleet_analytics.py
"""

import numpy as np

from repro import (
    BlotStore,
    Box3,
    CompositeScheme,
    InMemoryStore,
    KdTreePartitioner,
    cost_model_for,
    encoding_scheme_by_name,
    make_cluster,
    paper_encoding_schemes,
    synthetic_shanghai_taxis,
)
from repro.data import od_matrix, split_trips, trajectories_of, trajectory_stats

GRID = 8  # heatmap resolution


def build_store() -> BlotStore:
    data = synthetic_shanghai_taxis(40_000, seed=20, num_taxis=96)
    cluster = make_cluster("local-hadoop", seed=3)
    model = cost_model_for(cluster, [s.name for s in paper_encoding_schemes()])
    store = BlotStore(data, cost_model=model)
    # Fine spatial replica for cell-sized queries, coarse for day-sized.
    store.add_replica(CompositeScheme(KdTreePartitioner(64), 4),
                      encoding_scheme_by_name("COL-GZIP"),
                      InMemoryStore(), name="spatial-fine")
    store.add_replica(CompositeScheme(KdTreePartitioner(4), 16),
                      encoding_scheme_by_name("COL-LZMA2"),
                      InMemoryStore(), name="temporal-fine")
    return store


def occupancy_heatmap(store: BlotStore) -> np.ndarray:
    """Occupied-taxi share per grid cell — 'equal-sized grid, simple
    statistics for each grid cell' is the paper's own example of a
    grouped-query workload (Section III-C1)."""
    u = store.universe
    xs = np.linspace(u.x_min, u.x_max, GRID + 1)
    ys = np.linspace(u.y_min, u.y_max, GRID + 1)
    heat = np.zeros((GRID, GRID))
    for i in range(GRID):
        for j in range(GRID):
            cell = Box3(xs[i], xs[i + 1], ys[j], ys[j + 1], u.t_min, u.t_max)
            res = store.query(cell)
            if len(res.records):
                heat[j, i] = float(res.records.column("occupied").mean())
            else:
                heat[j, i] = np.nan
    return heat


def hotspot_ranking(store: BlotStore, top: int = 5) -> list[tuple[int, int, int]]:
    """Cells with the most pickups (first samples of each trip)."""
    u = store.universe
    xs = np.linspace(u.x_min, u.x_max, GRID + 1)
    ys = np.linspace(u.y_min, u.y_max, GRID + 1)
    scores = []
    for i in range(GRID):
        for j in range(GRID):
            cell = Box3(xs[i], xs[i + 1], ys[j], ys[j + 1], u.t_min, u.t_max)
            res = store.query(cell)
            if len(res.records) == 0:
                continue
            occupied = res.records.column("occupied")
            trips = res.records.column("trip_id")[occupied == 1]
            scores.append((len(np.unique(trips)), i, j))
    scores.sort(reverse=True)
    return [(n, i, j) for n, i, j in scores[:top]]


def hourly_activity(store: BlotStore, windows: int = 8) -> list[tuple[float, int, str]]:
    """Records per time window, each query routed independently."""
    u = store.universe
    step = u.duration / windows
    rows = []
    for k in range(windows):
        t0 = u.t_min + k * step
        window = Box3(u.x_min, u.x_max, u.y_min, u.y_max, t0, t0 + step)
        res = store.query(window)
        rows.append(((t0 - u.t_min) / 3600.0, len(res.records),
                     res.stats.replica_name))
    return rows


def main() -> None:
    store = build_store()
    print(f"store: {len(store.dataset):,} records, replicas "
          f"{store.replica_names()}, total storage "
          f"{store.total_storage_bytes() / 1e6:.1f} MB\n")

    heat = occupancy_heatmap(store)
    print("occupied-taxi share per city cell (north at top):")
    for row in heat[::-1]:
        print("  " + " ".join("  ." if np.isnan(v) else f"{v:.2f}" for v in row))

    print("\ntop pickup hotspots (trips, cell):")
    for n, i, j in hotspot_ranking(store):
        print(f"  cell ({i}, {j}): {n:,} trips")

    print("\nfleet activity over the observation window:")
    for hours_in, count, replica in hourly_activity(store):
        bar = "#" * max(1, count // 400)
        print(f"  +{hours_in:5.1f}h  {count:6,} samples  via {replica:13s} {bar}")

    # Trajectory-level analytics over one engine range query.
    busiest_cell = store.query(store.universe).records
    trajs = trajectories_of(busiest_cell)
    stats = sorted(
        (trajectory_stats(oid, t) for oid, t in trajs.items()),
        key=lambda s: -s.length_km,
    )
    print("\nhardest-working taxis (by distance driven):")
    for s in stats[:5]:
        trips = len(split_trips(trajs[s.oid]))
        print(f"  taxi {s.oid:3d}: {s.length_km:7.1f} km, {trips:3d} trips, "
              f"mean {s.mean_speed_kmh:5.1f} km/h, "
              f"occupied {s.occupied_fraction:.0%}")

    od = od_matrix(store.dataset, 4, 4)
    top = np.dstack(np.unravel_index(np.argsort(od, axis=None)[::-1], od.shape))[0]
    print("\ntop origin->destination flows (4x4 grid cells):")
    for o, d in top[:5]:
        if od[o, d] == 0:
            break
        print(f"  cell {o:2d} -> cell {d:2d}: {od[o, d]:4d} trips")


if __name__ == "__main__":
    main()

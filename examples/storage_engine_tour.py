#!/usr/bin/env python3
"""A tour of the BLOT storage engine internals.

Walks through what the paper's Sections II-B/II-C/II-D describe: how a
dataset is partitioned, how encodings trade size for scan speed, and how
the Figure 2 trade-off (involved partitions Np vs fraction of data
scanned S) plays out on real data.

    python examples/storage_engine_tour.py
"""

import time

from repro import (
    Box3,
    CompositeScheme,
    GridPartitioner,
    InMemoryStore,
    KdTreePartitioner,
    all_encoding_schemes,
    build_replica,
    encoding_scheme_by_name,
    measure_compression_ratio,
    synthetic_shanghai_taxis,
)


def partitioning_section(data) -> None:
    print("=== partitioning (Section II-B) ===")
    for scheme in (GridPartitioner(4, 4, 4),
                   CompositeScheme(KdTreePartitioner(16), 4)):
        p = scheme.build(data)
        print(f"  {p.scheme_name:10s} {p.n_partitions:4d} partitions, "
              f"skew (max/mean count) = {p.skew():.2f}")
    print("  -> the equal-count k-d tree keeps partitions non-skewed, the\n"
          "     property the cost model assumes; the uniform grid does not.\n")


def encoding_section(data) -> None:
    print("=== encoding (Section II-C, Table I) ===")
    sample = data.head(8000).sorted_by_time()
    print(f"  {'scheme':11s} {'ratio':>6s} {'enc MB/s':>9s} {'dec MB/s':>9s}")
    base_bytes = None
    for scheme in all_encoding_schemes():
        t0 = time.perf_counter()
        blob = scheme.encode(sample)
        enc_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        scheme.decode(blob)
        dec_s = time.perf_counter() - t0
        ratio = measure_compression_ratio(scheme, sample)
        if base_bytes is None:
            base_bytes = len(blob)
        mb = base_bytes / 1e6
        print(f"  {scheme.name:11s} {ratio:6.3f} {mb / max(enc_s, 1e-9):9.1f} "
              f"{mb / max(dec_s, 1e-9):9.1f}")
    print("  -> higher compression = slower scan: the trade-off the replica\n"
          "     selection problem balances.\n")


def figure2_section(data) -> None:
    print("=== the Figure 2 trade-off: Np vs fraction scanned ===")
    bb = data.bounding_box()
    c = bb.centroid
    query = Box3.from_center_size((c.x, c.y, c.t), bb.width * 0.3,
                                  bb.height * 0.3, bb.duration)
    enc = encoding_scheme_by_name("ROW-PLAIN")
    print(f"  query: 30% x 30% of space, full time range")
    print(f"  {'layout':12s} {'Np':>5s} {'S (scanned)':>12s}")
    for scheme in (GridPartitioner(2, 2, 1), GridPartitioner(4, 2, 1),
                   GridPartitioner(8, 8, 1),
                   CompositeScheme(KdTreePartitioner(16), 1)):
        replica = build_replica(data, scheme, enc, InMemoryStore())
        involved = replica.involved_partitions(query)
        scanned = sum(
            int(replica.partitioning.counts[i]) for i in involved
        )
        print(f"  {replica.partitioning.scheme_name:12s} {len(involved):5d} "
              f"{scanned / len(data):12.1%}")
    print("  -> fine layouts scan fewer records but touch more partitions\n"
          "     (each paying ExtraTime); no single layout wins all queries.\n")


def main() -> None:
    data = synthetic_shanghai_taxis(20_000, seed=31)
    print(f"dataset: {len(data):,} records, "
          f"{data.csv_size_bytes() / 1e6:.1f} MB as CSV, "
          f"{data.binary_size_bytes() / 1e6:.1f} MB as raw columns\n")
    partitioning_section(data)
    encoding_section(data)
    figure2_section(data)


if __name__ == "__main__":
    main()

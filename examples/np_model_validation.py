#!/usr/bin/env python3
"""Validate the analytic Np model (paper Section IV-B).

For grouped queries of many sizes, compares three estimates of the
expected number of partitions to scan:

- **analytic** — the closed form of Eq. 11-12 (O(|P|) per query);
- **monte-carlo** — sample centroids uniformly over CR(QG), count box
  intersections (the Eq. 8 integral, numerically);
- **positional mean** — the mean of exact Np over a fresh set of sampled
  positioned queries (an independent check of both).

    python examples/np_model_validation.py
"""

import numpy as np

from repro import (
    CompositeScheme,
    GroupedQuery,
    KdTreePartitioner,
    ReplicaProfile,
    expected_partitions,
    synthetic_shanghai_taxis,
)
from repro.costmodel import monte_carlo_partitions
from repro.cluster import position_query


def main() -> None:
    data = synthetic_shanghai_taxis(20_000, seed=77)
    partitioning = CompositeScheme(KdTreePartitioner(16), 8).build(data)
    profile = ReplicaProfile.from_partitioning(
        partitioning, "ROW-PLAIN", len(data), 0.0)
    u = profile.universe
    rng_mc = np.random.default_rng(1)
    rng_pos = np.random.default_rng(2)

    print(f"partitioning: {partitioning.scheme_name} "
          f"({partitioning.n_partitions} partitions)\n")
    print(f"{'size frac':>9s} {'analytic':>9s} {'monte-carlo':>12s} "
          f"{'positional':>11s} {'mc err':>7s}")
    for frac in (0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.6, 0.9):
        g = GroupedQuery(u.width * frac, u.height * frac, u.duration * frac)
        analytic = expected_partitions(profile, g)
        mc = monte_carlo_partitions(profile, g, rng_mc, trials=2000)
        positional = float(np.mean([
            expected_partitions(profile, position_query(g, profile, rng_pos))
            for _ in range(500)
        ]))
        err = abs(analytic - mc) / mc
        print(f"{frac:9.2f} {analytic:9.2f} {mc:12.2f} {positional:11.2f} "
              f"{err:7.2%}")
    print("\nThe closed form tracks both sampled estimates across three\n"
          "orders of magnitude of query size, 'without generating actual\n"
          "replicas' (Section III-A) and without numeric integration.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Fault tolerance with diverse replicas.

Demonstrates the paper's Section I claim: "in spite of the diversity of
physical data organizations, diverse replicas can recover each other when
failures occur because they share the same logical view of the data."

The demo builds two physically different replicas, places their storage
units across a 6-node cluster in isolated zones, kills a node, and then
repairs every lost unit by running range queries against the surviving
diverse replica — comparing the recovery traffic against naive full-copy
recovery.

    python examples/fault_tolerance_demo.py
"""

from repro import synthetic_shanghai_taxis
from repro.cluster import ClusterPlacement
from repro.encoding import encoding_scheme_by_name
from repro.partition import CompositeScheme, KdTreePartitioner
from repro.storage import (
    InMemoryStore,
    build_manifest,
    build_replica,
    recover_dataset,
    verify_replica,
)


def main() -> None:
    data = synthetic_shanghai_taxis(20_000, seed=44)
    print(f"dataset: {len(data):,} records\n")

    # Two diverse replicas: different partitioning AND encoding.
    fine = build_replica(data, CompositeScheme(KdTreePartitioner(32), 8),
                         encoding_scheme_by_name("COL-GZIP"),
                         InMemoryStore(), name="fine-col-gzip")
    coarse = build_replica(data, CompositeScheme(KdTreePartitioner(4), 4),
                           encoding_scheme_by_name("ROW-LZMA2"),
                           InMemoryStore(), name="coarse-row-lzma")
    manifests = {r.name: build_manifest(r) for r in (fine, coarse)}
    print(f"replica {fine.name}: {fine.n_partitions} units, "
          f"{fine.storage_bytes() / 1e6:.2f} MB")
    print(f"replica {coarse.name}: {coarse.n_partitions} units, "
          f"{coarse.storage_bytes() / 1e6:.2f} MB\n")

    # Zone-isolated placement on a 6-node cluster.
    placement = ClusterPlacement(n_nodes=6)
    placement.add_replica(fine, policy="spread", nodes=[0, 1, 2])
    placement.add_replica(coarse, policy="spread", nodes=[3, 4, 5])
    print("unit placement (units per node):", placement.load().tolist())

    # Disaster strikes.
    report = placement.fail_node(1)
    lost = report.lost_by_replica()
    print(f"\nnode 1 failed: lost {sum(map(len, lost.values()))} units "
          f"{ {k: len(v) for k, v in lost.items()} }")
    for name, replica in (("fine-col-gzip", fine), ("coarse-row-lzma", coarse)):
        damaged = verify_replica(replica, manifests[name])
        print(f"  integrity check {name}: {len(damaged)} damaged units")

    # Recovery: each lost unit is one range query on the diverse replica.
    plan = placement.plan_recovery(report)
    print(f"\nrecovery plan: {len(plan.steps)} repairs, "
          f"complete={plan.is_complete}")
    for step in plan.steps[:5]:
        print(f"  repair {step.replica_name} partition {step.partition_id} "
              f"from {step.source_name}")
    if len(plan.steps) > 5:
        print(f"  ... and {len(plan.steps) - 5} more")
    restored = placement.execute_recovery(plan)
    print(f"restored {restored:,} records")

    # Prove the logical view is intact, bit for bit.
    for name, replica in (("fine-col-gzip", fine), ("coarse-row-lzma", coarse)):
        damaged = verify_replica(replica, manifests[name])
        print(f"  integrity check {name}: {len(damaged)} damaged units")
    assert recover_dataset(fine) == recover_dataset(coarse)
    print("\nlogical views of both replicas identical after recovery.")
    print("(naive recovery would have copied a full replica; diverse "
          "recovery read only the damaged regions.)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""A day in the life of a BLOT deployment.

End-to-end operational pipeline combining the library's moving parts:

1. bootstrap replicas from the initial data load;
2. ingest live GPS batches into the delta buffer (queries stay correct
   throughout, auto-compaction folds the buffer into fresh replicas);
3. log the served queries, detect workload drift and retune the replica
   set with the advisor;
4. report storage, selectivity estimates and final query statistics.

    python examples/ingest_pipeline.py
"""

import numpy as np

from repro import (
    AdvisorConfig,
    GroupedQuery,
    ReplicaAdvisor,
    Workload,
    cost_model_for,
    make_cluster,
    paper_encoding_schemes,
    synthetic_shanghai_taxis,
)
from repro.core import AdaptiveReconfigurator
from repro.costmodel import Histogram3D
from repro.encoding import encoding_scheme_by_name
from repro.partition import CompositeScheme, KdTreePartitioner, small_partitioning_schemes
from repro.storage import IngestingBlotStore, ReplicaSpec


def main() -> None:
    rng = np.random.default_rng(13)

    # --- day 0: bootstrap -------------------------------------------------
    full = synthetic_shanghai_taxis(30_000, seed=77, num_taxis=48)
    initial = full.take(np.arange(0, 12_000))
    batches = [full.take(np.arange(12_000 + i * 3_000,
                                   12_000 + (i + 1) * 3_000))
               for i in range(6)]

    cluster = make_cluster("amazon-s3-emr", seed=2)
    model = cost_model_for(cluster, [s.name for s in paper_encoding_schemes()])
    store = IngestingBlotStore(
        initial,
        [
            ReplicaSpec(CompositeScheme(KdTreePartitioner(16), 8),
                        encoding_scheme_by_name("COL-GZIP"), name="fine"),
            ReplicaSpec(CompositeScheme(KdTreePartitioner(4), 4),
                        encoding_scheme_by_name("COL-LZMA2"), name="coarse"),
        ],
        cost_model=model,
        auto_compact_at=8_000,
    )
    print(f"bootstrapped with {len(initial):,} records, "
          f"replicas: {store.base.replica_names()}")

    # --- live traffic -----------------------------------------------------
    u = full.bounding_box()
    hist = Histogram3D.build(initial, resolution=(12, 12, 8), universe=u)
    print("\ningesting live batches:")
    compactions_seen = 0
    for i, batch in enumerate(batches, 1):
        store.append(batch)
        if store.compactions > compactions_seen:
            # Statistics go stale as data grows: refresh at compaction,
            # like real systems piggyback stats rebuilds on maintenance.
            compactions_seen = store.compactions
            hist = Histogram3D.build(store.dataset(),
                                     resolution=(12, 12, 8), universe=u)
        frac = float(rng.uniform(0.05, 0.3))
        w, h, t = u.width * frac, u.height * frac, u.duration * frac
        q = GroupedQuery(w, h, t).at(
            rng.uniform(u.x_min + w / 2, u.x_max - w / 2),
            rng.uniform(u.y_min + h / 2, u.y_max - h / 2),
            rng.uniform(u.t_min + t / 2, u.t_max - t / 2))
        res = store.query(q)
        predicted = hist.scaled(len(store)).estimate_count(q.box())
        print(f"  batch {i}: {len(store):,} records "
              f"(buffer {store.buffered_records:,}, "
              f"compactions {store.compactions}); query returned "
              f"{res.stats.records_returned:,} (histogram predicted "
              f"{predicted:,.0f})")

    # --- retune from the log ------------------------------------------------
    print("\nworkload drift check:")
    advisor = ReplicaAdvisor(
        store.dataset().sample(10_000, rng),
        small_partitioning_schemes((4, 16, 64), (4, 16)),
        paper_encoding_schemes(),
        model,
        AdvisorConfig(n_records=65_000_000, universe=u),
    )
    expected = Workload([
        (GroupedQuery(u.width * 0.6, u.height * 0.6, u.duration * 0.5), 1.0),
    ])
    budget = advisor.single_replica_budget(expected, copies=3)
    recon = AdaptiveReconfigurator(advisor, budget, method="exact",
                                   threshold=0.05, min_queries=10)
    recon.deploy_initial(expected)
    for _ in range(15):  # interactive dashboards took over
        frac = 0.01
        w, h, t = u.width * frac, u.height * frac, u.duration * frac
        recon.observe(GroupedQuery(w, h, t).at(
            rng.uniform(u.x_min + w / 2, u.x_max - w / 2),
            rng.uniform(u.y_min + h / 2, u.y_max - h / 2),
            rng.uniform(u.t_min + t / 2, u.t_max - t / 2)))
    decision = recon.evaluate()
    print(f"  drift improvement available: {decision.improvement:.0%} "
          f"-> retuned: {decision.retuned}")
    if decision.retuned:
        print(f"  new replica set: {', '.join(recon.deployed.replica_names)}")

    # --- close of day -----------------------------------------------------
    store.compact()
    print(f"\nend of day: {len(store):,} records in "
          f"{len(store.base.replica_names())} replicas, "
          f"{store.base.total_storage_bytes() / 1e6:.1f} MB on disk, "
          f"{store.compactions} compactions")


if __name__ == "__main__":
    main()

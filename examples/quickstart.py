#!/usr/bin/env python3
"""Quickstart: build diverse replicas, query them, and ask the advisor.

Runs in well under a minute on a laptop:

    python examples/quickstart.py
"""

from repro import (
    AdvisorConfig,
    CompositeScheme,
    InMemoryStore,
    KdTreePartitioner,
    Query,
    ReplicaAdvisor,
    cost_model_for,
    encoding_scheme_by_name,
    make_cluster,
    open_store,
    paper_encoding_schemes,
    paper_workload,
    small_partitioning_schemes,
    synthetic_shanghai_taxis,
)


def main() -> None:
    # 1. A synthetic taxi GPS sample with the paper's Shanghai footprint.
    data = synthetic_shanghai_taxis(20_000, seed=7)
    bb = data.bounding_box()
    print(f"dataset: {len(data):,} records, bbox "
          f"lon [{bb.x_min:.2f}, {bb.x_max:.2f}] lat [{bb.y_min:.2f}, {bb.y_max:.2f}]")

    # 2. Calibrate a cost model on the simulated EMR environment
    #    (ScanRate/ExtraTime regression, paper Section V-B).
    cluster = make_cluster("amazon-s3-emr", seed=1)
    model = cost_model_for(cluster, [s.name for s in paper_encoding_schemes()])

    # 3. A BLOT store with two *diverse* replicas: same records, different
    #    physical organizations.
    store = open_store(
        data,
        replicas=[
            (CompositeScheme(KdTreePartitioner(4), 2),
             encoding_scheme_by_name("ROW-PLAIN"), InMemoryStore(), "coarse"),
            (CompositeScheme(KdTreePartitioner(64), 8),
             encoding_scheme_by_name("COL-GZIP"), InMemoryStore(), "fine"),
        ],
        cost_model=model,
    )

    # 4. Queries are routed to the replica with the lowest estimated cost.
    c = bb.centroid
    small = Query(bb.width * 0.02, bb.height * 0.02, bb.duration * 0.05,
                  c.x, c.y, c.t)
    large = Query(bb.width * 0.9, bb.height * 0.9, bb.duration * 0.9,
                  c.x, c.y, c.t)
    for label, q in (("small", small), ("large", large)):
        res = store.query(q)
        s = res.stats
        print(f"{label} query -> replica {s.replica_name!r}: "
              f"{s.records_returned:,} records, scanned "
              f"{s.scanned_fraction:.1%} of data over "
              f"{s.partitions_involved} partitions")

    # 5. The replica advisor: which diverse replica set should a 65M-record
    #    deployment store, given the expected workload and a budget of
    #    three exact copies?
    advisor = ReplicaAdvisor(
        sample=data,
        partitioning_schemes=small_partitioning_schemes(),
        encoding_schemes=paper_encoding_schemes(),
        cost_model=model,
        config=AdvisorConfig(n_records=65_000_000),
    )
    workload = paper_workload(advisor.universe)
    budget = advisor.single_replica_budget(workload, copies=3)
    report = advisor.recommend(workload, budget, method="exact")
    print(f"\nadvisor budget: {budget / 1e9:.2f} GB "
          f"(3 copies of {report.single_name})")
    print(f"recommended replicas: {', '.join(report.replica_names)}")
    print(f"workload cost: {report.cost:.1f}s vs single replica "
          f"{report.single_cost:.1f}s -> {report.speedup_vs_single:.2f}x faster")
    print(f"approximation ratio vs ideal: {report.approximation_ratio:.3f}")


if __name__ == "__main__":
    main()

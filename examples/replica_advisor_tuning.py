#!/usr/bin/env python3
"""The full paper pipeline: calibrate, enumerate candidates, select.

Reproduces the Section V-C methodology end to end at laptop scale:
calibrate both execution environments, build the candidate replica grid,
then sweep the storage budget comparing Single / Greedy / MIP(exact) /
Ideal — the experiment behind Figure 4.

    python examples/replica_advisor_tuning.py            # reduced grid
    python examples/replica_advisor_tuning.py --full     # 25 x 7 = 150 candidates (slow)
"""

import argparse

from repro import (
    AdvisorConfig,
    ReplicaAdvisor,
    cost_model_for,
    make_cluster,
    paper_encoding_schemes,
    paper_partitioning_schemes,
    paper_workload,
    small_partitioning_schemes,
    synthetic_shanghai_taxis,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="use the paper's full 25-scheme grid")
    parser.add_argument("--environment", default="amazon-s3-emr",
                        choices=["amazon-s3-emr", "local-hadoop"])
    parser.add_argument("--records", type=float, default=65e6,
                        help="target dataset size in records")
    args = parser.parse_args()

    print(f"calibrating cost model on {args.environment} "
          "(5 partition sizes x 20 mappers per encoding)...")
    cluster = make_cluster(args.environment, seed=42)
    encodings = paper_encoding_schemes()
    model = cost_model_for(cluster, [s.name for s in encodings])
    for name in model.encoding_names:
        p = model.params_for(name)
        print(f"  {name:11s} 1/ScanRate = {1e6 / p.scan_rate:8.2f} us/record   "
              f"ExtraTime = {p.extra_time:6.2f} s")

    schemes = paper_partitioning_schemes() if args.full else small_partitioning_schemes()
    sample = synthetic_shanghai_taxis(30_000, seed=9)
    print(f"\nbuilding {len(schemes)} partitionings x {len(encodings)} encodings "
          f"= {len(schemes) * len(encodings)} candidate replicas "
          f"from a {len(sample):,}-record sample...")
    advisor = ReplicaAdvisor(
        sample=sample,
        partitioning_schemes=schemes,
        encoding_schemes=encodings,
        cost_model=model,
        config=AdvisorConfig(n_records=args.records),
    )
    workload = paper_workload(advisor.universe)
    base_budget = advisor.single_replica_budget(workload, copies=3)
    print(f"budget unit: 3 copies of the best single replica "
          f"= {base_budget / 1e9:.2f} GB")

    print(f"\n{'rel.budget':>10s} {'Single':>10s} {'Greedy':>10s} "
          f"{'Exact':>10s} {'Ideal':>10s} {'greedy ratio':>13s} {'#replicas':>10s}")
    for factor in (0.5, 0.75, 1.0, 1.5, 2.0, 3.0):
        budget = base_budget * factor
        greedy = advisor.recommend(workload, budget, method="greedy")
        exact = advisor.recommend(workload, budget, method="exact")
        ratio = greedy.cost / exact.ideal_cost
        print(f"{factor:10.2f} {exact.single_cost:10.1f} {greedy.cost:10.1f} "
              f"{exact.cost:10.1f} {exact.ideal_cost:10.1f} {ratio:13.3f} "
              f"{len(exact.replica_names):10d}")

    report = advisor.recommend(workload, base_budget, method="exact")
    print(f"\nselected at 1.0x budget: {', '.join(report.replica_names)}")
    print("per-query routing:")
    for label, replica in report.assignment.items():
        print(f"  {label}: {replica}")


if __name__ == "__main__":
    main()

"""Query and workload model for BLOT systems (paper Definition 6)."""

from repro.workload.generator import (
    PAPER_QUERY_FRACTIONS,
    PAPER_QUERY_WEIGHTS,
    grouped_random_workload,
    paper_workload,
    positioned_random_workload,
    workload_from_query_log,
)
from repro.workload.query import AnyQuery, GroupedQuery, Query, Workload

__all__ = [
    "AnyQuery",
    "GroupedQuery",
    "PAPER_QUERY_FRACTIONS",
    "PAPER_QUERY_WEIGHTS",
    "Query",
    "Workload",
    "grouped_random_workload",
    "paper_workload",
    "positioned_random_workload",
    "workload_from_query_log",
]

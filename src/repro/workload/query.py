"""Queries, grouped queries and weighted workloads (paper Definition 6).

A range query ``q = <W, H, T, x, y, t>`` extracts every record inside the
cuboid of extent ``(W, H, T)`` centered at ``(x, y, t)``.  A *grouped*
query ``QG = <W, H, T>`` stands for all queries of that extent with the
centroid uniformly distributed (Section III-C1) — the paper's workload
reduction.  A workload is a set of unique queries with non-negative
weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.geometry import Box3


@dataclass(frozen=True, slots=True)
class GroupedQuery:
    """A query extent ``<W, H, T>`` with uniformly-distributed centroid."""

    width: float
    height: float
    duration: float

    def __post_init__(self) -> None:
        if min(self.width, self.height, self.duration) < 0:
            raise ValueError("query extents must be non-negative")

    @property
    def size(self) -> tuple[float, float, float]:
        """``(W, H, T)``."""
        return (self.width, self.height, self.duration)

    def at(self, x: float, y: float, t: float) -> "Query":
        """A positioned instance of this grouped query."""
        return Query(self.width, self.height, self.duration, x, y, t)

    def selectivity(self, universe: Box3) -> float:
        """Fraction of the universe volume the query range covers."""
        if universe.volume == 0:
            raise ValueError("universe has zero volume")
        w = min(self.width, universe.width)
        h = min(self.height, universe.height)
        d = min(self.duration, universe.duration)
        return (w * h * d) / universe.volume


@dataclass(frozen=True, slots=True)
class Query:
    """A positioned range query ``<W, H, T, x, y, t>``."""

    width: float
    height: float
    duration: float
    x: float
    y: float
    t: float

    def __post_init__(self) -> None:
        if min(self.width, self.height, self.duration) < 0:
            raise ValueError("query extents must be non-negative")

    @property
    def size(self) -> tuple[float, float, float]:
        """``(W, H, T)``."""
        return (self.width, self.height, self.duration)

    def box(self) -> Box3:
        """``Range(q)`` as a :class:`Box3`."""
        return Box3.from_center_size((self.x, self.y, self.t),
                                     self.width, self.height, self.duration)

    def grouped(self) -> GroupedQuery:
        """Drop the position, keeping the extent (Section III-C1)."""
        return GroupedQuery(self.width, self.height, self.duration)

    @staticmethod
    def from_box(box: Box3) -> "Query":
        """The query whose range is exactly ``box``."""
        c = box.centroid
        return Query(box.width, box.height, box.duration, c.x, c.y, c.t)


AnyQuery = Query | GroupedQuery


class Workload:
    """An ordered set of unique queries with non-negative weights.

    Weights encode frequency/priority; :meth:`normalized` rescales them to
    sum to 1 as in the paper's experiments.
    """

    def __init__(self, entries: Sequence[tuple[AnyQuery, float]]):
        seen: set[AnyQuery] = set()
        cleaned: list[tuple[AnyQuery, float]] = []
        for query, weight in entries:
            if weight < 0:
                raise ValueError(f"negative weight {weight} for {query}")
            if query in seen:
                raise ValueError(f"duplicate query in workload: {query}")
            seen.add(query)
            cleaned.append((query, float(weight)))
        self._entries = tuple(cleaned)

    @classmethod
    def unweighted(cls, queries: Sequence[AnyQuery]) -> "Workload":
        """A workload giving every query weight 1 — the natural form for
        *execution* workloads, where each query runs exactly once and
        weights only matter to the selection problem."""
        return cls([(q, 1.0) for q in queries])

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[tuple[AnyQuery, float]]:
        return iter(self._entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Workload):
            return NotImplemented
        return self._entries == other._entries

    def __repr__(self) -> str:
        return f"Workload(n={len(self)}, total_weight={self.total_weight():g})"

    # -- accessors ---------------------------------------------------------

    def queries(self) -> list[AnyQuery]:
        """``Q(W)``: the queries without their weights."""
        return [q for q, _ in self._entries]

    def weights(self) -> list[float]:
        return [w for _, w in self._entries]

    def total_weight(self) -> float:
        return sum(self.weights())

    def entry(self, i: int) -> tuple[AnyQuery, float]:
        return self._entries[i]

    # -- transforms -----------------------------------------------------------

    def normalized(self) -> "Workload":
        """Rescale weights to sum to 1 (no-op weights if all zero)."""
        total = self.total_weight()
        if total <= 0:
            raise ValueError("cannot normalize a zero-weight workload")
        return Workload([(q, w / total) for q, w in self._entries])

    def grouped(self) -> "Workload":
        """Collapse positioned queries into grouped queries, merging the
        weights of queries with identical extents (Section III-C1)."""
        acc: dict[GroupedQuery, float] = {}
        order: list[GroupedQuery] = []
        for query, weight in self._entries:
            g = query.grouped() if isinstance(query, Query) else query
            if g not in acc:
                acc[g] = 0.0
                order.append(g)
            acc[g] += weight
        return Workload([(g, acc[g]) for g in order])

    def scaled(self, factor: float) -> "Workload":
        """Multiply every weight by ``factor``."""
        return Workload([(q, w * factor) for q, w in self._entries])

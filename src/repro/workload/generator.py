"""Workload generators.

The evaluation uses "a synthetic workload containing 8 grouped queries
with wildly varied range size" (Section V-C); :func:`paper_workload`
recreates that mix.  The other generators produce positioned or grouped
workloads for the solver-scaling experiments (Figure 3) and tests.
"""

from __future__ import annotations

import numpy as np

from repro.geometry import Box3, centroid_range
from repro.workload.query import GroupedQuery, Query, Workload

#: Spatial (W, H) and temporal (T) extents of the paper-style 8 grouped
#: queries, as fractions of the universe extent.  Sizes span nearly three
#: orders of magnitude and spatial/temporal sizes are decorrelated so no
#: single partitioning granularity fits all of them.
PAPER_QUERY_FRACTIONS: tuple[tuple[float, float], ...] = (
    (0.002, 0.30),   # q1: tiny area, long window   (a junction over a week)
    (0.005, 0.02),   # q2: small area, short window (a block for an hour)
    (0.020, 0.005),  # q3
    (0.050, 0.60),   # q4: district, most of the month
    (0.100, 0.05),   # q5
    (0.250, 0.010),  # q6: quarter of the city, snapshot-ish
    (0.500, 0.20),   # q7
    (0.900, 0.80),   # q8: nearly a full scan
)

#: Weights loosely following a frequency skew: small interactive queries
#: dominate, full scans are rare.
PAPER_QUERY_WEIGHTS: tuple[float, ...] = (0.22, 0.20, 0.16, 0.12, 0.10, 0.09, 0.07, 0.04)


def paper_workload(universe: Box3) -> Workload:
    """The 8-grouped-query evaluation workload, scaled to ``universe``."""
    entries = []
    for (spatial_frac, temporal_frac), weight in zip(
        PAPER_QUERY_FRACTIONS, PAPER_QUERY_WEIGHTS
    ):
        entries.append((
            GroupedQuery(
                universe.width * spatial_frac,
                universe.height * spatial_frac,
                universe.duration * temporal_frac,
            ),
            weight,
        ))
    return Workload(entries)


def grouped_random_workload(
    universe: Box3,
    n_queries: int,
    rng: np.random.Generator,
    min_fraction: float = 1e-3,
    max_fraction: float = 0.9,
) -> Workload:
    """``n_queries`` grouped queries with log-uniform extents and random
    weights — the input of the Figure 3 solver-scaling experiments."""
    if n_queries < 1:
        raise ValueError("n_queries must be >= 1")
    if not 0 < min_fraction <= max_fraction <= 1:
        raise ValueError("need 0 < min_fraction <= max_fraction <= 1")
    entries: dict[GroupedQuery, float] = {}
    lo, hi = np.log(min_fraction), np.log(max_fraction)
    while len(entries) < n_queries:
        fw, fh, ft = np.exp(rng.uniform(lo, hi, size=3))
        g = GroupedQuery(universe.width * fw, universe.height * fh,
                         universe.duration * ft)
        if g not in entries:
            entries[g] = float(rng.uniform(0.1, 1.0))
    return Workload(list(entries.items()))


def positioned_random_workload(
    universe: Box3,
    n_queries: int,
    rng: np.random.Generator,
    min_fraction: float = 1e-3,
    max_fraction: float = 0.5,
) -> Workload:
    """Positioned queries with log-uniform extents, centroids uniform over
    the admissible centroid range (so ranges stay inside the universe)."""
    grouped = grouped_random_workload(universe, n_queries, rng,
                                      min_fraction, max_fraction)
    entries = []
    for g, weight in grouped:
        cr = centroid_range(universe, g.size)
        entries.append((
            g.at(
                rng.uniform(cr.x_min, cr.x_max),
                rng.uniform(cr.y_min, cr.y_max),
                rng.uniform(cr.t_min, cr.t_max),
            ),
            weight,
        ))
    return Workload(entries)


def workload_from_query_log(queries: list[Query]) -> Workload:
    """Collapse a raw query log into a grouped workload: one grouped query
    per distinct range size, weighted by occurrence count (Section III-C1)."""
    counts: dict[GroupedQuery, int] = {}
    order: list[GroupedQuery] = []
    for q in queries:
        g = q.grouped()
        if g not in counts:
            counts[g] = 0
            order.append(g)
        counts[g] += 1
    return Workload([(g, float(counts[g])) for g in order])

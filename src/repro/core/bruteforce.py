"""Exhaustive reference solver for small instances.

Enumerates all ``2^m`` subsets — only usable for ``m ≲ 20`` — and exists
to validate the branch-and-bound and MIP solvers in tests.
"""

from __future__ import annotations

from itertools import combinations

from repro.core.problem import Selection, SelectionInstance

_MAX_REPLICAS = 22


def brute_force_select(instance: SelectionInstance) -> Selection:
    """Provably optimal selection by exhaustive enumeration."""
    m = instance.n_replicas
    if m > _MAX_REPLICAS:
        raise ValueError(
            f"brute force is limited to {_MAX_REPLICAS} replicas, got {m}"
        )
    best: tuple[int, ...] = ()
    best_capped = instance.capped_workload_cost(())
    explored = 1
    for k in range(1, m + 1):
        for subset in combinations(range(m), k):
            explored += 1
            if not instance.is_feasible(subset):
                continue
            capped = instance.capped_workload_cost(subset)
            if capped < best_capped - 1e-15:
                best, best_capped = subset, capped
    return Selection(
        selected=best,
        cost=instance.workload_cost(best),
        storage=instance.storage_of(best),
        optimal=True,
        solver="brute-force",
        nodes_explored=explored,
    )

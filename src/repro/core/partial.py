"""Partial replication (the paper's stated future work, Section VII).

"The use of partial replication, where only frequently accessed data
ranges are replicated" — a partial replica covers only a sub-box of the
universe.  It stores proportionally less data (cheaper on the budget) but
can only answer queries whose range lies entirely inside its coverage;
all other queries cost ``+inf`` on it, which the selection machinery
already understands.  At least one *full* replica must be selected for
correctness (every query must be answerable), which the instance
guarantees as long as full replicas are among the candidates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.problem import SelectionInstance
from repro.costmodel.model import CostModel, ReplicaProfile
from repro.geometry import Box3, boxes_intersect_mask, centroid_range
from repro.workload.query import AnyQuery, GroupedQuery, Query, Workload


@dataclass(frozen=True)
class PartialReplica:
    """A replica restricted to ``coverage``.

    ``record_fraction`` is the share of the dataset inside the coverage
    box (measure it on a sample with
    :func:`record_fraction_in_box`); storage and per-partition record
    counts scale by it.
    """

    base: ReplicaProfile
    coverage: Box3
    record_fraction: float

    def __post_init__(self) -> None:
        if not 0.0 < self.record_fraction <= 1.0:
            raise ValueError("record_fraction must be in (0, 1]")
        if not self.base.universe.contains_box(self.coverage):
            raise ValueError("coverage must lie inside the universe")

    @property
    def name(self) -> str:
        return f"{self.base.name}@partial"

    @classmethod
    def from_sample(cls, base: ReplicaProfile, coverage: Box3,
                    sample) -> "PartialReplica":
        """A partial replica whose ``record_fraction`` is measured from
        ``sample`` (the usual way to price a hot-spot coverage box —
        e.g. for the reselection controller's advisory pass)."""
        return cls(base=base, coverage=coverage,
                   record_fraction=record_fraction_in_box(sample, coverage))

    def profile(self) -> ReplicaProfile:
        """The restricted profile: only partitions intersecting the
        coverage are kept, records and storage scale by the fraction."""
        mask = boxes_intersect_mask(self.base.box_array, self.coverage)
        boxes = self.base.box_array[mask]
        if boxes.shape[0] == 0:
            raise ValueError("coverage intersects no partition")
        return ReplicaProfile(
            name=self.name,
            partitioning_name=self.base.partitioning_name,
            encoding_name=self.base.encoding_name,
            box_array=boxes,
            universe=self.base.universe,
            n_records=self.base.n_records * self.record_fraction,
            storage_bytes=self.base.storage_bytes * self.record_fraction,
        )

    def can_answer(self, query: AnyQuery) -> bool:
        """Positioned queries must lie inside the coverage; a grouped
        query is answerable only when *every* admissible position is
        (i.e. its extent fits and the whole centroid range maps inside)."""
        if isinstance(query, Query):
            return self.coverage.contains_box(query.box())
        cr = centroid_range(self.base.universe, query.size)
        w, h, t = query.size
        worst = Box3(
            cr.x_min - w / 2, cr.x_max + w / 2,
            cr.y_min - h / 2, cr.y_max + h / 2,
            cr.t_min - t / 2, cr.t_max + t / 2,
        )
        return self.coverage.contains_box(worst)


def record_fraction_in_box(sample, box: Box3) -> float:
    """Estimate the dataset share inside ``box`` from a sample."""
    if len(sample) == 0:
        raise ValueError("empty sample")
    return sample.count_in_box(box) / len(sample)


def partial_selection_instance(
    cost_model: CostModel,
    workload: Workload,
    full_profiles: list[ReplicaProfile],
    partial_replicas: list[PartialReplica],
    budget: float,
) -> SelectionInstance:
    """Selection instance mixing full and partial candidate replicas.

    Columns are ordered full-first, then partials.  Partial replicas get
    ``+inf`` cost on queries they cannot answer.
    """
    if not full_profiles:
        raise ValueError("need at least one full replica candidate")
    queries = workload.queries()
    columns: list[np.ndarray] = []
    names: list[str] = []
    storage: list[float] = []
    for profile in full_profiles:
        columns.append(np.array([
            cost_model.query_cost(q, profile) for q in queries
        ]))
        names.append(profile.name)
        storage.append(profile.storage_bytes)
    for partial in partial_replicas:
        profile = partial.profile()
        col = np.empty(len(queries))
        for i, q in enumerate(queries):
            col[i] = (
                cost_model.query_cost(q, profile)
                if partial.can_answer(q)
                else np.inf
            )
        columns.append(col)
        names.append(partial.name)
        storage.append(profile.storage_bytes)
    return SelectionInstance(
        costs=np.stack(columns, axis=1),
        weights=np.array(workload.weights()),
        storage=np.array(storage),
        budget=float(budget),
        replica_names=tuple(names),
        query_labels=tuple(f"q{i + 1}" for i in range(len(queries))),
    )

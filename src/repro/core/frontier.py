"""Cost-vs-budget frontier computation (the data behind Figure 4).

Given a selection instance, sweep the storage budget and record, per
method, the workload cost and selected replica set.  Used by the Figure
4 bench, the advisor-tuning example and anyone sizing the storage budget
for a deployment ("how much replication budget buys how much latency?").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.bnb import branch_and_bound_select
from repro.core.greedy import greedy_select
from repro.core.localsearch import local_search_select
from repro.core.problem import Selection, SelectionInstance

METHODS: dict[str, Callable[[SelectionInstance], Selection]] = {
    "greedy": greedy_select,
    "local-search": local_search_select,
    "exact": branch_and_bound_select,
}


@dataclass(frozen=True)
class FrontierPoint:
    """One (budget, method) evaluation."""

    budget: float
    relative_budget: float
    method: str
    cost: float
    cost_over_ideal: float
    n_selected: int
    selected_names: tuple[str, ...]


@dataclass(frozen=True)
class BudgetFrontier:
    """The full sweep plus its reference costs."""

    points: tuple[FrontierPoint, ...]
    ideal_cost: float
    single_cost: float
    unit_budget: float

    def series(self, method: str) -> list[FrontierPoint]:
        """Points of one method, in increasing budget order."""
        out = [p for p in self.points if p.method == method]
        if not out:
            raise KeyError(f"no frontier series for method {method!r}")
        return sorted(out, key=lambda p: p.budget)

    def knee(self, method: str, tolerance: float = 0.05) -> FrontierPoint:
        """The smallest budget at which ``method`` lands within
        ``tolerance`` of the ideal cost — the budget worth paying for."""
        for point in self.series(method):
            if point.cost_over_ideal <= 1.0 + tolerance:
                return point
        return self.series(method)[-1]


def cost_budget_frontier(
    instance: SelectionInstance,
    factors: tuple[float, ...] = (0.5, 0.75, 1.0, 1.5, 2.0, 3.0),
    methods: tuple[str, ...] = ("greedy", "exact"),
    copies: int = 3,
) -> BudgetFrontier:
    """Sweep budgets of ``factor x (copies of the optimal single replica)``.

    ``instance``'s own budget is ignored; the unit budget follows the
    paper's Section V-C convention.
    """
    for method in methods:
        if method not in METHODS:
            raise ValueError(f"unknown method {method!r}; have {sorted(METHODS)}")
    if not factors:
        raise ValueError("need at least one budget factor")
    unbounded = instance.with_budget(float("inf"))
    single_j, single_cost = unbounded.best_single()
    unit = float(copies * instance.storage[single_j])
    ideal = instance.ideal_cost()
    points = []
    for factor in factors:
        budgeted = instance.with_budget(unit * factor)
        for method in methods:
            selection = METHODS[method](budgeted)
            points.append(FrontierPoint(
                budget=unit * factor,
                relative_budget=factor,
                method=method,
                cost=selection.cost,
                cost_over_ideal=selection.cost / ideal if ideal > 0 else 1.0,
                n_selected=len(selection.selected),
                selected_names=tuple(selection.names(budgeted)),
            ))
    return BudgetFrontier(
        points=tuple(points),
        ideal_cost=ideal,
        single_cost=single_cost,
        unit_budget=unit,
    )

"""Adaptive reconfiguration from the live query log.

"Most existing BLOT systems can adaptively optimize the configuration of
the physical storage organization ... based on analyzing the historical
queries" (Section II-E), and the paper's workload-reduction machinery
(Section III-C1) exists precisely so that re-selection stays cheap as
logs grow.  This module closes that loop:

- :class:`QueryLogger` accumulates executed queries and compresses them
  into a weighted grouped workload (optionally k-means-clustered);
- :class:`AdaptiveReconfigurator` periodically re-runs replica selection
  against the logged workload and reports when the currently deployed
  replica set has drifted far enough from optimal to justify rebuilding.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.advisor import ReplicaAdvisor, SelectionReport
from repro.core.grouping import reduce_workload
from repro.workload.query import Query, Workload
from repro.workload.generator import workload_from_query_log


class QueryLogger:
    """Accumulates executed queries, the raw material for retuning.

    The log is a bounded ring buffer guarded by a lock: under always-on
    serving, ``record()`` arrives concurrently from the workload thread
    pool, and an unbounded list would both race on append and grow
    without limit for the life of the process.  ``capacity`` bounds the
    retained window (retuning cares about the *recent* distribution
    anyway); overflow drops the oldest entry and bumps ``evicted`` so
    operators can tell a short log from a saturated one.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._log: deque[Query] = deque(maxlen=self.capacity)
        self._recorded = 0
        self._evicted = 0
        self._lock = threading.Lock()

    def record(self, query: Query) -> None:
        with self._lock:
            if len(self._log) == self.capacity:
                self._evicted += 1
            self._log.append(query)
            self._recorded += 1

    @property
    def recorded(self) -> int:
        """Queries recorded over the logger's lifetime."""
        with self._lock:
            return self._recorded

    @property
    def evicted(self) -> int:
        """Queries dropped from the ring buffer to stay within
        ``capacity`` (``clear()`` does not count)."""
        with self._lock:
            return self._evicted

    def __len__(self) -> int:
        with self._lock:
            return len(self._log)

    def queries(self) -> list[Query]:
        with self._lock:
            return list(self._log)

    def clear(self) -> None:
        with self._lock:
            self._log.clear()

    def to_workload(
        self,
        max_grouped_queries: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> Workload:
        """The logged queries as a weighted grouped workload.

        Identical range sizes merge (Section III-C1); when the number of
        distinct sizes still exceeds ``max_grouped_queries`` they are
        k-means-clustered down to that many centers.
        """
        log = self.queries()
        if not log:
            raise ValueError("query log is empty")
        workload = workload_from_query_log(log)
        if max_grouped_queries is not None and len(workload) > max_grouped_queries:
            if rng is None:
                rng = np.random.default_rng(0)
            workload = reduce_workload(workload, max_grouped_queries, rng).reduced
        return workload


@dataclass(frozen=True)
class RetuneDecision:
    """Outcome of one retune evaluation."""

    retuned: bool
    current_cost: float
    optimized_cost: float
    report: SelectionReport | None

    @property
    def improvement(self) -> float:
        """Fractional workload-cost reduction a retune would deliver."""
        if self.current_cost <= 0:
            return 0.0
        return 1.0 - self.optimized_cost / self.current_cost


class AdaptiveReconfigurator:
    """Re-selects the replica set when the logged workload drifts.

    ``threshold`` is the minimum fractional improvement that justifies
    rebuilding replicas (rebuilds are expensive: the whole dataset is
    re-partitioned and re-encoded), ``min_queries`` the minimum log size
    before retuning is considered.
    """

    def __init__(
        self,
        advisor: ReplicaAdvisor,
        budget: float,
        method: str = "greedy",
        threshold: float = 0.10,
        min_queries: int = 50,
        max_grouped_queries: int = 16,
    ):
        if not 0 <= threshold < 1:
            raise ValueError("threshold must be in [0, 1)")
        if min_queries < 1:
            raise ValueError("min_queries must be >= 1")
        self._advisor = advisor
        self._budget = budget
        self._method = method
        self._threshold = threshold
        self._min_queries = min_queries
        self._max_grouped = max_grouped_queries
        self.logger = QueryLogger()
        self.deployed: SelectionReport | None = None

    def deploy_initial(self, workload: Workload) -> SelectionReport:
        """Select and deploy the first replica set for an expected
        workload (before any live queries exist)."""
        self.deployed = self._advisor.recommend(
            workload, self._budget, method=self._method)
        return self.deployed

    def observe(self, query: Query) -> None:
        """Record one executed query."""
        self.logger.record(query)

    def evaluate(self, rng: np.random.Generator | None = None) -> RetuneDecision:
        """Compare the deployed set against a re-optimized one on the
        logged workload; redeploy when the improvement clears the
        threshold (the log is then cleared — a new epoch starts)."""
        if self.deployed is None:
            raise RuntimeError("no replica set deployed; call deploy_initial first")
        if len(self.logger) < self._min_queries:
            return RetuneDecision(False, 0.0, 0.0, None)
        workload = self.logger.to_workload(self._max_grouped, rng)
        instance = self._advisor.build_instance(workload, self._budget)
        name_to_col = {instance.name_of(j): j
                       for j in range(instance.n_replicas)}
        deployed_cols = [name_to_col[name] for name in self.deployed.replica_names]
        current_cost = instance.workload_cost(deployed_cols)
        candidate = self._advisor.recommend(
            workload, self._budget, method=self._method)
        improvement = (
            1.0 - candidate.cost / current_cost if current_cost > 0 else 0.0
        )
        if improvement >= self._threshold:
            self.deployed = candidate
            self.logger.clear()
            return RetuneDecision(True, current_cost, candidate.cost, candidate)
        return RetuneDecision(False, current_cost, candidate.cost, None)

"""End-to-end replica advisor: candidates → costs → selection → report.

Ties the whole paper together.  From a data *sample*, the advisor

1. realizes every candidate partitioning scheme (boxes from sample
   quantiles), crossed with every candidate encoding scheme, into
   :class:`~repro.costmodel.ReplicaProfile` candidates — 25 x 7 = 150 in
   the paper's configuration;
2. estimates each candidate's storage from measured (or supplied)
   compression ratios and each query's cost from the calibrated
   :class:`~repro.costmodel.CostModel` (Np is computed once per
   partitioning and shared across the encodings that reuse it);
3. optionally prunes dominated candidates and reduces the workload;
4. selects a replica set with the greedy or the exact solver, and
   reports costs against the paper's Single and Ideal baselines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bnb import branch_and_bound_select
from repro.core.greedy import greedy_select
from repro.core.mip import solve_mip
from repro.core.problem import Selection, SelectionInstance
from repro.core.pruning import prune_dominated
from repro.costmodel.model import CostModel, ReplicaProfile, expected_partitions
from repro.costmodel.storage_size import estimate_replica_storage
from repro.data.dataset import Dataset
from repro.encoding.base import EncodingScheme
from repro.encoding.rowbin import ROW_BYTES
from repro.geometry import Box3
from repro.partition.base import PartitioningScheme
from repro.workload.query import Workload


@dataclass(frozen=True)
class AdvisorConfig:
    """Target-dataset parameters the advisor plans for."""

    n_records: float           # records in the full (target) dataset
    universe: Box3 | None = None  # defaults to the sample bounding box

    def __post_init__(self) -> None:
        if self.n_records <= 0:
            raise ValueError("n_records must be positive")


@dataclass(frozen=True)
class SelectionReport:
    """What :meth:`ReplicaAdvisor.recommend` returns."""

    selection: Selection
    instance: SelectionInstance
    replica_names: tuple[str, ...]
    cost: float
    ideal_cost: float
    single_cost: float
    single_name: str
    storage_used: float
    budget: float
    assignment: dict[str, str]  # query label -> replica name

    @property
    def approximation_ratio(self) -> float:
        """Cost relative to the Ideal (all candidates, no budget) — the
        bracketed numbers of Figure 6.

        A zero ideal with a nonzero achieved cost is *infinitely* worse
        than ideal, not equal to it: the ratio is ``inf`` there, and 1.0
        only when both costs are zero (both plans are free).
        """
        if self.ideal_cost == 0:
            return 1.0 if self.cost == 0 else float("inf")
        return self.cost / self.ideal_cost

    @property
    def speedup_vs_single(self) -> float:
        """How much faster than the best single replica (Figure 4/6)."""
        if self.cost == 0:
            return float("inf")
        return self.single_cost / self.cost


class ReplicaAdvisor:
    """Builds candidate replicas from a sample and selects diverse sets."""

    def __init__(
        self,
        sample: Dataset,
        partitioning_schemes: list[PartitioningScheme],
        encoding_schemes: list[EncodingScheme],
        cost_model: CostModel,
        config: AdvisorConfig,
        encoding_ratios: dict[str, float] | None = None,
    ):
        if len(sample) == 0:
            raise ValueError("advisor needs a non-empty sample")
        if not partitioning_schemes or not encoding_schemes:
            raise ValueError("need at least one partitioning and one encoding scheme")
        self._sample = sample
        self._cost_model = cost_model
        self._config = config
        self._universe = config.universe or sample.bounding_box()
        self._partitionings = [
            scheme.build(sample, self._universe) for scheme in partitioning_schemes
        ]
        self._encodings = list(encoding_schemes)
        if encoding_ratios is None:
            from repro.costmodel.storage_size import measure_encoding_ratios

            encoding_ratios = measure_encoding_ratios(self._encodings, sample)
        self._ratios = dict(encoding_ratios)
        self._profiles = self._build_profiles()
        self._np_cache: dict[tuple[int, object], float] = {}

    # -- candidates ---------------------------------------------------------

    def _build_profiles(self) -> list[ReplicaProfile]:
        profiles = []
        for p_idx, partitioning in enumerate(self._partitionings):
            for encoding in self._encodings:
                storage = estimate_replica_storage(
                    self._config.n_records, self._ratios[encoding.name]
                )
                profiles.append(ReplicaProfile(
                    name=f"{partitioning.scheme_name}/{encoding.name}",
                    partitioning_name=partitioning.scheme_name,
                    encoding_name=encoding.name,
                    box_array=partitioning.box_array,
                    universe=self._universe,
                    n_records=self._config.n_records,
                    storage_bytes=storage,
                ))
        return profiles

    @property
    def candidates(self) -> list[ReplicaProfile]:
        """The candidate replica set ``R_C`` (all scheme x encoding pairs)."""
        return list(self._profiles)

    @property
    def universe(self) -> Box3:
        return self._universe

    # -- instance construction ----------------------------------------------------

    def _probe_profile(self, partitioning_idx: int,
                       with_counts: bool = False) -> ReplicaProfile:
        partitioning = self._partitionings[partitioning_idx]
        return ReplicaProfile.from_partitioning(
            partitioning, "ROW-PLAIN", self._config.n_records, 0.0,
            name="probe", with_counts=with_counts,
        )

    def _np_value(self, partitioning_idx: int, query) -> float:
        key = (partitioning_idx, query)
        if key not in self._np_cache:
            self._np_cache[key] = expected_partitions(
                self._probe_profile(partitioning_idx), query)
        return self._np_cache[key]

    def _scanned_value(self, partitioning_idx: int, query) -> float:
        """Skew-aware expected records scanned (cached)."""
        key = ("scan", partitioning_idx, query)
        if key not in self._np_cache:
            from repro.costmodel.model import expected_scanned_records

            self._np_cache[key] = expected_scanned_records(
                self._probe_profile(partitioning_idx, with_counts=True), query)
        return self._np_cache[key]

    def build_instance(
        self, workload: Workload, budget: float, skew_aware: bool = False
    ) -> SelectionInstance:
        """The numeric selection instance for ``workload`` under ``budget``.

        Cost(q, r) follows Eq. 7; Np is computed once per (query,
        partitioning) and shared by the encodings on that partitioning.
        ``skew_aware=True`` replaces the ``Np·|D|/|P|`` scan term with the
        partition-size-weighted expectation — use it when candidate
        schemes include skewed layouts (uniform grids, quadtrees).
        """
        n_part = len(self._partitionings)
        n_enc = len(self._encodings)
        queries = workload.queries()
        costs = np.empty((len(queries), n_part * n_enc))
        for i, query in enumerate(queries):
            for p_idx in range(n_part):
                np_q = self._np_value(p_idx, query)
                if skew_aware:
                    scanned = self._scanned_value(p_idx, query)
                else:
                    scanned = np_q * (
                        self._config.n_records
                        / self._partitionings[p_idx].n_partitions
                    )
                for e_idx, encoding in enumerate(self._encodings):
                    params = self._cost_model.params_for(encoding.name)
                    costs[i, p_idx * n_enc + e_idx] = (
                        scanned / params.scan_rate
                        + np_q * params.extra_time
                    )
        return SelectionInstance(
            costs=costs,
            weights=np.array(workload.weights()),
            storage=np.array([p.storage_bytes for p in self._profiles]),
            budget=float(budget),
            replica_names=tuple(p.name for p in self._profiles),
            query_labels=tuple(f"q{i + 1}" for i in range(len(queries))),
        )

    def single_replica_budget(self, workload: Workload, copies: int = 3) -> float:
        """The paper's budget convention: the storage of ``copies`` exact
        copies of the optimal single replica (Section V-C)."""
        instance = self.build_instance(workload, budget=float("inf"))
        best_j, _ = instance.best_single()
        return float(copies * instance.storage[best_j])

    # -- selection ----------------------------------------------------------------

    def recommend(
        self,
        workload: Workload,
        budget: float,
        method: str = "greedy",
        prune: bool = True,
    ) -> SelectionReport:
        """Select a replica set for ``workload`` under ``budget``.

        ``method``: ``"greedy"`` (Algorithm 1), ``"local-search"``
        (Algorithm 1 + swap refinement), ``"exact"`` (branch and bound)
        or ``"mip"`` (explicit MIP via HiGHS).
        """
        full = self.build_instance(workload, budget)
        if prune:
            pruned = prune_dominated(full)
            instance = pruned.instance
            back = {local: orig for local, orig in enumerate(pruned.kept)}
        else:
            instance = full
            back = {j: j for j in range(full.n_replicas)}

        if method == "greedy":
            selection = greedy_select(instance)
        elif method == "local-search":
            from repro.core.localsearch import local_search_select

            selection = local_search_select(instance)
        elif method == "exact":
            selection = branch_and_bound_select(instance)
        elif method == "mip":
            selection = solve_mip(instance, backend="scipy")
        else:
            raise ValueError(f"unknown selection method {method!r}")

        original = tuple(sorted(back[j] for j in selection.selected))
        single_j, single_cost = full.best_single()
        if not original:
            # Solvers may legitimately return ∅ when no candidate improves
            # on the baseline, but a real system must store the data at
            # least once: fall back to the optimal single replica.
            original = (single_j,)
        cost = full.workload_cost(original)
        assignment: dict[str, str] = {}
        if original:
            routed = full.assignment(original)
            for i, label in enumerate(full.query_labels):
                assignment[label] = full.name_of(int(routed[i]))
        return SelectionReport(
            selection=Selection(
                selected=original,
                cost=cost,
                storage=full.storage_of(original),
                optimal=selection.optimal,
                solver=selection.solver,
                nodes_explored=selection.nodes_explored,
            ),
            instance=full,
            replica_names=tuple(full.name_of(j) for j in original),
            cost=cost,
            ideal_cost=full.ideal_cost(),
            single_cost=single_cost,
            single_name=full.name_of(single_j),
            storage_used=full.storage_of(original),
            budget=budget,
            assignment=assignment,
        )

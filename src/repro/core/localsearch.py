"""Local-search refinement of greedy selections.

Algorithm 1 is purely additive: once the budget is exhausted it cannot
revisit earlier picks.  Classic facility-location practice adds a swap
phase: repeatedly try replacing one selected replica with one unselected
replica (or dropping/adding one) whenever that lowers the workload cost
without breaching the budget.  The result dominates plain greedy and, in
the Figure 4 regime where greedy's approximation ratio spikes at tight
budgets, closes most of the gap to the exact optimum at polynomial cost
(each pass is ``O(k · m · n)``).
"""

from __future__ import annotations

import numpy as np

from repro.core.greedy import greedy_select
from repro.core.problem import Selection, SelectionInstance


def local_search_select(
    instance: SelectionInstance,
    start: Selection | None = None,
    max_passes: int = 20,
) -> Selection:
    """Improve a selection by add / drop / swap moves to local optimality.

    ``start`` defaults to Algorithm 1's output.  Deterministic; first
    improving move is taken, passes repeat until a full pass finds no
    improving move (or ``max_passes`` is hit).
    """
    if max_passes < 1:
        raise ValueError("max_passes must be >= 1")
    if start is None:
        start = greedy_select(instance)
    selected = set(start.selected)
    m = instance.n_replicas
    best_cost = instance.capped_workload_cost(sorted(selected))
    used = instance.storage_of(sorted(selected))
    moves = 0

    def try_apply(candidate: set[int]) -> bool:
        nonlocal selected, best_cost, used, moves
        storage = instance.storage_of(sorted(candidate))
        if storage > instance.budget + 1e-9:
            return False
        cost = instance.capped_workload_cost(sorted(candidate))
        if cost < best_cost * (1 - 1e-12) - 1e-300:
            selected = candidate
            best_cost = cost
            used = storage
            moves += 1
            return True
        return False

    for _ in range(max_passes):
        improved = False
        outside = [j for j in range(m) if j not in selected]
        # Add moves.
        for j in outside:
            if try_apply(selected | {j}):
                improved = True
                break
        if improved:
            continue
        # Swap moves (and pure drops, which only help via freed budget —
        # cost can't drop, so skip pure drops as moves by themselves).
        for out_j in list(selected):
            without = selected - {out_j}
            for in_j in outside:
                if try_apply(without | {in_j}):
                    improved = True
                    break
            if improved:
                break
        if not improved:
            break

    final = tuple(sorted(selected))
    return Selection(
        selected=final,
        cost=instance.workload_cost(final),
        storage=instance.storage_of(final),
        optimal=False,
        solver=f"greedy+local-search({moves} moves)",
    )

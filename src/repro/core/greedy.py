"""Algorithm 1: the greedy replica selection heuristic.

Repeatedly add the replica maximizing

    score(r) = (Cost(W, R) - Cost(W, R ∪ {r})) / Storage(r)

until the budget is exhausted or no replica improves the workload cost.
Two clarifications relative to the paper's pseudocode (documented here
because the pseudocode is loose on both):

- the storage constraint is *hard* (Section II-E), so only replicas whose
  size fits the remaining budget are considered in each round;
- ``Cost(W, ∅)`` uses the worst-finite-candidate convention of
  :class:`~repro.core.problem.SelectionInstance`, making the first
  iteration's gain finite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.problem import Selection, SelectionInstance

_EPS_STORAGE = 1e-12


@dataclass(frozen=True)
class GreedyStep:
    """One round of Algorithm 1, for traces and the ablation bench."""

    replica: int
    gain: float
    score: float
    cost_after: float
    storage_after: float


def greedy_select(
    instance: SelectionInstance, trace: list[GreedyStep] | None = None,
    metrics=None,
) -> Selection:
    """Run Algorithm 1 on ``instance``.

    Runs in ``O(k · m · n)`` for ``k`` selected replicas.  Returns a
    feasible (possibly empty) selection; ``optimal`` is never claimed.
    ``metrics`` optionally publishes run/round counters
    (``repro_solver_*``) into a
    :class:`~repro.obs.MetricsRegistry`.
    """
    n, m = instance.n_queries, instance.n_replicas
    weights = instance.weights
    selected: list[int] = []
    remaining = np.ones(m, dtype=bool)
    current = instance.empty_set_costs.copy()  # per-query cost under R
    current_cost = float(np.dot(weights, current))
    used = 0.0

    while used < instance.budget:
        best_j = -1
        best_score = 0.0
        best_gain = 0.0
        best_new = None
        for j in np.flatnonzero(remaining):
            if used + instance.storage[j] > instance.budget + 1e-9:
                continue
            new = np.minimum(current, instance.capped_costs[:, j])
            gain = current_cost - float(np.dot(weights, new))
            score = gain / max(float(instance.storage[j]), _EPS_STORAGE)
            if score > best_score:
                best_score = score
                best_gain = gain
                best_j = j
                best_new = new
        if best_j < 0:
            break
        selected.append(int(best_j))
        remaining[best_j] = False
        assert best_new is not None
        current = best_new
        current_cost -= best_gain
        used += float(instance.storage[best_j])
        if trace is not None:
            trace.append(GreedyStep(
                replica=int(best_j),
                gain=best_gain,
                score=best_score,
                cost_after=current_cost,
                storage_after=used,
            ))

    if metrics is not None:
        labels = {"solver": "greedy"}
        metrics.counter("repro_solver_runs_total", labels=labels).inc()
        metrics.counter("repro_solver_replicas_selected_total",
                        labels=labels).inc(len(selected))
    return Selection(
        selected=tuple(selected),
        cost=instance.workload_cost(selected),
        storage=used,
        optimal=False,
        solver="greedy",
    )

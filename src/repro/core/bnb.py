"""Exact branch-and-bound solver for the replica selection problem.

This is the repository's from-scratch "MIP solver": it explores the 0-1
space of the ``x_j`` (replica chosen?) variables only — given any fixed
replica set, the optimal ``y_ij`` assignment of Eq. 2-4 is trivially
"route each query to its cheapest chosen replica", so the y-variables
never need to be branched on.

Bounding.  At a node, replicas split into *chosen*, *excluded* and
*undecided*.  Since adding replicas can only lower the objective, the
cost with *all* undecided replicas added for free,

    LB = Σ_i w_i · min(chosen_min_i, suffix_min_i)

is a valid lower bound (suffix minima over the undecided tail are
precomputed once, making the bound O(n) per node).  Nodes are pruned
against the greedy incumbent; the include-branch is skipped when the
candidate replica does not improve any query under the current chosen
set (it then never helps deeper in the tree either).
"""

from __future__ import annotations

import numpy as np

from repro.core.greedy import greedy_select
from repro.core.problem import Selection, SelectionInstance

_REL_EPS = 1e-12


class BranchAndBoundLimit(RuntimeError):
    """Raised when the node budget is exhausted and ``on_limit='raise'``."""


def _search_order(instance: SelectionInstance) -> np.ndarray:
    """Static replica order: the greedy picks first (they make strong
    incumbents early), then the rest by ascending solo workload cost."""
    greedy = greedy_select(instance)
    chosen = list(greedy.selected)
    rest = [j for j in range(instance.n_replicas) if j not in set(chosen)]
    solo = [float(np.dot(instance.weights,
                         np.minimum(instance.empty_set_costs,
                                    instance.capped_costs[:, j])))
            for j in rest]
    rest_sorted = [j for _, j in sorted(zip(solo, rest))]
    return np.array(chosen + rest_sorted, dtype=np.int64)


def branch_and_bound_select(
    instance: SelectionInstance,
    max_nodes: int = 20_000_000,
    on_limit: str = "return",
    metrics=None,
) -> Selection:
    """Provably optimal selection (unless the node limit triggers).

    ``on_limit``: ``"return"`` yields the best incumbent with
    ``optimal=False``; ``"raise"`` raises :class:`BranchAndBoundLimit`.
    ``metrics`` optionally publishes run/node counters
    (``repro_solver_*``) into a
    :class:`~repro.obs.MetricsRegistry`.
    """
    if on_limit not in ("return", "raise"):
        raise ValueError(f"unknown on_limit mode {on_limit!r}")
    n, m = instance.n_queries, instance.n_replicas
    if m == 0 or n == 0:
        return Selection((), instance.workload_cost(()), 0.0, True, "bnb", 1)

    order = _search_order(instance)
    costs = instance.capped_costs[:, order]  # capped, in search order
    storage = instance.storage[order]
    weights = instance.weights
    budget = instance.budget

    # suffix_min[k] = elementwise min over columns k..m-1 (+inf at k=m).
    suffix_min = np.empty((m + 1, n), dtype=np.float64)
    suffix_min[m] = np.inf
    for k in range(m - 1, -1, -1):
        suffix_min[k] = np.minimum(suffix_min[k + 1], costs[:, k])

    # Incumbent from greedy (translate into search order positions).
    greedy = greedy_select(instance)
    incumbent_cost = instance.capped_workload_cost(greedy.selected)
    incumbent: tuple[int, ...] = greedy.selected
    nodes = 0
    limit_hit = False
    chosen_stack: list[int] = []  # positions in search order

    empty_min = instance.empty_set_costs.copy()

    def visit(k: int, current_min: np.ndarray, used: float) -> None:
        nonlocal incumbent_cost, incumbent, nodes, limit_hit
        if limit_hit:
            return
        nodes += 1
        if nodes > max_nodes:
            limit_hit = True
            return
        bound = float(np.dot(weights, np.minimum(current_min, suffix_min[k])))
        if bound >= incumbent_cost * (1 - _REL_EPS) - 1e-300:
            return
        if k == m:
            cost = float(np.dot(weights, current_min))
            if cost < incumbent_cost:
                incumbent_cost = cost
                incumbent = tuple(int(order[p]) for p in chosen_stack)
            return
        # Include branch first: good solutions surface early.
        if used + storage[k] <= budget + 1e-9:
            new_min = np.minimum(current_min, costs[:, k])
            if np.any(new_min < current_min):
                chosen_stack.append(k)
                visit(k + 1, new_min, used + float(storage[k]))
                chosen_stack.pop()
        # Exclude branch.
        visit(k + 1, current_min, used)

    visit(0, empty_min, 0.0)

    if metrics is not None:
        labels = {"solver": "bnb"}
        metrics.counter("repro_solver_runs_total", labels=labels).inc()
        metrics.counter("repro_solver_nodes_explored_total",
                        labels=labels).inc(nodes)
        metrics.counter("repro_solver_replicas_selected_total",
                        labels=labels).inc(len(incumbent))
    if limit_hit and on_limit == "raise":
        raise BranchAndBoundLimit(
            f"node budget {max_nodes} exhausted after exploring "
            f"{nodes} nodes")
    # The greedy incumbent itself might be the optimum; incumbent_cost is
    # always a feasible selection's cost.
    return Selection(
        selected=tuple(sorted(incumbent)),
        cost=instance.workload_cost(incumbent),
        storage=instance.storage_of(incumbent),
        optimal=not limit_hit,
        solver="bnb",
        nodes_explored=nodes,
    )

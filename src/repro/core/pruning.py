"""Candidate-set reduction by dominance (paper Section III-C2).

Replica ``r1`` dominates ``r2`` when ``Storage(r1) ≤ Storage(r2)`` and
``Cost(q_i, r1) ≤ Cost(q_i, r2)`` for every workload query: dropping
``r2`` cannot change the optimal workload cost.  More generally a *set*
of replicas dominates a replica; finding the minimum dominant set is
itself NP-complete, so (like the paper) we use cheap heuristics:
pairwise dominance plus an optional bounded pair-set check.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.problem import SelectionInstance


@dataclass(frozen=True)
class PruningResult:
    """Outcome of candidate pruning."""

    kept: tuple[int, ...]           # original replica indices, ascending
    dominated: tuple[int, ...]      # pruned replica indices
    instance: SelectionInstance     # restricted to `kept`

    @property
    def reduction(self) -> float:
        total = len(self.kept) + len(self.dominated)
        return len(self.dominated) / total if total else 0.0


def _pairwise_dominated(instance: SelectionInstance) -> np.ndarray:
    """Boolean mask of replicas dominated by some single other replica.

    Ties (identical cost column and storage) keep the lower index, so
    equivalent replicas never eliminate each other both ways.
    """
    costs = instance.costs
    storage = instance.storage
    m = instance.n_replicas
    dominated = np.zeros(m, dtype=bool)
    for j in range(m):
        if dominated[j]:
            continue
        # Candidates that j might dominate: storage_j <= storage_k.
        cheaper_or_equal = storage[j] <= storage + 1e-12
        cost_le = np.all(costs[:, j][:, None] <= costs + 1e-12, axis=0)
        dom = cheaper_or_equal & cost_le
        dom[j] = False
        # Strictness or index tie-break: identical columns keep the first.
        identical = (np.abs(storage - storage[j]) <= 1e-12) & np.all(
            np.abs(costs - costs[:, j][:, None]) <= 1e-12, axis=0
        )
        dom &= ~identical | (np.arange(m) > j)
        dominated |= dom
    return dominated


def _pair_set_dominated(
    instance: SelectionInstance, alive: np.ndarray, max_pairs: int
) -> np.ndarray:
    """Mark replicas dominated by a *pair* of smaller replicas — the
    bounded version of the paper's set-dominance heuristic."""
    costs = instance.costs
    storage = instance.storage
    dominated = np.zeros(instance.n_replicas, dtype=bool)
    alive_idx = np.flatnonzero(alive)
    # Check the largest replicas first: they are the likeliest victims.
    victims = alive_idx[np.argsort(-storage[alive_idx])]
    for j in victims:
        partners = [k for k in alive_idx
                    if k != j and not dominated[k] and storage[k] < storage[j]]
        checked = 0
        found = False
        for a_pos, a in enumerate(partners):
            if found or checked > max_pairs:
                break
            for b in partners[a_pos + 1:]:
                checked += 1
                if checked > max_pairs:
                    break
                if storage[a] + storage[b] > storage[j] + 1e-12:
                    continue
                if np.all(np.minimum(costs[:, a], costs[:, b]) <= costs[:, j] + 1e-12):
                    dominated[j] = True
                    found = True
                    break
    return dominated


def prune_dominated(
    instance: SelectionInstance,
    use_pair_sets: bool = False,
    max_pairs: int = 20_000,
) -> PruningResult:
    """Drop dominated candidates; the optimal workload cost is preserved
    (pairwise dominance is exact; pair-set dominance is too, it just costs
    more to check)."""
    dominated = _pairwise_dominated(instance)
    if use_pair_sets:
        dominated |= _pair_set_dominated(instance, ~dominated, max_pairs)
    kept = tuple(int(j) for j in np.flatnonzero(~dominated))
    if not kept:
        raise RuntimeError("pruning removed every candidate (bug)")
    return PruningResult(
        kept=kept,
        dominated=tuple(int(j) for j in np.flatnonzero(dominated)),
        instance=instance.restricted_to(kept),
    )

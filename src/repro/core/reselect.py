"""Workload-drift-triggered online replica reselection.

The Eq. 1-5 selection is only optimal *for the workload it was solved
against*.  Section VI's experiments fix the workload up front; a live
deployment does not get that luxury — query mixes shift (a city-wide
scan workload turns into a hot-spot probe workload overnight) and the
incumbent ``R*`` silently degrades while every individual query still
succeeds.  This module closes that loop:

1. **Mine** the live query distribution: the engine feeds every served
   query into a bounded, thread-safe
   :class:`~repro.core.adaptive.QueryLogger`;
   :func:`queries_from_traces` additionally reconstructs history from
   the :class:`~repro.obs.TraceRecorder`'s finished ``query`` spans
   (for controllers attached after the fact), and
   :func:`baseline_from_history` re-anchors a restarted controller from
   the persisted ``"reselection"`` timeseries entries.
2. **Detect drift**: :func:`workload_divergence` measures the
   Jensen-Shannon divergence between the baseline workload (the one the
   incumbent was selected for) and the observed one, over the shared
   cluster structure that :func:`~repro.core.grouping.reduce_workload`
   induces — scale-free, symmetric and bounded in ``[0, 1]``.
3. **Re-solve incrementally**: :func:`warm_reselect` restricts the
   Eq. 1-5 instance to the incumbent columns plus each query's cheapest
   candidate and runs the local-search solver *warm-started from the
   incumbent* — orders of magnitude less work than a cold solve over
   the full candidate cross product, with the incumbent's objective as
   a floor (local search only ever improves on its start).
4. **Act online**: new replicas are built in the background and
   installed before displaced ones are retired (readers never see an
   empty set), with the install/retire window serialized under the
   ingest tier's writer-preferring
   :class:`~repro.storage.ReadWriteLock`; in-flight routing plans that
   still name a retired replica fail over down their Eq. 6-7 ranking
   inside the engine, so reads never block or truncate across the
   transition.

Partial replicas (:mod:`repro.core.partial`) participate in the pricing
pass as *advisory* candidates only: a partial replica cannot be
physically installed (engine replicas must hold the full dataset — the
diverse-replica repair path assumes identical logical content), so the
controller reports which partials the solver would have picked and
re-solves the install set over full columns.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.adaptive import QueryLogger
from repro.core.grouping import reduce_workload
from repro.core.localsearch import local_search_select
from repro.core.partial import PartialReplica, partial_selection_instance
from repro.core.problem import Selection, SelectionInstance
from repro.obs.reselection import ReselectionUpdate
from repro.obs.trace import NULL_RECORDER
from repro.workload.query import GroupedQuery, Query, Workload

__all__ = [
    "ReselectionConfig",
    "ReselectionController",
    "baseline_from_history",
    "queries_from_traces",
    "replica_builder",
    "warm_reselect",
    "workload_divergence",
]


# -- drift signal -------------------------------------------------------------


def _grouped_weights(workload: Workload) -> dict[GroupedQuery, float]:
    return {q: w for q, w in workload.grouped().normalized()}


def workload_divergence(
    baseline: Workload,
    observed: Workload,
    k: int = 8,
    rng: np.random.Generator | None = None,
) -> float:
    """Jensen-Shannon divergence in ``[0, 1]`` between two workloads'
    grouped weight distributions.

    Both sides are grouped and normalized, merged into one extent set,
    clustered with :func:`~repro.core.grouping.reduce_workload` (so
    near-identical extents land in the same bucket and don't read as
    disjoint), and compared per cluster.  0 means identical mixes, 1
    means disjoint support.  Deterministic given ``rng``.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    p_of = _grouped_weights(baseline)
    q_of = _grouped_weights(observed)
    extents = list(p_of)
    extents.extend(g for g in q_of if g not in p_of)
    # Cluster the merged extent set once; the average of the two sides
    # weights the k-means so clusters reflect both mixes.  A plain dict
    # merge (never a combined Workload of raw entries) sidesteps
    # Workload's duplicate-query rejection.
    merged = Workload([
        (g, 0.5 * p_of.get(g, 0.0) + 0.5 * q_of.get(g, 0.0))
        for g in extents
    ])
    labels = reduce_workload(merged, k, rng).labels
    n_clusters = int(labels.max()) + 1 if len(labels) else 1
    p = np.zeros(n_clusters)
    q = np.zeros(n_clusters)
    for idx, g in enumerate(extents):
        p[labels[idx]] += p_of.get(g, 0.0)
        q[labels[idx]] += q_of.get(g, 0.0)
    m = 0.5 * (p + q)

    def _kl(a: np.ndarray) -> float:
        mask = a > 0
        return float(np.sum(a[mask] * np.log(a[mask] / m[mask])))

    js = 0.5 * _kl(p) + 0.5 * _kl(q)
    # ln 2 is the JS maximum (disjoint support); clamp tiny float debris.
    return min(max(js / math.log(2.0), 0.0), 1.0)


# -- incremental re-solve -----------------------------------------------------


def warm_reselect(
    instance: SelectionInstance,
    incumbent: Sequence[int],
    max_passes: int = 20,
) -> Selection:
    """Re-solve Eq. 1-5 warm-started from the incumbent selection.

    The search pool is the incumbent's columns plus each query's
    cheapest candidate (the per-query capped-cost argmin) — every
    single-replica lower bound is reachable, and the incumbent is the
    start point, so the result never scores worse than the incumbent on
    the capped objective.  Runs local search on the restricted
    sub-instance and maps the answer back to full-instance indices.
    """
    m = instance.n_replicas
    incumbent_cols = sorted({int(j) for j in incumbent if 0 <= int(j) < m})
    pool = set(incumbent_cols)
    if instance.n_queries and m:
        pool.update(int(j) for j in instance.capped_costs.argmin(axis=1))
    if not pool:
        pool.update(range(min(m, 1)))
    pool_list = sorted(pool)
    sub = instance.restricted_to(pool_list)
    pos = {j: k for k, j in enumerate(pool_list)}

    start = None
    start_sub = tuple(sorted(pos[j] for j in incumbent_cols))
    if start_sub and sub.is_feasible(start_sub):
        start = Selection(
            selected=start_sub,
            cost=sub.workload_cost(start_sub),
            storage=sub.storage_of(start_sub),
            optimal=False,
            solver="incumbent",
        )
    refined = local_search_select(sub, start=start, max_passes=max_passes)
    selected = tuple(sorted(pool_list[k] for k in refined.selected))
    return Selection(
        selected=selected,
        cost=instance.workload_cost(selected),
        storage=instance.storage_of(selected),
        optimal=False,
        solver=f"warm[{len(pool_list)}/{m}]+{refined.solver}",
    )


# -- mining history -----------------------------------------------------------


def queries_from_traces(tracer) -> list[Query]:
    """Reconstruct positioned queries from the tracer's finished root
    ``query`` spans (the engine annotates each with its extent and
    centroid).  Lets a controller attached mid-flight seed its log from
    history instead of starting blind."""
    out: list[Query] = []
    for span in tracer.spans():
        if span.name != "query" or span.end is None:
            continue
        attrs = span.attrs
        if "q_width" not in attrs:
            continue
        out.append(Query(
            float(attrs["q_width"]), float(attrs["q_height"]),
            float(attrs["q_duration"]), float(attrs["q_x"]),
            float(attrs["q_y"]), float(attrs["q_t"]),
        ))
    return out


def baseline_from_history(timeseries) -> Workload | None:
    """The baseline workload implied by the newest *applied*
    ``"reselection"`` entry in a timeseries store, or None when no
    reselection was ever applied.  A restarted controller re-anchors
    from this instead of re-flagging drift the old baseline already
    absorbed."""
    for entry in reversed(timeseries.entries("reselection")):
        data = entry["data"]
        rows = data.get("observed") or []
        if data.get("action") == "applied" and rows:
            return Workload([
                (GroupedQuery(float(w), float(h), float(t)), float(weight))
                for w, h, t, weight in rows
            ])
    return None


# -- physical builds ----------------------------------------------------------


def replica_builder(
    dataset,
    partitioning_schemes: Sequence,
    encoding_schemes: Sequence,
    unit_store_factory: Callable[[], object] | None = None,
    universe=None,
) -> Callable[[str], object]:
    """A ``profile name -> StoredReplica`` factory over the advisor's
    candidate namespace (``"<scheme>/<encoding>"``).

    The controller calls it off the serving path for every replica the
    winning selection needs built; each build lands in a fresh unit
    store from ``unit_store_factory`` (in-memory by default).
    """
    schemes = {s.name: s for s in partitioning_schemes}
    encodings = {e.name: e for e in encoding_schemes}

    def build(profile_name: str):
        from repro.storage import InMemoryStore, build_replica

        scheme_name, sep, encoding_name = profile_name.rpartition("/")
        if not sep or scheme_name not in schemes \
                or encoding_name not in encodings:
            raise KeyError(f"no builder for candidate {profile_name!r}")
        store = (InMemoryStore() if unit_store_factory is None
                 else unit_store_factory())
        return build_replica(dataset, schemes[scheme_name],
                             encodings[encoding_name], store,
                             name=profile_name, universe=universe)

    return build


# -- the controller -----------------------------------------------------------


@dataclass(frozen=True)
class ReselectionConfig:
    """Guards on the drift -> re-solve -> swap loop."""

    #: Jensen-Shannon divergence in (0, 1] below which the observed
    #: workload counts as "the one we already selected for".
    drift_threshold: float = 0.2
    #: Observed queries required before an evaluation is attempted, and
    #: the cooldown (in further queries) after any evaluation.
    min_queries: int = 32
    #: Relative Eq. 5 improvement required to actually swap.
    min_improvement: float = 0.02
    #: Cluster count for workload reduction / divergence.
    max_grouped_queries: int = 8
    #: Query-log ring capacity.
    capacity: int = 4096
    #: Audit what would change, touch nothing.
    dry_run: bool = False
    #: Run evaluations on a background thread (the serving path only
    #: pays a counter check); tests use the synchronous default.
    background: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.drift_threshold <= 1.0:
            raise ValueError("drift_threshold must be in (0, 1]")
        if self.min_queries < 1:
            raise ValueError("min_queries must be >= 1")
        if self.min_improvement < 0.0:
            raise ValueError("min_improvement must be >= 0")
        if self.max_grouped_queries < 1:
            raise ValueError("max_grouped_queries must be >= 1")


class ReselectionController:
    """Drift-triggered, warm-started, non-blocking replica reselection.

    Wire one to an engine via
    :meth:`repro.obs.Observability.attach_reselector`: the engine then
    feeds every served query into :meth:`observe` and offers
    :meth:`maybe_reselect` a shot after each served call (both are a
    counter check until ``min_queries`` fresh queries accumulate).

    An evaluation: group the observed log, measure
    :func:`workload_divergence` against the baseline workload, and —
    past the threshold — rebuild the Eq. 1-5 instance for the observed
    workload and :func:`warm_reselect` from the incumbent.  A winning
    candidate set is applied *install-first*: new replicas are built
    (slow, off-lock), registered, and only then are displaced replicas
    retired, the whole install/retire window serialized under a
    writer-preferring :class:`~repro.storage.ReadWriteLock`.  The
    engine's decoded-partition cache and zone memos for swapped/retired
    replicas are invalidated by the store itself
    (``retire_replica``/``swap_replica``), and stale routing plans fail
    over inside the engine, so concurrent reads stay correct and
    non-blocking throughout.

    Every decision lands in :attr:`audit_log`, in the
    ``repro_reselect_*`` counters, and (when a timeseries store is
    attached) in the on-disk history as a ``"reselection"`` entry.
    """

    def __init__(
        self,
        store,
        advisor,
        budget: float,
        baseline: Workload,
        *,
        build: Callable[[str], object] | None = None,
        partial_replicas: Sequence[PartialReplica] = (),
        config: ReselectionConfig | None = None,
        obs=None,
        timeseries=None,
        rng: np.random.Generator | None = None,
    ):
        if budget <= 0:
            raise ValueError("budget must be positive")
        if len(baseline) == 0:
            raise ValueError("baseline workload is empty")
        from repro.storage import ReadWriteLock

        self.store = store
        self.advisor = advisor
        self.budget = float(budget)
        self.baseline = baseline
        self.config = config or ReselectionConfig()
        self.obs = obs
        self.timeseries = timeseries
        self.partial_replicas = list(partial_replicas)
        self.logger = QueryLogger(capacity=self.config.capacity)
        self.epoch = 0
        self.audit_log: list[ReselectionUpdate] = []
        self._build = build
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._gate = threading.Lock()        # one evaluation at a time
        self._swap = ReadWriteLock()         # install/retire window
        self._next_eval = self.config.min_queries
        self._thread: threading.Thread | None = None

    # -- mining ------------------------------------------------------------

    def observe(self, query: Query) -> None:
        """One served query, straight off the engine's serving path."""
        self.logger.record(query)

    def seed_from_traces(self, tracer=None) -> int:
        """Backfill the query log from finished trace spans (the
        controller may be attached long after the engine started
        serving).  Returns the number of queries recovered."""
        if tracer is None and self.obs is not None:
            tracer = self.obs.tracer
        if tracer is None:
            return 0
        queries = queries_from_traces(tracer)
        for q in queries:
            self.logger.record(q)
        return len(queries)

    # -- the loop ----------------------------------------------------------

    def maybe_reselect(self) -> ReselectionUpdate | None:
        """Engine hook: cheap until ``min_queries`` fresh queries have
        accumulated, then one evaluation (inline or on a background
        thread per the config).  Never blocks behind a running
        evaluation."""
        if self.logger.recorded < self._next_eval:
            return None
        if not self._gate.acquire(blocking=False):
            return None
        if self.config.background:
            thread = threading.Thread(
                target=self._evaluate_and_release,
                name="repro-reselect", daemon=True)
            self._thread = thread
            thread.start()
            return None
        try:
            return self._evaluate_locked(force=False)
        finally:
            self._gate.release()

    def evaluate(self, force: bool = False) -> ReselectionUpdate | None:
        """Run one evaluation now (blocking).  ``force`` skips the
        drift gate — the CLI drill and tests use it."""
        with self._gate:
            return self._evaluate_locked(force=force)

    def wait(self, timeout: float | None = None) -> None:
        """Join a background evaluation, if one is running."""
        thread = self._thread
        if thread is not None:
            thread.join(timeout)

    def _evaluate_and_release(self) -> None:
        try:
            self._evaluate_locked(force=False)
        finally:
            self._gate.release()

    # -- one evaluation ----------------------------------------------------

    def _evaluate_locked(self, force: bool) -> ReselectionUpdate | None:
        # Evaluations are background spans in the shared trace stream:
        # a p99 blip at the front door can be lined up against a
        # concurrent warm re-solve or replica build.
        tracer = self.obs.tracer if self.obs is not None else NULL_RECORDER
        with tracer.start("bg_reselect", kind="background") as span:
            update = self._evaluate_inner(force)
            if update is not None:
                span.annotate(action=update.action,
                              divergence=update.divergence)
            return update

    def _evaluate_inner(self, force: bool) -> ReselectionUpdate | None:
        cfg = self.config
        # Cooldown first: win or lose, don't re-litigate until fresh
        # evidence accumulates.
        self._next_eval = self.logger.recorded + cfg.min_queries
        if len(self.logger) == 0:
            return None
        if not force and len(self.logger) < cfg.min_queries:
            return None

        observed = self.logger.to_workload(
            max_grouped_queries=cfg.max_grouped_queries, rng=self._rng)
        divergence = workload_divergence(
            self.baseline, observed, k=cfg.max_grouped_queries,
            rng=self._rng)
        self._count("repro_reselect_evaluations_total")
        self._gauge("repro_reselect_divergence", divergence)
        if not force and divergence < cfg.drift_threshold:
            return None

        instance = self.advisor.build_instance(observed, self.budget)
        col_of = {instance.name_of(j): j
                  for j in range(instance.n_replicas)}
        current = list(self.store.replica_names())
        incumbent_cols = sorted(col_of[n] for n in current if n in col_of)
        incumbent_cost = instance.capped_workload_cost(incumbent_cols)
        warm = warm_reselect(instance, incumbent_cols)
        candidate_cost = instance.capped_workload_cost(warm.selected)
        candidate_names = tuple(instance.name_of(j) for j in warm.selected)
        improvement = ((incumbent_cost - candidate_cost) / incumbent_cost
                       if incumbent_cost > 0 else 0.0)
        advisory = self._partial_advisory(observed)

        common = dict(
            epoch=self.epoch,
            divergence=divergence,
            drift_threshold=cfg.drift_threshold,
            observed_queries=len(self.logger),
            incumbent=tuple(current),
            incumbent_cost=incumbent_cost,
            candidate=candidate_names,
            candidate_cost=candidate_cost,
            improvement=improvement,
            partial_advisory=advisory,
            storage_used=warm.storage,
            budget=self.budget,
            solver=warm.solver,
            n_pool=instance.n_replicas,
            observed=tuple(
                (g.width, g.height, g.duration, w)
                for g, w in observed.grouped()),
        )

        if not warm.selected:
            return self._decide("rejected", "solver returned an empty "
                                "selection", common)
        if set(candidate_names) == set(current):
            return self._decide(
                "rejected", "incumbent set is still the winner under the "
                "observed workload", common)
        if improvement < cfg.min_improvement:
            return self._decide(
                "rejected",
                f"improvement {improvement:.4f} below minimum "
                f"{cfg.min_improvement:.4f}", common)
        if cfg.dry_run:
            return self._decide(
                "dry-run", None, common,
                built=tuple(n for n in candidate_names if n not in current),
                retired=tuple(n for n in current
                              if n not in candidate_names))
        return self._apply(observed, candidate_names, current, common)

    def _apply(self, observed: Workload, candidate_names: tuple[str, ...],
               current: list[str], common: dict) -> ReselectionUpdate:
        to_build = [n for n in candidate_names if n not in current]
        to_retire = [n for n in current if n not in candidate_names]
        if to_build and self._build is None:
            return self._decide(
                "rejected", "no replica builder attached "
                f"(would build {to_build})", common)
        # Builds are the slow part; do them before touching the serving
        # set, so the swap window itself is just dict surgery.
        built = []
        try:
            for name in to_build:
                built.append(self._build(name))
        except Exception as exc:  # noqa: BLE001 — audited, not fatal
            return self._decide(
                "rejected", f"build of {name!r} failed: {exc}", common)

        with self._swap.write_lock():
            # Install-first: readers racing the swap always see a
            # superset of a valid serving set; retiring afterwards is
            # safe because the engine fails stale plans over.
            for replica in built:
                self.store.register_replica(replica)
            for name in to_retire:
                self.store.retire_replica(name)

        # New epoch: the observed workload becomes the baseline the
        # next drift measurement anchors on, and retired replicas'
        # drift windows stop mattering.
        self.baseline = observed
        self.logger.clear()
        self._next_eval = self.logger.recorded + self.config.min_queries
        if self.obs is not None:
            for name in to_retire:
                self.obs.drift.clear_replica(name)
        self.epoch += 1
        return self._decide("applied", None, common,
                            built=tuple(to_build),
                            retired=tuple(to_retire))

    # -- advisory partial pricing ------------------------------------------

    def _partial_advisory(self, observed: Workload) -> tuple[str, ...]:
        """Which partial replicas the solver would pick if they were
        installable — priced against the observed workload alongside
        the full candidates, reported but never built."""
        if not self.partial_replicas:
            return ()
        cost_model = getattr(self.store, "cost_model", None)
        if cost_model is None:
            return ()
        try:
            instance = partial_selection_instance(
                cost_model, observed, self.advisor.candidates,
                list(self.partial_replicas), self.budget)
            picked = local_search_select(instance)
        except ValueError:
            return ()
        return tuple(n for n in (instance.name_of(j)
                                 for j in picked.selected)
                     if n.endswith("@partial"))

    # -- audit -------------------------------------------------------------

    def _decide(self, action: str, reason: str | None, common: dict,
                built: tuple[str, ...] = (),
                retired: tuple[str, ...] = ()) -> ReselectionUpdate:
        update = ReselectionUpdate(action=action, reason=reason,
                                   built=built, retired=retired, **common)
        self.audit_log.append(update)
        if self.timeseries is not None:
            self.timeseries.append("reselection", update.to_dict())
        if action == "applied":
            self._count("repro_reselect_applied_total")
        elif action == "rejected":
            self._count("repro_reselect_rejected_total")
        return update

    def audit_dicts(self) -> list[dict]:
        """The in-memory audit trail as JSON-safe data."""
        return [u.to_dict() for u in self.audit_log]

    def _count(self, name: str) -> None:
        if self.obs is not None:
            self.obs.metrics.counter(name).inc()

    def _gauge(self, name: str, value: float) -> None:
        if self.obs is not None:
            self.obs.metrics.gauge(name).set(value)

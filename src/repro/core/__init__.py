"""The paper's primary contribution: diverse replica selection.

Problem definition (Section III-A), NP-completeness reduction (Theorem
1), the 0-1 MIP exact solution (Section III-B) with a from-scratch
branch-and-bound solver, input-size reduction (Section III-C: workload
clustering + dominated-replica pruning), the Algorithm 1 greedy
(Section III-D), partial replication (the stated future work), and the
:class:`ReplicaAdvisor` facade gluing it to the cost model.
"""

from repro.core.adaptive import (
    AdaptiveReconfigurator,
    QueryLogger,
    RetuneDecision,
)
from repro.core.advisor import AdvisorConfig, ReplicaAdvisor, SelectionReport
from repro.core.bnb import BranchAndBoundLimit, branch_and_bound_select
from repro.core.bruteforce import brute_force_select
from repro.core.frontier import (
    BudgetFrontier,
    FrontierPoint,
    cost_budget_frontier,
)
from repro.core.greedy import GreedyStep, greedy_select
from repro.core.grouping import WorkloadReduction, kmeans, reduce_workload
from repro.core.localsearch import local_search_select
from repro.core.mip import MipFormulation, build_mip, solve_mip
from repro.core.npcomplete import (
    selection_instance_from_set_cover,
    set_cover_decision,
    set_cover_from_selection,
)
from repro.core.partial import (
    PartialReplica,
    partial_selection_instance,
    record_fraction_in_box,
)
from repro.core.problem import Selection, SelectionInstance
from repro.core.pruning import PruningResult, prune_dominated
from repro.core.reselect import (
    ReselectionConfig,
    ReselectionController,
    baseline_from_history,
    queries_from_traces,
    replica_builder,
    warm_reselect,
    workload_divergence,
)

__all__ = [
    "AdaptiveReconfigurator",
    "BudgetFrontier",
    "FrontierPoint",
    "AdvisorConfig",
    "QueryLogger",
    "RetuneDecision",
    "BranchAndBoundLimit",
    "GreedyStep",
    "MipFormulation",
    "PartialReplica",
    "PruningResult",
    "ReplicaAdvisor",
    "ReselectionConfig",
    "ReselectionController",
    "Selection",
    "SelectionInstance",
    "SelectionReport",
    "WorkloadReduction",
    "baseline_from_history",
    "branch_and_bound_select",
    "brute_force_select",
    "build_mip",
    "cost_budget_frontier",
    "greedy_select",
    "kmeans",
    "local_search_select",
    "partial_selection_instance",
    "prune_dominated",
    "queries_from_traces",
    "record_fraction_in_box",
    "reduce_workload",
    "replica_builder",
    "warm_reselect",
    "workload_divergence",
    "selection_instance_from_set_cover",
    "set_cover_decision",
    "set_cover_from_selection",
    "solve_mip",
]

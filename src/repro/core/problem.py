"""The replica selection problem (paper Section III-A).

Given a workload ``W``, candidate replicas ``R_C`` with storage sizes,
and a storage budget ``b``, find ``R* ⊆ R_C`` minimizing

    Cost(W, R) = Σ_i w_i · min_{r_j ∈ R} Cost(q_i, r_j)

subject to ``Storage(R) ≤ b``.  A :class:`SelectionInstance` is the
numeric form every solver in this package consumes: the (n × m) cost
matrix, per-query weights, per-replica storage sizes and the budget.
Costs may be ``+inf`` ("this replica cannot answer this query", used by
the NP-completeness reduction and partial replication).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

# Two cost views live on an instance:
#
# - the *true* costs, possibly +inf ("replica cannot answer the query");
#   `workload_cost`/`per_query_cost` report these;
# - the *capped* costs, where +inf is replaced by a big-M so large that any
#   selection leaving a positive-weight query uncovered costs more than
#   every fully-covered selection.  Solvers minimize the capped objective:
#   when a fully-finite selection exists the minimizers coincide, and the
#   capped domain gives Algorithm 1 a finite, monotone objective with
#   Cost(W, ∅) = Σ_i w_i · (worst capped candidate of q_i).


@dataclass(frozen=True)
class SelectionInstance:
    """Numeric replica-selection instance.

    ``costs[i, j] = Cost(q_i, r_j)`` (unweighted), ``weights[i] = w_i``,
    ``storage[j] = Storage(r_j)``, ``budget = b``.  ``replica_names`` and
    ``query_labels`` are carried for reporting only.
    """

    costs: np.ndarray
    weights: np.ndarray
    storage: np.ndarray
    budget: float
    replica_names: tuple[str, ...] = ()
    query_labels: tuple[str, ...] = ()
    capped_costs: np.ndarray = field(init=False)
    big_cost: float = field(init=False)
    empty_set_costs: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        costs = np.asarray(self.costs, dtype=np.float64)
        weights = np.asarray(self.weights, dtype=np.float64)
        storage = np.asarray(self.storage, dtype=np.float64)
        object.__setattr__(self, "costs", costs)
        object.__setattr__(self, "weights", weights)
        object.__setattr__(self, "storage", storage)
        if costs.ndim != 2:
            raise ValueError("costs must be a 2-D (queries x replicas) matrix")
        n, m = costs.shape
        if weights.shape != (n,):
            raise ValueError(f"weights shape {weights.shape} != ({n},)")
        if storage.shape != (m,):
            raise ValueError(f"storage shape {storage.shape} != ({m},)")
        if np.any(weights < 0):
            raise ValueError("weights must be non-negative")
        if np.any(storage < 0):
            raise ValueError("storage sizes must be non-negative")
        if np.any(np.isnan(costs)) or np.any(costs < 0):
            raise ValueError("costs must be non-negative and not NaN")
        if self.budget < 0:
            raise ValueError("budget must be non-negative")
        if self.replica_names and len(self.replica_names) != m:
            raise ValueError(f"{len(self.replica_names)} names for {m} replicas")
        if self.query_labels and len(self.query_labels) != n:
            raise ValueError(f"{len(self.query_labels)} labels for {n} queries")
        # Every query must be answerable by at least one candidate.
        finite_mask = np.isfinite(costs)
        if n > 0 and m > 0 and not finite_mask.any(axis=1).all():
            raise ValueError(
                "some query has no finite cost on any candidate replica"
            )
        # Capped domain: +inf -> big-M exceeding any fully-covered total.
        if finite_mask.all():
            big = float(costs.max(initial=0.0)) + 1.0
            capped = costs
        else:
            worst_finite = np.where(finite_mask, costs, 0.0).max(axis=1)
            covered_total = float(np.dot(weights, worst_finite))
            positive = weights[weights > 0]
            w_min = float(positive.min()) if positive.size else 1.0
            big = (covered_total / w_min) * 2.0 + 1.0
            capped = np.where(finite_mask, costs, big)
        object.__setattr__(self, "big_cost", big)
        object.__setattr__(self, "capped_costs", capped)
        object.__setattr__(
            self,
            "empty_set_costs",
            capped.max(axis=1, initial=0.0) if m > 0 else np.zeros(n),
        )

    # -- shape ------------------------------------------------------------

    @property
    def n_queries(self) -> int:
        return int(self.costs.shape[0])

    @property
    def n_replicas(self) -> int:
        return int(self.costs.shape[1])

    def name_of(self, j: int) -> str:
        return self.replica_names[j] if self.replica_names else f"r{j}"

    # -- objective -----------------------------------------------------------

    def per_query_cost(self, selected: Sequence[int]) -> np.ndarray:
        """Unweighted ``Cost(q_i, R)`` for every query (Definition 7).

        For an empty selection, falls back to the documented
        ``Cost(W, ∅)`` convention.
        """
        idx = np.asarray(list(selected), dtype=np.int64)
        if idx.size == 0:
            return self.empty_set_costs.copy()
        return self.costs[:, idx].min(axis=1)

    def workload_cost(self, selected: Sequence[int]) -> float:
        """``Cost(W, R)``: weighted sum of per-query minima (true costs,
        ``+inf`` when some positive-weight query is unanswerable)."""
        per_query = self.per_query_cost(selected)
        # Avoid 0 * inf = nan for zero-weight unanswerable queries.
        relevant = self.weights > 0
        return float(np.dot(self.weights[relevant], per_query[relevant]))

    def capped_workload_cost(self, selected: Sequence[int]) -> float:
        """The solver objective: like :meth:`workload_cost` but over the
        capped cost matrix (always finite)."""
        idx = np.asarray(list(selected), dtype=np.int64)
        if idx.size == 0:
            per_query = self.empty_set_costs
        else:
            per_query = self.capped_costs[:, idx].min(axis=1)
        return float(np.dot(self.weights, per_query))

    def assignment(self, selected: Sequence[int]) -> np.ndarray:
        """For each query, the replica index (into the full candidate set)
        it is routed to under selection ``selected``."""
        idx = np.asarray(list(selected), dtype=np.int64)
        if idx.size == 0:
            raise ValueError("cannot assign queries with no replicas selected")
        return idx[self.costs[:, idx].argmin(axis=1)]

    # -- constraints -------------------------------------------------------------

    def storage_of(self, selected: Sequence[int]) -> float:
        """``Storage(R)`` of a selection."""
        idx = np.asarray(list(selected), dtype=np.int64)
        return float(self.storage[idx].sum()) if idx.size else 0.0

    def is_feasible(self, selected: Sequence[int]) -> bool:
        return self.storage_of(selected) <= self.budget + 1e-9

    # -- reference selections ----------------------------------------------------

    def ideal_cost(self) -> float:
        """Cost with *every* candidate available, ignoring the budget —
        the paper's "Ideal" line (always approximation ratio 1.00)."""
        return self.workload_cost(range(self.n_replicas))

    def best_single(self) -> tuple[int, float]:
        """The optimal single replica (the paper's "Single" baseline):
        the feasible replica minimizing ``Cost(W, {r})``.

        Returns ``(replica_index, cost)``.  Raises if no single replica
        fits the budget.
        """
        feasible = np.flatnonzero(self.storage <= self.budget + 1e-9)
        if feasible.size == 0:
            raise ValueError("no single replica fits the storage budget")
        costs = [self.workload_cost([j]) for j in feasible]
        k = int(np.argmin(costs))
        return int(feasible[k]), float(costs[k])

    # -- transforms -----------------------------------------------------------

    def restricted_to(self, replica_indices: Sequence[int]) -> "SelectionInstance":
        """A sub-instance over a subset of candidate replicas (used by
        pruning).  Selection indices of the sub-instance refer to its own
        column order."""
        idx = np.asarray(list(replica_indices), dtype=np.int64)
        return SelectionInstance(
            costs=self.costs[:, idx],
            weights=self.weights,
            storage=self.storage[idx],
            budget=self.budget,
            replica_names=tuple(self.name_of(j) for j in idx)
            if self.replica_names else (),
            query_labels=self.query_labels,
        )

    def with_budget(self, budget: float) -> "SelectionInstance":
        """The same instance under a different storage budget."""
        return SelectionInstance(
            costs=self.costs,
            weights=self.weights,
            storage=self.storage,
            budget=budget,
            replica_names=self.replica_names,
            query_labels=self.query_labels,
        )


@dataclass(frozen=True)
class Selection:
    """A solver's answer: chosen replica indices plus bookkeeping."""

    selected: tuple[int, ...]
    cost: float
    storage: float
    optimal: bool
    solver: str
    nodes_explored: int = 0

    def names(self, instance: SelectionInstance) -> list[str]:
        return [instance.name_of(j) for j in self.selected]

"""The 0-1 MIP formulation of replica selection (paper Section III-B).

Variables: ``x_j`` (replica j present) and ``y_ij`` (query i processed on
replica j).  Minimize Σ w_i·c_ij·y_ij (Eq. 5) subject to

    Σ_j s_j·x_j ≤ b                 (Eq. 1, storage)
    Σ_j y_ij = 1        ∀i          (Eq. 2, one replica per query)
    y_ij ≤ x_j          ∀i,j        (Eq. 3, per-query linking) or
    Σ_i y_ij ≤ n·x_j    ∀j          (Eq. 4, aggregated linking)

The paper replaces the n·m constraints of Eq. 3 with the m aggregated
constraints of Eq. 4; both forms are built here so the ablation bench can
compare them.  Two backends solve the model: ``"bnb"`` — our from-scratch
branch-and-bound over the x-space (default; the y-optimum is implied) —
and ``"scipy"`` — the HiGHS MILP solver on the explicit matrices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.core.bnb import branch_and_bound_select
from repro.core.problem import Selection, SelectionInstance


@dataclass(frozen=True)
class MipFormulation:
    """Explicit matrices of the 0-1 MIP (all variables binary).

    Variable layout: ``z = [x_0..x_{m-1}, y_00, y_01, .., y_{n-1,m-1}]``
    with y in query-major order.
    """

    objective: np.ndarray
    a_ub: sparse.csr_matrix
    b_ub: np.ndarray
    a_eq: sparse.csr_matrix
    b_eq: np.ndarray
    n_queries: int
    n_replicas: int
    constraint_form: str
    big_m_cost: float

    @property
    def n_variables(self) -> int:
        return self.n_replicas + self.n_queries * self.n_replicas

    @property
    def n_constraints(self) -> int:
        return self.a_ub.shape[0] + self.a_eq.shape[0]


def build_mip(
    instance: SelectionInstance, constraint_form: str = "aggregated"
) -> MipFormulation:
    """Assemble the MIP matrices for ``instance``.

    ``constraint_form``: ``"aggregated"`` (Eq. 4, m linking rows) or
    ``"per-query"`` (Eq. 3, n·m linking rows).  Infinite costs are
    replaced by a big-M exceeding any feasible workload cost, preserving
    the optimum whenever a finite-cost solution exists.
    """
    if constraint_form not in ("aggregated", "per-query"):
        raise ValueError(f"unknown constraint form {constraint_form!r}")
    n, m = instance.n_queries, instance.n_replicas
    weights = instance.weights
    costs = instance.costs
    finite = costs[np.isfinite(costs)]
    big_m = float(finite.max() if finite.size else 1.0) * max(n, 1) * 10.0 + 1.0
    wc = weights[:, None] * np.where(np.isfinite(costs), costs, big_m)

    objective = np.concatenate([np.zeros(m), wc.ravel()])

    def y_col(i: int, j: int) -> int:
        return m + i * m + j

    # -- inequality rows ---------------------------------------------------
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    b_ub: list[float] = []
    row = 0
    # Eq. 1: storage.
    for j in range(m):
        rows.append(row)
        cols.append(j)
        vals.append(float(instance.storage[j]))
    b_ub.append(float(instance.budget))
    row += 1
    if constraint_form == "aggregated":
        # Eq. 4: sum_i y_ij - n*x_j <= 0.
        for j in range(m):
            for i in range(n):
                rows.append(row)
                cols.append(y_col(i, j))
                vals.append(1.0)
            rows.append(row)
            cols.append(j)
            vals.append(-float(n))
            b_ub.append(0.0)
            row += 1
    else:
        # Eq. 3: y_ij - x_j <= 0.
        for i in range(n):
            for j in range(m):
                rows.append(row)
                cols.append(y_col(i, j))
                vals.append(1.0)
                rows.append(row)
                cols.append(j)
                vals.append(-1.0)
                b_ub.append(0.0)
                row += 1
    n_vars = m + n * m
    a_ub = sparse.csr_matrix(
        (vals, (rows, cols)), shape=(row, n_vars), dtype=np.float64
    )

    # -- equality rows (Eq. 2) ------------------------------------------------
    e_rows: list[int] = []
    e_cols: list[int] = []
    e_vals: list[float] = []
    for i in range(n):
        for j in range(m):
            e_rows.append(i)
            e_cols.append(y_col(i, j))
            e_vals.append(1.0)
    a_eq = sparse.csr_matrix(
        (e_vals, (e_rows, e_cols)), shape=(n, n_vars), dtype=np.float64
    )

    return MipFormulation(
        objective=objective,
        a_ub=a_ub,
        b_ub=np.array(b_ub),
        a_eq=a_eq,
        b_eq=np.ones(n),
        n_queries=n,
        n_replicas=m,
        constraint_form=constraint_form,
        big_m_cost=big_m,
    )


def solve_mip(
    instance: SelectionInstance,
    backend: str = "bnb",
    constraint_form: str = "aggregated",
    max_nodes: int = 20_000_000,
) -> Selection:
    """Solve the replica selection MIP exactly.

    ``backend="bnb"`` uses :func:`branch_and_bound_select` (the explicit
    y-variables are unnecessary there); ``backend="scipy"`` builds the
    full matrices and calls ``scipy.optimize.milp`` (HiGHS).
    """
    if backend == "bnb":
        sel = branch_and_bound_select(instance, max_nodes=max_nodes)
        return Selection(
            selected=sel.selected,
            cost=sel.cost,
            storage=sel.storage,
            optimal=sel.optimal,
            solver=f"mip-bnb/{constraint_form}",
            nodes_explored=sel.nodes_explored,
        )
    if backend != "scipy":
        raise ValueError(f"unknown MIP backend {backend!r}")

    from scipy.optimize import LinearConstraint, milp

    # The explicit model forces every query onto a chosen replica
    # (Eq. 2-4), so it cannot express the empty selection: with no
    # affordable replica (or no queries) HiGHS would report the model
    # infeasible even though ∅ is the valid optimum under the
    # capped-cost convention.  Short-circuit those instances.
    affordable = instance.storage <= instance.budget + 1e-9
    if instance.n_queries == 0 or not affordable.any():
        return Selection(
            selected=(),
            cost=instance.workload_cost(()),
            storage=0.0,
            optimal=True,
            solver=f"mip-scipy/{constraint_form}",
        )

    formulation = build_mip(instance, constraint_form)
    constraints = [
        LinearConstraint(formulation.a_ub, -np.inf, formulation.b_ub),
        LinearConstraint(formulation.a_eq, formulation.b_eq, formulation.b_eq),
    ]
    result = milp(
        c=formulation.objective,
        constraints=constraints,
        integrality=np.ones(formulation.n_variables),
        bounds=(0, 1),
    )
    if not result.success:
        raise RuntimeError(f"MILP solver failed: {result.message}")
    x = result.x[: instance.n_replicas]
    selected = tuple(int(j) for j in np.flatnonzero(x > 0.5))
    # Drop replicas the assignment never uses (x_j=1 with no y mass is
    # feasible but wasteful; HiGHS may leave them in degenerate optima).
    if selected:
        used = set(int(j) for j in instance.assignment(selected))
        selected = tuple(sorted(used))
    return Selection(
        selected=selected,
        cost=instance.workload_cost(selected),
        storage=instance.storage_of(selected),
        optimal=True,
        solver=f"mip-scipy/{constraint_form}",
    )

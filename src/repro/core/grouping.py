"""Workload-size reduction by clustering range sizes (Section III-C1).

"If the number of different range sizes is still large, we can use
clustering algorithms such as K-means to cluster the range sizes and only
use the cluster centers to construct the input workload."  Clustering is
done in log-extent space (range sizes vary over orders of magnitude) with
a from-scratch k-means (k-means++ seeding + Lloyd iterations).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workload.query import GroupedQuery, Workload


def kmeans(
    points: np.ndarray,
    k: int,
    rng: np.random.Generator,
    max_iter: int = 100,
    tol: float = 1e-9,
) -> tuple[np.ndarray, np.ndarray]:
    """Lloyd's k-means with k-means++ initialization.

    Returns ``(centers (k, d), labels (n,))``.  Deterministic given
    ``rng``.  Empty clusters are re-seeded from the farthest point.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("points must be (n, d)")
    n = points.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")

    # k-means++ seeding.
    centers = np.empty((k, points.shape[1]))
    centers[0] = points[rng.integers(n)]
    closest_sq = np.sum((points - centers[0]) ** 2, axis=1)
    for c in range(1, k):
        total = closest_sq.sum()
        if total <= 0:
            centers[c:] = points[rng.integers(n, size=k - c)]
            break
        probs = closest_sq / total
        centers[c] = points[rng.choice(n, p=probs)]
        closest_sq = np.minimum(
            closest_sq, np.sum((points - centers[c]) ** 2, axis=1)
        )

    labels = np.zeros(n, dtype=np.int64)
    for _ in range(max_iter):
        dists = np.sum((points[:, None, :] - centers[None, :, :]) ** 2, axis=2)
        labels = dists.argmin(axis=1)
        new_centers = centers.copy()
        for c in range(k):
            members = points[labels == c]
            if len(members):
                new_centers[c] = members.mean(axis=0)
            else:
                # Re-seed an empty cluster at the farthest point.
                far = int(dists.min(axis=1).argmax())
                new_centers[c] = points[far]
        shift = float(np.abs(new_centers - centers).max())
        centers = new_centers
        if shift < tol:
            break
    dists = np.sum((points[:, None, :] - centers[None, :, :]) ** 2, axis=2)
    return centers, dists.argmin(axis=1)


@dataclass(frozen=True)
class WorkloadReduction:
    """A clustered workload plus the query-to-cluster mapping."""

    reduced: Workload
    labels: np.ndarray  # original query index -> reduced query index


def reduce_workload(
    workload: Workload, k: int, rng: np.random.Generator
) -> WorkloadReduction:
    """Cluster the workload's grouped-query extents down to ``k`` cluster
    centers; cluster weights are the summed member weights."""
    grouped = workload.grouped()
    sizes = np.array([q.size for q in grouped.queries()], dtype=np.float64)
    if len(grouped) <= k:
        return WorkloadReduction(grouped, np.arange(len(grouped)))
    logs = np.log(np.maximum(sizes, 1e-300))
    centers, labels = kmeans(logs, k, rng)
    weights = np.zeros(k)
    for label, (_, w) in zip(labels, grouped):
        weights[label] += w
    entries = []
    for c in range(k):
        w, h, t = np.exp(centers[c])
        entries.append((GroupedQuery(float(w), float(h), float(t)), float(weights[c])))
    return WorkloadReduction(Workload(entries), labels)

"""The Theorem 1 reduction: set cover ≤p replica selection.

The paper proves NP-completeness by mapping a set-cover decision instance
``(U, S, k)`` to a selection instance: one unit-weight query per element,
one unit-storage replica per set, cost 0 when the set covers the element
and +inf otherwise, budget ``k``.  The instance's optimal workload cost
is 0 iff a cover of size ≤ k exists.  These converters let the tests (and
the curious) execute the proof.
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import Selection, SelectionInstance


def selection_instance_from_set_cover(
    n_elements: int, sets: list[set[int]], k: int
) -> SelectionInstance:
    """Build the Theorem 1 instance for set-cover ``(U, S, k)``.

    Elements are ``0..n_elements-1``; every element must belong to at
    least one set (otherwise the selection instance would have a query
    with no finite cost, mirroring a trivially infeasible cover).
    """
    if n_elements < 1:
        raise ValueError("need at least one element")
    if not sets:
        raise ValueError("need at least one set")
    if not 1 <= k <= len(sets):
        raise ValueError(f"k must be in [1, {len(sets)}]")
    covered = set().union(*sets)
    missing = set(range(n_elements)) - covered
    if missing:
        raise ValueError(f"elements {sorted(missing)} are in no set")
    costs = np.full((n_elements, len(sets)), np.inf)
    for j, s in enumerate(sets):
        for x in s:
            if not 0 <= x < n_elements:
                raise ValueError(f"set {j} contains unknown element {x}")
            costs[x, j] = 0.0
    return SelectionInstance(
        costs=costs,
        weights=np.ones(n_elements),
        storage=np.ones(len(sets)),
        budget=float(k),
        replica_names=tuple(f"set-{j}" for j in range(len(sets))),
        query_labels=tuple(f"element-{x}" for x in range(n_elements)),
    )


def set_cover_from_selection(selection: Selection) -> set[int]:
    """Read the chosen sets back out of a selection (Theorem 1's ``S*``)."""
    return set(selection.selected)


def set_cover_decision(
    n_elements: int, sets: list[set[int]], k: int, solver
) -> tuple[bool, set[int] | None]:
    """Decide set cover by solving the reduced selection instance with any
    exact solver.  Returns ``(feasible, cover_or_None)``."""
    instance = selection_instance_from_set_cover(n_elements, sets, k)
    selection = solver(instance)
    if selection.cost == 0.0:
        return True, set_cover_from_selection(selection)
    return False, None

"""Cross-process trace propagation and offline stitching.

The serving tier splits one request across processes: the asyncio front
door opens a ``request`` span, the batcher coalesces requests, and each
spawn worker runs the engine with its own
:class:`~repro.obs.trace.TraceRecorder`.  This module carries the trace
across that boundary and reassembles it afterwards:

- :class:`TraceContext` — the compact, picklable propagation frame (a
  128-bit trace id, the remote parent's span id, the tenant, an
  optional absolute deadline).  It rides on
  :class:`~repro.serve.protocol.ShardRequest` and on
  :class:`~repro.storage.options.ExecOptions` (``trace_context``), so
  worker-side engine spans root under the front door's dispatch span
  instead of orphaning.
- :func:`new_trace_id` — a fresh random 128-bit trace id for request
  roots (span ids stay recorder-local; see ``_span_id_seed``).
- :func:`stitch_traces` — merges per-worker span dumps into one tree
  per front-door request.  Batching shares work across requests: the
  batch span parents under the *first* request in the batch and carries
  ``links`` to the others; stitching grafts a copy of the shared
  subtree under every linked request (marked ``via_link``), so each
  request's tree is complete on its own.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, replace

#: Span names emitted by the storage engine (worker side).  The stitch
#: ratio — the acceptance gate for distributed tracing — is computed
#: over these: what fraction of engine spans ended up under a
#: front-door ``request`` root?
ENGINE_SPAN_NAMES = frozenset({
    "workload", "query", "route", "scan", "decode", "cache", "retry",
    "failover", "repair", "buffer_scan",
})

#: Roots emitted by background subsystems (compaction, anti-entropy,
#: recalibration, reselection).  Never expected under a request tree;
#: reported separately so a slow p99 can be eyeballed against them.
BACKGROUND_SPAN_NAMES = frozenset({
    "compact", "seal-windows", "rebuild", "snapshot", "anti-entropy",
    "bg_recalibrate", "bg_reselect",
})


def new_trace_id() -> int:
    """A fresh random 128-bit trace id (never zero).  Request roots at
    the front door get one of these; child spans inherit it through
    :class:`TraceContext` propagation."""
    value = int.from_bytes(os.urandom(16), "big")
    return value or 1


@dataclass(frozen=True, slots=True)
class TraceContext:
    """The wire-format trace frame carried across process boundaries.

    ``deadline`` is absolute ``time.time()`` seconds (wall clock — the
    only clock spawn workers share with the front door); None means no
    deadline.  Frozen and built from plain scalars, so it pickles
    across the spawn boundary unchanged.
    """

    trace_id: int
    parent_span_id: int | None = None
    tenant: str = ""
    deadline: float | None = None

    def child(self, parent_span_id: int) -> "TraceContext":
        """The context a span hands to *its* remote children."""
        return replace(self, parent_span_id=parent_span_id)

    def expired(self, now: float | None = None) -> bool:
        if self.deadline is None:
            return False
        return (time.time() if now is None else now) > self.deadline

    def remaining(self, now: float | None = None) -> float | None:
        if self.deadline is None:
            return None
        return self.deadline - (time.time() if now is None else now)

    def to_dict(self) -> dict:
        return {"trace_id": self.trace_id,
                "parent_span_id": self.parent_span_id,
                "tenant": self.tenant, "deadline": self.deadline}

    @classmethod
    def from_dict(cls, data: dict) -> "TraceContext":
        return cls(trace_id=int(data["trace_id"]),
                   parent_span_id=data.get("parent_span_id"),
                   tenant=str(data.get("tenant", "")),
                   deadline=data.get("deadline"))


def load_spans_jsonl(path: str) -> list[dict]:
    """Span dicts from one recorder dump (one JSON object per line).
    Tolerates a torn final line — a worker killed mid-write loses at
    most the span being written."""
    with open(path, encoding="utf-8") as f:
        lines = [line.strip() for line in f]
    lines = [line for line in lines if line]
    spans: list[dict] = []
    for i, line in enumerate(lines):
        try:
            spans.append(json.loads(line))
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                break  # torn tail: at most the span being written
            raise ValueError(
                f"{path}: corrupt span record on line {i + 1} "
                "(not a torn tail)") from None
    return spans


@dataclass
class StitchResult:
    """The reassembled forest plus the bookkeeping the acceptance gate
    needs.  ``requests`` are the trees rooted at front-door ``request``
    spans (grafts applied); ``background`` the background-subsystem
    roots; ``trees`` everything, orphans included (lifted to roots and
    marked ``orphan``)."""

    trees: list[dict]
    requests: list[dict]
    background: list[dict]
    orphans: int
    total_spans: int
    engine_spans: int
    stitched_engine_spans: int

    @property
    def engine_stitch_ratio(self) -> float:
        """Fraction of worker-side engine spans reachable from a
        front-door ``request`` root; 1.0 when there were none."""
        if self.engine_spans == 0:
            return 1.0
        return self.stitched_engine_spans / self.engine_spans

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "background": self.background,
            "trees": self.trees,
            "stats": {
                "orphans": self.orphans,
                "total_spans": self.total_spans,
                "engine_spans": self.engine_spans,
                "stitched_engine_spans": self.stitched_engine_spans,
                "engine_stitch_ratio": self.engine_stitch_ratio,
            },
        }


def _copy_subtree(node: dict) -> dict:
    out = {k: v for k, v in node.items() if k != "children"}
    out["attrs"] = dict(node.get("attrs") or {})
    out["children"] = [_copy_subtree(c) for c in node.get("children", [])]
    return out


def _is_engine_span(span: dict) -> bool:
    if span.get("name") not in ENGINE_SPAN_NAMES:
        return False
    # When dumps carry a "worker" tag (the server adds one), only
    # worker-side spans count toward the stitch ratio; untagged dumps
    # count every engine span.
    worker = span.get("worker")
    return worker is None or worker != "frontdoor"


def stitch_traces(spans: list[dict]) -> StitchResult:
    """Reassemble span dicts from any number of recorder dumps into
    trees.

    Parent/child edges follow ``parent_id`` (span ids are globally
    unique — each recorder counts from its own random 63-bit offset).
    Spans whose parent never arrived (ring-buffer eviction, a worker's
    dump lost) are lifted to roots and marked ``orphan``.  Spans
    carrying ``attrs.links`` (``[[trace_id, span_id], ...]``) get a
    deep copy of their subtree grafted under every linked span, marked
    ``via_link`` — that is how a batch shared by N requests appears in
    all N trees.
    """
    nodes: dict[int, dict] = {}
    for span in spans:
        node = dict(span)
        node["attrs"] = dict(span.get("attrs") or {})
        node["children"] = []
        nodes[node["span_id"]] = node

    roots: list[dict] = []
    orphans = 0
    for node in nodes.values():
        parent_id = node.get("parent_id")
        if parent_id is None:
            roots.append(node)
        elif parent_id in nodes:
            nodes[parent_id]["children"].append(node)
        else:
            node["orphan"] = True
            orphans += 1
            roots.append(node)

    # Graft linked subtrees after the forest is built, so copies carry
    # their full subtree.  The batch subtree never contains the request
    # spans it links to (they are its ancestors), so no cycles.
    for node in list(nodes.values()):
        links = node["attrs"].get("links") or ()
        for link in links:
            target = nodes.get(int(link[1]))
            if target is None or target is node:
                continue
            # The copy keeps its original trace_id — the graft is a
            # borrowed view of another trace's subtree, and the
            # ``via_link`` marker is what exempts it from the parent's
            # trace-consistency check.
            graft = _copy_subtree(node)
            graft["via_link"] = True
            target["children"].append(graft)

    def _sort(node: dict) -> None:
        node["children"].sort(key=lambda c: (c.get("start") or 0.0,
                                             c["span_id"]))
        for child in node["children"]:
            _sort(child)

    roots.sort(key=lambda n: (n.get("start") or 0.0, n["span_id"]))
    for root in roots:
        _sort(root)

    requests = [r for r in roots if r.get("name") == "request"]
    background = [r for r in roots
                  if r.get("name") in BACKGROUND_SPAN_NAMES]

    stitched_ids: set[int] = set()

    def _collect(node: dict) -> None:
        if _is_engine_span(node):
            stitched_ids.add(node["span_id"])
        for child in node["children"]:
            _collect(child)

    for req in requests:
        _collect(req)

    engine_ids = {n["span_id"] for n in nodes.values()
                  if _is_engine_span(n)}
    return StitchResult(
        trees=roots,
        requests=requests,
        background=background,
        orphans=orphans,
        total_spans=len(nodes),
        engine_spans=len(engine_ids),
        stitched_engine_spans=len(stitched_ids & engine_ids),
    )


def stitch_files(paths) -> StitchResult:
    """:func:`stitch_traces` over the concatenation of JSONL dumps."""
    spans: list[dict] = []
    for path in paths:
        spans.extend(load_spans_jsonl(path))
    return stitch_traces(spans)


def validate_trace_tree(node: dict, _parent: dict | None = None) -> None:
    """Structural schema check for one stitched tree; raises ValueError
    on the first violation.  Every node carries the span fields; every
    child either parents on this node (``parent_id`` matches, same
    ``trace_id``) or is an explicit graft/orphan."""
    for field_name in ("trace_id", "span_id", "name", "start"):
        if field_name not in node:
            raise ValueError(f"span missing {field_name!r}: {node!r}")
    if not isinstance(node.get("children"), list):
        raise ValueError(f"span {node['span_id']} has no children list")
    for child in node["children"]:
        if child.get("via_link"):
            validate_trace_tree(child, node)
            continue
        if child.get("parent_id") != node["span_id"]:
            raise ValueError(
                f"child {child.get('span_id')} of {node['span_id']} has "
                f"parent_id {child.get('parent_id')}")
        if child.get("trace_id") != node["trace_id"]:
            raise ValueError(
                f"child {child.get('span_id')} crosses traces: "
                f"{child.get('trace_id')} != {node['trace_id']}")
        validate_trace_tree(child, node)

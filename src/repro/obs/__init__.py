"""Observability for the BLOT engine: metrics, traces, drift detection.

The paper's serving loop is *predict → route → scan → calibrate*
(Eq. 6–7 predicts, the selector routes, Section IV-B calibrates from
measured scan times).  This package is the instrumentation of that
loop:

- :class:`MetricsRegistry` — thread-safe counters / gauges / histograms
  (fixed bucket boundaries) that the engine, the decoded-partition
  cache, the fault injector and the selection solvers publish into;
- :class:`TraceRecorder` — per-query spans (``route`` →
  ``scan[partition]`` → ``decode`` / ``cache`` / ``retry`` /
  ``failover`` / ``repair``) with parent/child structure, retained in a
  ring buffer and dumpable as JSON lines;
- :class:`DriftMonitor` — rolling (predicted Eq. 7, measured seconds)
  comparison per replica that flags when recalibration is due.

:class:`Observability` bundles the three; pass one to
:class:`~repro.storage.BlotStore` (or ``open_store``) and enable span
collection per call with ``ExecOptions(trace=True)``.  With no bundle
attached, the engine holds the no-op :data:`NULL_RECORDER` and skips
every publication — the disabled path stays on the PR 1 benchmark
budget.

This package deliberately imports nothing from the rest of ``repro``:
any layer (storage, solvers, CLI) can depend on it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.drift import DriftMonitor, DriftStatus, relative_error
from repro.obs.metrics import (
    DEFAULT_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    NULL_RECORDER,
    NullTraceRecorder,
    Span,
    TraceRecorder,
)


@dataclass
class Observability:
    """One engine's telemetry bundle: registry + tracer + drift monitor.

    Construct with :meth:`create` for tuned capacities, or directly with
    pre-built components (tests inject deterministic clocks this way).
    """

    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    tracer: TraceRecorder = field(default_factory=TraceRecorder)
    drift: DriftMonitor = field(default_factory=DriftMonitor)

    @classmethod
    def create(
        cls,
        trace_capacity: int = 8192,
        drift_window: int = 64,
        drift_threshold: float = 0.5,
        drift_min_samples: int = 5,
    ) -> "Observability":
        return cls(
            metrics=MetricsRegistry(),
            tracer=TraceRecorder(capacity=trace_capacity),
            drift=DriftMonitor(window=drift_window,
                               threshold=drift_threshold,
                               min_samples=drift_min_samples),
        )

    def snapshot(self) -> dict:
        """The full telemetry picture as JSON-safe data."""
        return {
            "metrics": self.metrics.snapshot(),
            "drift": self.drift.snapshot(),
            "trace": {
                "recorded": self.tracer.recorded,
                "retained": len(self.tracer.spans()),
                "span_counts": dict(sorted(
                    self.tracer.span_counts().items())),
            },
        }


__all__ = [
    "Counter",
    "DEFAULT_SECONDS_BUCKETS",
    "DriftMonitor",
    "DriftStatus",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullTraceRecorder",
    "Observability",
    "Span",
    "TraceRecorder",
    "relative_error",
]

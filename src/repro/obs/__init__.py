"""Observability for the BLOT engine: metrics, traces, drift detection.

The paper's serving loop is *predict → route → scan → calibrate*
(Eq. 6–7 predicts, the selector routes, Section IV-B calibrates from
measured scan times).  This package is the instrumentation of that
loop:

- :class:`MetricsRegistry` — thread-safe counters / gauges / histograms
  (fixed bucket boundaries) that the engine, the decoded-partition
  cache, the fault injector and the selection solvers publish into;
- :class:`TraceRecorder` — per-query spans (``route`` →
  ``scan[partition]`` → ``decode`` / ``cache`` / ``retry`` /
  ``failover`` / ``repair``) with parent/child structure, retained in a
  ring buffer and dumpable as JSON lines;
- :class:`DriftMonitor` — rolling (predicted Eq. 7, measured seconds)
  comparison per replica that flags when recalibration is due;
- :class:`TimeseriesStore` / :class:`Checkpointer` — append-only
  on-disk JSONL history of registry + drift snapshots, so telemetry
  survives restarts (see :mod:`repro.obs.timeseries`);
- :class:`Recalibrator` — acts on a drift flag: harvests measured scan
  spans, re-runs the Section V-B regression, and hot-swaps the
  replica's ``ScanRate``/``ExtraTime`` behind guards, with a full
  audit trail (see :mod:`repro.obs.recalibrate`);
- :func:`build_report` / :func:`render_report_text` /
  :func:`validate_report` — the ``repro report`` operational summary
  (see :mod:`repro.obs.report`).

:class:`Observability` bundles them; pass one to
:class:`~repro.storage.BlotStore` (or ``open_store``) and enable span
collection per call with ``ExecOptions(trace=True)``.  With no bundle
attached, the engine holds the no-op :data:`NULL_RECORDER` and skips
every publication — the disabled path stays on the PR 1 benchmark
budget.

PR 10 adds the distributed layer: :class:`TraceContext` /
:func:`stitch_traces` (:mod:`repro.obs.distributed`) carry a trace
across the serving tier's process boundary and reassemble per-worker
dumps into one tree per request; :class:`QuantileSketch` gives
mergeable per-tenant/per-shard latency percentiles; and
:class:`SLOEngine` (:mod:`repro.obs.slo`) turns request outcomes into
multi-window burn-rate alerts surfaced in report schema v4.

Dependency discipline: the metrics/trace/drift/timeseries core imports
nothing from the rest of ``repro``, so any layer can depend on it
without cycles.  Two exceptions: :mod:`repro.obs.recalibrate` closes
the loop *into* :mod:`repro.costmodel`, and
:mod:`repro.obs.aggregate` raises
:class:`~repro.errors.SnapshotMergeError` from the consolidated
exception surface — both targets import nothing back, keeping the
graph acyclic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.aggregate import merge_metric_snapshots
from repro.obs.distributed import (
    StitchResult,
    TraceContext,
    load_spans_jsonl,
    new_trace_id,
    stitch_files,
    stitch_traces,
    validate_trace_tree,
)
from repro.obs.drift import DriftMonitor, DriftStatus, relative_error
from repro.obs.metrics import (
    DEFAULT_SECONDS_BUCKETS,
    SKETCH_QUANTILES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    QuantileSketch,
)
from repro.obs.recalibrate import CalibrationUpdate, Recalibrator
from repro.obs.slo import (
    DEFAULT_WINDOWS,
    BurnWindow,
    SLOEngine,
    SLOStatus,
    SLObjective,
    parse_slo_config,
)
from repro.obs.reselection import ReselectionUpdate
from repro.obs.report import (
    REPORT_SCHEMA_VERSION,
    build_report,
    render_report_text,
    validate_report,
)
from repro.obs.timeseries import Checkpointer, TimeseriesStore
from repro.obs.trace import (
    NULL_RECORDER,
    NullTraceRecorder,
    Span,
    TraceRecorder,
)


@dataclass
class Observability:
    """One engine's telemetry bundle: registry + tracer + drift monitor.

    Construct with :meth:`create` for tuned capacities, or directly with
    pre-built components (tests inject deterministic clocks this way).
    """

    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    tracer: TraceRecorder = field(default_factory=TraceRecorder)
    drift: DriftMonitor = field(default_factory=DriftMonitor)
    #: Optional closed-loop pieces, attached after construction (the
    #: recalibrator needs the engine's :class:`CostModel`, which does
    #: not exist yet when the bundle is built).
    recalibrator: Recalibrator | None = None
    checkpointer: Checkpointer | None = None
    #: Duck-typed reselection controller (see
    #: :class:`repro.core.reselect.ReselectionController` — held as an
    #: opaque attribute so ``obs`` never imports ``core``): anything
    #: with ``observe(query)`` and ``maybe_reselect()``.
    reselector: object | None = None

    @classmethod
    def create(
        cls,
        trace_capacity: int = 8192,
        drift_window: int = 64,
        drift_threshold: float = 0.5,
        drift_min_samples: int = 5,
    ) -> "Observability":
        return cls(
            metrics=MetricsRegistry(),
            tracer=TraceRecorder(capacity=trace_capacity),
            drift=DriftMonitor(window=drift_window,
                               threshold=drift_threshold,
                               min_samples=drift_min_samples),
        )

    def attach_recalibrator(self, cost_model, **guards) -> Recalibrator:
        """Build and attach a :class:`Recalibrator` wired to this
        bundle's drift monitor, tracer and registry.  ``guards`` are
        forwarded (``min_samples``, ``max_step_factor``, ``dry_run``,
        ``timeseries``)."""
        self.recalibrator = Recalibrator(
            cost_model, self.drift, self.tracer,
            metrics=self.metrics, **guards)
        return self.recalibrator

    def attach_checkpointer(self, store: TimeseriesStore,
                            interval_seconds: float = 60.0,
                            **kwargs) -> Checkpointer:
        """Build and attach a :class:`Checkpointer` persisting this
        bundle's snapshots into ``store``."""
        self.checkpointer = Checkpointer(
            self, store, interval_seconds=interval_seconds, **kwargs)
        return self.checkpointer

    def attach_reselector(self, controller):
        """Attach a reselection controller (duck-typed: ``observe`` +
        ``maybe_reselect``).  The engine then feeds served queries into
        it and offers it a shot after every served call."""
        self.reselector = controller
        return controller

    def observe_query(self, query) -> None:
        """Engine hook: feed one served query to the attached
        reselection controller.  No-op without one."""
        if self.reselector is not None:
            self.reselector.observe(query)

    def maybe_reselect(self):
        """Engine hook: give the reselection controller (when attached)
        a chance to act on accumulated workload drift.  No-op without
        one."""
        if self.reselector is None:
            return None
        return self.reselector.maybe_reselect()

    def maybe_recalibrate(self, replica_name: str,
                          encoding_name: str) -> "CalibrationUpdate | None":
        """Engine hook: give the recalibrator (when attached) a chance
        to act on ``replica_name``'s drift flag.  No-op without one."""
        if self.recalibrator is None:
            return None
        return self.recalibrator.maybe_recalibrate(replica_name,
                                                   encoding_name)

    def maybe_checkpoint(self, force: bool = False) -> int | None:
        """Engine hook: persist a snapshot if the schedule says so."""
        if self.checkpointer is None:
            return None
        return self.checkpointer.maybe_checkpoint(force=force)

    def snapshot(self) -> dict:
        """The full telemetry picture as JSON-safe data."""
        return {
            "metrics": self.metrics.snapshot(),
            "drift": self.drift.snapshot(),
            "trace": {
                "recorded": self.tracer.recorded,
                "retained": len(self.tracer.spans()),
                "span_counts": dict(sorted(
                    self.tracer.span_counts().items())),
            },
        }


__all__ = [
    "BurnWindow",
    "CalibrationUpdate",
    "Checkpointer",
    "Counter",
    "DEFAULT_SECONDS_BUCKETS",
    "DEFAULT_WINDOWS",
    "DriftMonitor",
    "DriftStatus",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullTraceRecorder",
    "Observability",
    "QuantileSketch",
    "REPORT_SCHEMA_VERSION",
    "Recalibrator",
    "ReselectionUpdate",
    "SKETCH_QUANTILES",
    "SLOEngine",
    "SLOStatus",
    "SLObjective",
    "Span",
    "StitchResult",
    "TimeseriesStore",
    "TraceContext",
    "TraceRecorder",
    "build_report",
    "load_spans_jsonl",
    "merge_metric_snapshots",
    "new_trace_id",
    "parse_slo_config",
    "relative_error",
    "render_report_text",
    "stitch_files",
    "stitch_traces",
    "validate_report",
]

"""Persistent metric history: an append-only JSONL snapshot store.

The live :class:`~repro.obs.MetricsRegistry` dies with the process; the
serving loop the paper describes (predict → route → scan → calibrate)
runs for weeks.  :class:`TimeseriesStore` is the durable half of the
telemetry subsystem: every checkpoint is one JSON line with a
monotonically increasing sequence number, so history survives restarts
and ``repro report`` can show deltas across process lifetimes.

Design constraints:

- **Append-only**: one ``write + flush`` per entry; a crash can lose at
  most the entry being written, never corrupt history (a torn final
  line is detected and ignored on reopen).
- **Monotonic sequence numbers**: recovered from the last intact line
  on reopen, so numbering continues across restarts — the restart
  itself is visible as a seq gap-free stream with a new process start
  entry.
- **Bounded size**: when the file exceeds ``retention`` entries, the
  oldest are compacted into *rollup* entries (one per ``rollup_every``
  raw entries, keeping first/last/count), written atomically via a
  temp file + ``os.replace``.  Earlier rollups fold into later ones on
  subsequent compactions, so the file length stays O(``retention``).
  Raw recent history stays exact; ancient history degrades to
  summaries, the standard monitoring-system downsampling model.

:class:`Checkpointer` drives the schedule: it snapshots a bundle's
registry and drift monitor into the store on a deterministic clock
(injectable, like :class:`~repro.obs.TraceRecorder`'s), so tests can
force checkpoints without wall-clock sleeps.
"""

from __future__ import annotations

import json
import os
import threading
import time

__all__ = ["TimeseriesStore", "Checkpointer"]


class TimeseriesStore:
    """Append-only on-disk history of telemetry entries.

    Each entry is one JSON line ``{"seq", "t", "kind", "data"}``.
    ``kind`` namespaces the stream — ``"snapshot"`` for registry/drift
    checkpoints, ``"calibration"`` for recalibration audit records,
    ``"rollup"`` for downsampled summaries — and readers filter on it.

    ``retention`` bounds the number of lines kept on disk; when an
    append pushes past it, the oldest non-rollup entries are folded
    into rollups of ``rollup_every`` entries each.  ``retention=None``
    disables compaction (tests, short-lived runs).
    """

    def __init__(self, path: str, retention: int | None = 512,
                 rollup_every: int = 8):
        if retention is not None and retention < 4:
            raise ValueError("retention must be >= 4 (or None to disable)")
        if rollup_every < 2:
            raise ValueError("rollup_every must be >= 2")
        self.path = str(path)
        self.retention = retention
        self.rollup_every = int(rollup_every)
        self._lock = threading.Lock()
        self._seq, self._count = self._recover()

    # -- recovery ------------------------------------------------------------

    def _recover(self) -> tuple[int, int]:
        """Scan the existing file (if any) for the last intact line's
        sequence number and the total intact line count.  A file that
        ends mid-line (crash during a write) is sealed with a newline so
        the next append starts a fresh line instead of concatenating
        onto the torn fragment."""
        last_seq, count = 0, 0
        try:
            with open(self.path, "rb") as f:
                f.seek(0, os.SEEK_END)
                if f.tell() > 0:
                    f.seek(-1, os.SEEK_END)
                    if f.read(1) != b"\n":
                        with open(self.path, "a", encoding="utf-8") as out:
                            out.write("\n")
        except FileNotFoundError:
            pass
        try:
            with open(self.path, "r", encoding="utf-8") as f:
                for line in f:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                        last_seq = max(last_seq, int(entry["seq"]))
                        count += 1
                    except (ValueError, KeyError, TypeError):
                        continue  # torn/corrupt line: skip, keep history
        except FileNotFoundError:
            pass
        return last_seq, count

    # -- writing -------------------------------------------------------------

    def append(self, kind: str, data: dict, t: float | None = None) -> int:
        """Append one entry; returns its sequence number."""
        if t is None:
            t = time.time()
        with self._lock:
            self._seq += 1
            entry = {"seq": self._seq, "t": float(t), "kind": str(kind),
                     "data": data}
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as f:
                f.write(json.dumps(entry, sort_keys=True) + "\n")
                f.flush()
            self._count += 1
            if self.retention is not None and self._count > self.retention:
                self._compact_locked()
            return entry["seq"]

    def _compact_locked(self) -> None:
        """Fold the oldest raw entries into rollup summaries until the
        file is back under ``retention`` lines.  Caller holds the lock."""
        entries = self._read_all()
        keep_raw = max(self.retention // 2, 1) if self.retention else 1
        old, recent = entries[:-keep_raw], entries[-keep_raw:]
        # Existing rollups fold in like raw entries (a rollup of
        # rollups) — carrying them through untouched would let them
        # accumulate one per compaction, unbounded.
        rollups = [self._rollup(old[i:i + self.rollup_every])
                   for i in range(0, len(old), self.rollup_every)]
        merged = rollups + recent
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as f:
            for entry in merged:
                f.write(json.dumps(entry, sort_keys=True) + "\n")
            f.flush()
        os.replace(tmp, self.path)
        self._count = len(merged)

    @staticmethod
    def _rollup(batch: list[dict]) -> dict:
        """Summarize a batch of raw entries: span, count, kinds, and the
        first/last payloads (enough to compute deltas over the span)."""
        kinds = sorted({e["kind"] for e in batch})
        return {
            "seq": batch[-1]["seq"],
            "t": batch[-1]["t"],
            "kind": "rollup",
            "data": {
                "first_seq": batch[0]["seq"],
                "last_seq": batch[-1]["seq"],
                "first_t": batch[0]["t"],
                "last_t": batch[-1]["t"],
                "count": len(batch),
                "kinds": kinds,
                "first": batch[0]["data"],
                "last": batch[-1]["data"],
            },
        }

    # -- reading -------------------------------------------------------------

    def _read_all(self) -> list[dict]:
        entries: list[dict] = []
        try:
            with open(self.path, "r", encoding="utf-8") as f:
                for line in f:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                    except ValueError:
                        continue
                    if not isinstance(entry, dict) or "seq" not in entry:
                        continue
                    entries.append(entry)
        except FileNotFoundError:
            pass
        entries.sort(key=lambda e: e["seq"])
        return entries

    def entries(self, kind: str | None = None) -> list[dict]:
        """All intact entries in sequence order, optionally filtered by
        ``kind`` (rollup entries only match ``kind="rollup"``)."""
        with self._lock:
            all_entries = self._read_all()
        if kind is None:
            return all_entries
        return [e for e in all_entries if e["kind"] == kind]

    @property
    def last_seq(self) -> int:
        with self._lock:
            return self._seq

    def __len__(self) -> int:
        with self._lock:
            return self._count


class Checkpointer:
    """Periodically persists an :class:`~repro.obs.Observability`
    bundle's registry + drift snapshots into a :class:`TimeseriesStore`.

    The schedule is driven by an injectable monotonic ``clock`` (default
    :func:`time.monotonic`), mirroring :class:`~repro.obs.TraceRecorder`:
    deterministic tests pass a manual clock and never sleep.  Call
    :meth:`maybe_checkpoint` from any convenient point in the serving
    loop (the engine calls it after each workload); it writes a
    ``"snapshot"`` entry when ``interval_seconds`` have elapsed since
    the last one, or always with ``force=True``.
    """

    def __init__(self, obs, store: TimeseriesStore,
                 interval_seconds: float = 60.0, clock=time.monotonic):
        if interval_seconds < 0:
            raise ValueError("interval_seconds must be >= 0")
        self.obs = obs
        self.store = store
        self.interval_seconds = float(interval_seconds)
        self._clock = clock
        self._last: float | None = None
        self._lock = threading.Lock()

    def maybe_checkpoint(self, force: bool = False) -> int | None:
        """Write a snapshot entry if due; returns its seq, else None."""
        now = self._clock()
        with self._lock:
            due = (force or self._last is None
                   or now - self._last >= self.interval_seconds)
            if not due:
                return None
            self._last = now
        payload = {
            "metrics": self.obs.metrics.snapshot(),
            "drift": self.obs.drift.snapshot(),
        }
        return self.store.append("snapshot", payload)

"""Per-tenant SLO objectives with multi-window burn-rate alerting.

The serving tier records one event per front-door request — ``(time,
ok, latency)`` — and this module turns those into the operator-facing
question: *is tenant X's error budget burning fast enough to page?*

Objectives are declarative (:func:`parse_slo_config`): ``availability``
(fraction of requests that must succeed) and ``latency_pNN_ms``
(quantile-threshold objectives — a request slower than the threshold
spends error budget exactly like a failed one).  Evaluation follows
the SRE multi-window burn-rate recipe: an alert fires only when *every*
window's burn rate (bad fraction ÷ error budget) exceeds its
threshold — the fast window (5 min, burn > 14.4) makes alerts prompt,
the slow window (1 h, burn > 6) keeps a brief blip from paging.
Firing/resolved transitions land in a bounded audit trail, the
``repro_slo_*`` counters, and the timeseries store (kind ``"slo"``),
and surface in report schema v4.
"""

from __future__ import annotations

import re
import threading
import time
from collections import deque
from dataclasses import dataclass, replace

__all__ = [
    "BurnWindow",
    "DEFAULT_WINDOWS",
    "SLOEngine",
    "SLOStatus",
    "SLObjective",
    "parse_slo_config",
]


@dataclass(frozen=True, slots=True)
class BurnWindow:
    """One evaluation window: events from the last ``seconds`` fire
    when their burn rate exceeds ``max_burn``."""

    seconds: float
    max_burn: float

    def to_dict(self) -> dict:
        return {"seconds": self.seconds, "max_burn": self.max_burn}


#: The classic SRE fast/slow pair: a 5-minute window at 14.4× burn
#: (2% of a 30-day budget in an hour) and a 1-hour window at 6× burn.
DEFAULT_WINDOWS: tuple[BurnWindow, ...] = (
    BurnWindow(seconds=300.0, max_burn=14.4),
    BurnWindow(seconds=3600.0, max_burn=6.0),
)


@dataclass(frozen=True, slots=True)
class SLObjective:
    """One declarative objective.  ``tenant`` may be ``"*"`` — a
    default applied to every tenant without explicit objectives.
    ``target`` is the required good fraction in (0, 1); for
    ``kind="latency"`` a request is bad when it fails *or* takes longer
    than ``latency_seconds``."""

    tenant: str
    kind: str  # "availability" | "latency"
    target: float
    latency_seconds: float | None = None

    def __post_init__(self):
        if self.kind not in ("availability", "latency"):
            raise ValueError(f"unknown objective kind {self.kind!r}")
        if not 0.0 < self.target < 1.0:
            raise ValueError("target must be a fraction in (0, 1)")
        if self.kind == "latency" and (
                self.latency_seconds is None or self.latency_seconds <= 0):
            raise ValueError("latency objectives need latency_seconds > 0")

    @property
    def budget(self) -> float:
        """The error budget: the bad fraction the target tolerates."""
        return 1.0 - self.target

    @property
    def name(self) -> str:
        if self.kind == "availability":
            return f"availability({self.target * 100:g}%)"
        return (f"latency_p{self.target * 100:g}"
                f"<{self.latency_seconds * 1000:g}ms")

    def bad(self, ok: bool, latency_seconds: float) -> bool:
        if self.kind == "availability":
            return not ok
        return (not ok) or latency_seconds > self.latency_seconds

    def to_dict(self) -> dict:
        return {"tenant": self.tenant, "kind": self.kind,
                "target": self.target, "name": self.name,
                "latency_seconds": self.latency_seconds}


_LATENCY_KEY = re.compile(r"^latency_p(\d+(?:\.\d+)?)_ms$")


def parse_slo_config(data: dict) -> tuple[SLObjective, ...]:
    """Objectives from declarative config::

        {"tenants": {"*":       {"availability": 0.999,
                                 "latency_p99_ms": 250},
                     "fleet-a": {"latency_p95_ms": 100}}}

    ``availability`` values are good fractions; ``latency_pNN_ms`` keys
    set a latency threshold at percentile NN.  A tenant with explicit
    objectives opts out of the ``"*"`` defaults entirely.
    """
    tenants = data.get("tenants")
    if not isinstance(tenants, dict):
        raise ValueError('SLO config needs a "tenants" mapping')
    objectives: list[SLObjective] = []
    for tenant, spec in tenants.items():
        if not isinstance(spec, dict):
            raise ValueError(f"tenant {tenant!r}: spec must be a mapping")
        for key, value in spec.items():
            if key == "availability":
                objectives.append(SLObjective(
                    tenant=tenant, kind="availability",
                    target=float(value)))
                continue
            m = _LATENCY_KEY.match(key)
            if m is None:
                raise ValueError(
                    f"tenant {tenant!r}: unknown objective key {key!r}")
            objectives.append(SLObjective(
                tenant=tenant, kind="latency",
                target=float(m.group(1)) / 100.0,
                latency_seconds=float(value) / 1000.0))
    if not objectives:
        raise ValueError("SLO config declares no objectives")
    return tuple(objectives)


@dataclass(frozen=True, slots=True)
class _Event:
    t: float
    ok: bool
    latency: float


@dataclass(frozen=True, slots=True)
class SLOStatus:
    """One (tenant, objective) evaluation: per-window burn rates plus
    the AND-of-windows firing verdict."""

    tenant: str
    objective: SLObjective
    windows: tuple[dict, ...]
    firing: bool

    def to_dict(self) -> dict:
        return {"tenant": self.tenant,
                "objective": self.objective.name,
                "kind": self.objective.kind,
                "target": self.objective.target,
                "windows": [dict(w) for w in self.windows],
                "firing": self.firing}


class SLOEngine:
    """Records request outcomes and evaluates burn-rate alerts.

    ``clock`` is injectable (monotonic seconds) for deterministic
    tests; ``metrics`` (a :class:`~repro.obs.MetricsRegistry`) and
    ``timeseries`` (a :class:`~repro.obs.TimeseriesStore`) are optional
    sinks for evaluation counters and the alert audit trail.
    ``min_events`` keeps a window from firing off a handful of events.
    """

    def __init__(self, objectives, windows: tuple[BurnWindow, ...]
                 = DEFAULT_WINDOWS, clock=time.monotonic,
                 metrics=None, timeseries=None, min_events: int = 10,
                 capacity: int = 65536, audit_capacity: int = 256):
        self.objectives = tuple(objectives)
        if not self.objectives:
            raise ValueError("SLOEngine needs at least one objective")
        self.windows = tuple(windows)
        self.min_events = int(min_events)
        self._clock = clock
        self._metrics = metrics
        self._timeseries = timeseries
        self._events: dict[str, deque[_Event]] = {}
        self._capacity = int(capacity)
        self._firing: set[tuple[str, str]] = set()
        self._audit: deque[dict] = deque(maxlen=int(audit_capacity))
        self._last_statuses: tuple[SLOStatus, ...] = ()
        self._lock = threading.Lock()

    # -- recording ---------------------------------------------------------

    def record(self, tenant: str, ok: bool, latency_seconds: float,
               t: float | None = None) -> None:
        event = _Event(t=self._clock() if t is None else float(t),
                       ok=bool(ok), latency=float(latency_seconds))
        with self._lock:
            bucket = self._events.get(tenant)
            if bucket is None:
                bucket = self._events[tenant] = deque(
                    maxlen=self._capacity)
            bucket.append(event)

    # -- objective resolution ----------------------------------------------

    def objectives_for(self, tenant: str) -> tuple[SLObjective, ...]:
        explicit = tuple(o for o in self.objectives if o.tenant == tenant)
        if explicit:
            return explicit
        return tuple(replace(o, tenant=tenant) for o in self.objectives
                     if o.tenant == "*")

    # -- evaluation --------------------------------------------------------

    def evaluate(self, t: float | None = None) -> tuple[SLOStatus, ...]:
        """Evaluate every (tenant, objective) pair against every window;
        records firing/resolved *transitions* into the audit trail, the
        metrics registry and the timeseries store, so re-evaluating a
        still-firing alert does not re-page."""
        now = self._clock() if t is None else float(t)
        with self._lock:
            events = {tenant: list(bucket)
                      for tenant, bucket in self._events.items()}
        tenants = set(events) | {o.tenant for o in self.objectives
                                 if o.tenant != "*"}
        statuses: list[SLOStatus] = []
        for tenant in sorted(tenants):
            tenant_events = events.get(tenant, [])
            for objective in self.objectives_for(tenant):
                windows: list[dict] = []
                firing = True
                for window in self.windows:
                    recent = [e for e in tenant_events
                              if e.t >= now - window.seconds]
                    bad = sum(1 for e in recent
                              if objective.bad(e.ok, e.latency))
                    n = len(recent)
                    bad_fraction = bad / n if n else 0.0
                    burn = bad_fraction / objective.budget
                    window_firing = (n >= self.min_events
                                     and burn > window.max_burn)
                    firing = firing and window_firing
                    windows.append({
                        "seconds": window.seconds,
                        "max_burn": window.max_burn,
                        "events": n,
                        "bad": bad,
                        "bad_fraction": bad_fraction,
                        "burn_rate": burn,
                        "firing": window_firing,
                    })
                statuses.append(SLOStatus(
                    tenant=tenant, objective=objective,
                    windows=tuple(windows), firing=firing))
        with self._lock:
            for status in statuses:
                self._transition_locked(status, now)
            self._last_statuses = tuple(statuses)
        if self._metrics is not None:
            self._metrics.counter("repro_slo_evaluations_total").inc()
        return tuple(statuses)

    def _transition_locked(self, status: SLOStatus, now: float) -> None:
        key = (status.tenant, status.objective.name)
        if status.firing and key not in self._firing:
            self._firing.add(key)
            self._record_transition("firing", status, now)
        elif not status.firing and key in self._firing:
            self._firing.discard(key)
            self._record_transition("resolved", status, now)

    def _record_transition(self, action: str, status: SLOStatus,
                           now: float) -> None:
        entry = {"action": action, "tenant": status.tenant,
                 "objective": status.objective.name,
                 "kind": status.objective.kind,
                 "target": status.objective.target,
                 "burn_rates": [w["burn_rate"] for w in status.windows],
                 "t": now}
        self._audit.append(entry)
        if action == "firing" and self._metrics is not None:
            self._metrics.counter(
                "repro_slo_alerts_total",
                labels={"tenant": status.tenant,
                        "objective": status.objective.name}).inc()
        if self._timeseries is not None:
            self._timeseries.append("slo", entry)

    # -- inspection --------------------------------------------------------

    @property
    def firing(self) -> tuple[tuple[str, str], ...]:
        """Currently-firing ``(tenant, objective_name)`` pairs."""
        with self._lock:
            return tuple(sorted(self._firing))

    def status_dicts(self) -> list[dict]:
        """The last evaluation's statuses as plain data (empty before
        the first :meth:`evaluate`)."""
        with self._lock:
            statuses = self._last_statuses
        return [s.to_dict() for s in statuses]

    def audit_dicts(self) -> list[dict]:
        with self._lock:
            return [dict(e) for e in self._audit]

    def objective_dicts(self) -> list[dict]:
        return [o.to_dict() for o in self.objectives]

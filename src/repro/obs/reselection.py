"""Audit record for workload-drift-triggered replica reselection.

The selection ``R*`` is optimal for the workload it was solved against
(Eq. 1-5); when the live query mix drifts away from that workload the
incumbent set silently stops being the right one.  The
:class:`~repro.core.reselect.ReselectionController` closes that loop —
this module holds only the *audit side* of it, mirroring
:class:`~repro.obs.recalibrate.CalibrationUpdate`:

- :class:`ReselectionUpdate` — one frozen, JSON-safe record of a
  reselection decision (applied, rejected, dry-run, or skipped), with
  enough detail to replay the decision offline: the measured workload
  divergence, the incumbent and candidate sets with their Eq. 5
  objectives, what was built and retired, and the observed workload
  itself (so a restarted controller can re-seed its baseline from the
  persisted history).

The decision logic lives in :mod:`repro.core.reselect`; keeping the
record here preserves the package's dependency discipline (``obs``
never imports ``core``) while letting the operational report and the
timeseries history speak the same schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ReselectionUpdate"]


@dataclass(frozen=True, slots=True)
class ReselectionUpdate:
    """One audited reselection decision.

    ``observed`` carries the grouped observed workload as
    ``[width, height, duration, weight]`` rows — the baseline the next
    epoch's drift is measured against, persisted so the anchor survives
    restarts.
    """

    #: Monotonic reselection epoch (0 = the initially deployed set).
    epoch: int
    #: ``"applied"`` | ``"rejected"`` | ``"dry-run"`` | ``"skipped"``
    action: str
    #: Why a non-applied decision was taken; None when applied.
    reason: str | None
    #: Jensen-Shannon divergence in [0, 1] between the baseline and the
    #: observed workload's grouped weight distributions.
    divergence: float
    drift_threshold: float
    #: Queries in the observation window the decision was made from.
    observed_queries: int
    incumbent: tuple[str, ...]
    incumbent_cost: float
    candidate: tuple[str, ...]
    candidate_cost: float
    #: Relative Eq. 5 improvement ``(incumbent - candidate) / incumbent``.
    improvement: float
    built: tuple[str, ...]
    retired: tuple[str, ...]
    #: Partial replicas the pricing pass would have picked (advisory —
    #: partials are never physically installed, see ``docs/adaptivity.md``).
    partial_advisory: tuple[str, ...]
    storage_used: float
    budget: float
    solver: str
    #: Candidate pool size the warm solve ran over.
    n_pool: int
    #: Grouped observed workload rows ``[w, h, t, weight]``.
    observed: tuple[tuple[float, float, float, float], ...] = field(
        default=())

    def to_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "action": self.action,
            "reason": self.reason,
            "divergence": self.divergence,
            "drift_threshold": self.drift_threshold,
            "observed_queries": self.observed_queries,
            "incumbent": list(self.incumbent),
            "incumbent_cost": self.incumbent_cost,
            "candidate": list(self.candidate),
            "candidate_cost": self.candidate_cost,
            "improvement": self.improvement,
            "built": list(self.built),
            "retired": list(self.retired),
            "partial_advisory": list(self.partial_advisory),
            "storage_used": self.storage_used,
            "budget": self.budget,
            "solver": self.solver,
            "n_pool": self.n_pool,
            "observed": [list(row) for row in self.observed],
        }

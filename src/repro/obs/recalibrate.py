"""Drift-triggered auto-recalibration (closing the Section V-B loop).

The paper's serving loop is *predict → route → scan → calibrate*:
Eq. 6–7 route on the calibrated ``ScanRate``/``ExtraTime`` constants and
Section V-B re-fits them by linear regression over measured scans.  The
:class:`~repro.obs.DriftMonitor` detects when the constants have gone
stale; this module acts on the flag instead of waiting for a human:

1. harvest measured ``(partition records, seconds)`` pairs from the
   :class:`~repro.obs.TraceRecorder`'s finished ``scan`` spans (cache
   hits — ``bytes == 0`` — are excluded: a hit's near-zero duration
   says nothing about scan throughput);
2. re-run the Section V-B regression
   (:func:`repro.costmodel.calibrate.fit_cost_params`) when the
   harvested partition sizes span a wide enough range to identify both
   constants, or fall back to *rescale* mode — divide ``ScanRate`` and
   multiply ``ExtraTime`` by the window's measured/predicted scale
   factor — when every partition is the same size (the common case for
   equal-count kd-tree replicas, where the regression is
   ill-conditioned);
3. hot-swap the replica's constants in the :class:`CostModel` behind a
   guard: minimum sample count, maximum step factor (a single
   recalibration may not move a constant by more than ``x``-fold), and
   a dry-run mode that audits what *would* change without applying it.

Every decision — applied, rejected, or dry-run — lands in an in-memory
audit log, in the ``repro_recalib_applied_total`` /
``repro_recalib_rejected_total`` counters, and (when a
:class:`~repro.obs.timeseries.TimeseriesStore` is attached) in the
on-disk history as a ``"calibration"`` entry, so the full trail
survives restarts.

A fit that raises (``calibrate.py`` rejects a non-positive fitted
``1/ScanRate``) is caught and counted as a rejection; the
:class:`CostModel` is swapped via
:meth:`~repro.costmodel.model.CostModel.update_params`, which replaces
both constants in one locked assignment — a failed or rejected attempt
never leaves the model half-updated.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass

from repro.costmodel.calibrate import MeasurementPoint, fit_cost_params
from repro.costmodel.model import CostModel, EncodingCostParams

__all__ = ["CalibrationUpdate", "Recalibrator"]

#: Partition-size spread (max/min harvested records) below which the
#: Section V-B regression is considered ill-conditioned and the
#: rescale fallback is used instead.  Equal-count kd partitions sit at
#: ~1.0x; the paper's measurement plan spans 40x.
MIN_FIT_SIZE_SPREAD = 1.5

#: Cap on harvested measurement points per attempt (newest kept) — the
#: regression gains nothing past a few hundred points and the tracer
#: ring can hold thousands.
MAX_HARVEST_POINTS = 512


@dataclass(frozen=True, slots=True)
class CalibrationUpdate:
    """One audited recalibration decision."""

    replica: str
    encoding: str
    #: ``"applied"`` | ``"rejected"`` | ``"dry-run"``
    action: str
    #: ``"fit"`` (full Section V-B regression) | ``"rescale"``
    #: (scale-factor fallback); None when rejected before choosing.
    mode: str | None
    reason: str | None
    old_scan_rate: float
    old_extra_time: float
    new_scan_rate: float | None
    new_extra_time: float | None
    n_samples: int
    r_squared: float | None
    clamped: bool

    def to_dict(self) -> dict:
        return {
            "replica": self.replica,
            "encoding": self.encoding,
            "action": self.action,
            "mode": self.mode,
            "reason": self.reason,
            "old_scan_rate": self.old_scan_rate,
            "old_extra_time": self.old_extra_time,
            "new_scan_rate": self.new_scan_rate,
            "new_extra_time": self.new_extra_time,
            "n_samples": self.n_samples,
            "r_squared": self.r_squared,
            "clamped": self.clamped,
        }


class Recalibrator:
    """Turns drift flags into audited :class:`CostModel` updates.

    Guards:

    - ``min_samples``: fewer harvested scan measurements than this is a
      rejection, and after any rejection the replica is on cooldown
      until ``min_samples`` *new* drift pairs arrive (no busy-looping
      on a replica that cannot currently be fixed);
    - ``max_step_factor``: one update may not move ``ScanRate`` (or a
      non-zero ``ExtraTime``) by more than this factor in either
      direction; a proposal outside the band is clamped to it and the
      update is audited with ``clamped=True``.  ``None`` disables the
      clamp (the CLI uses this when recalibrating a simulated-cluster
      model against local wall-clock, where the honest correction is
      orders of magnitude);
    - ``dry_run``: audit what would change, apply nothing.

    Thread-safe: attempts are serialized under one lock, and the
    constant swap itself happens inside
    :meth:`CostModel.update_params`'s lock.
    """

    def __init__(
        self,
        cost_model: CostModel,
        drift,
        tracer,
        *,
        min_samples: int = 8,
        max_step_factor: float | None = 32.0,
        dry_run: bool = False,
        metrics=None,
        timeseries=None,
    ):
        if min_samples < 2:
            raise ValueError("min_samples must be >= 2")
        if max_step_factor is not None and max_step_factor <= 1.0:
            raise ValueError("max_step_factor must be > 1 (or None)")
        self.cost_model = cost_model
        self.drift = drift
        self.tracer = tracer
        self.min_samples = int(min_samples)
        self.max_step_factor = max_step_factor
        self.dry_run = bool(dry_run)
        self.metrics = metrics
        self.timeseries = timeseries
        self.audit_log: list[CalibrationUpdate] = []
        self._cooldown_until: dict[str, int] = {}
        self._lock = threading.Lock()

    # -- harvesting ----------------------------------------------------------

    def harvest_points(self, replica_name: str) -> list[MeasurementPoint]:
        """Measured ``(partition records, seconds)`` pairs for one
        replica from the tracer's finished ``scan`` spans.  Cache hits
        (``bytes == 0``) are excluded — a hit never scanned anything."""
        points: list[MeasurementPoint] = []
        for span in self.tracer.spans():
            if span.name != "scan" or span.end is None:
                continue
            attrs = span.attrs
            if attrs.get("replica") != replica_name:
                continue
            records = attrs.get("records")
            if not records or not attrs.get("bytes"):
                continue
            points.append(MeasurementPoint(int(records), span.seconds))
        return points[-MAX_HARVEST_POINTS:]

    # -- the decision --------------------------------------------------------

    def maybe_recalibrate(self, replica_name: str,
                          encoding_name: str,
                          force: bool = False) -> CalibrationUpdate | None:
        """Recalibrate ``encoding_name``'s constants if ``replica_name``
        is flagged (or ``force``).  Returns the audited update, or None
        when nothing was attempted (not flagged, or on cooldown)."""
        with self._lock:
            status = self.drift.status(replica_name)
            if not force:
                if not status.flagged:
                    return None
                if self.drift.recorded < self._cooldown_until.get(
                        replica_name, 0):
                    return None
            return self._attempt_locked(replica_name, encoding_name, status)

    def _attempt_locked(self, replica_name: str, encoding_name: str,
                        status) -> CalibrationUpdate:
        # The attempt is itself a (background) span in the same stream
        # the request traces land in, so a latency blip can be lined up
        # against a concurrent recalibration.
        with self.tracer.start("bg_recalibrate", kind="background",
                               replica=replica_name,
                               encoding=encoding_name) as span:
            update = self._recalibrate_locked(replica_name, encoding_name,
                                              status)
            span.annotate(action=update.action,
                          mode=update.mode, n_samples=update.n_samples)
            return update

    def _recalibrate_locked(self, replica_name: str, encoding_name: str,
                            status) -> CalibrationUpdate:
        old = self.cost_model.params_for(encoding_name)
        points = self.harvest_points(replica_name)

        if len(points) < self.min_samples:
            return self._reject(
                replica_name, encoding_name, old, len(points),
                f"insufficient scan measurements "
                f"({len(points)} < {self.min_samples})")

        sizes = [p.partition_records for p in points]
        spread = max(sizes) / max(min(sizes), 1)
        if spread >= MIN_FIT_SIZE_SPREAD:
            mode = "fit"
            try:
                fit = fit_cost_params(points)
            except ValueError as exc:
                return self._reject(replica_name, encoding_name, old,
                                    len(points), str(exc))
            proposed = fit.params
            r_squared = fit.r_squared
        else:
            mode = "rescale"
            r_squared = None
            scale = status.scale_factor
            if not math.isfinite(scale) or scale <= 0:
                return self._reject(
                    replica_name, encoding_name, old, len(points),
                    f"rescale fallback needs a finite positive scale "
                    f"factor, got {scale!r}")
            proposed = EncodingCostParams(
                scan_rate=old.scan_rate / scale,
                extra_time=old.extra_time * scale,
            )

        proposed, clamped = self._clamp(old, proposed)
        update = CalibrationUpdate(
            replica=replica_name,
            encoding=encoding_name,
            action="dry-run" if self.dry_run else "applied",
            mode=mode,
            reason=None,
            old_scan_rate=old.scan_rate,
            old_extra_time=old.extra_time,
            new_scan_rate=proposed.scan_rate,
            new_extra_time=proposed.extra_time,
            n_samples=len(points),
            r_squared=r_squared,
            clamped=clamped,
        )
        if self.dry_run:
            # Without an applied fix the flag stays up; cool down so a
            # hook calling per-query doesn't audit the same proposal
            # hundreds of times.
            self._cooldown_until[replica_name] = (
                self.drift.recorded + self.min_samples)
        else:
            self.cost_model.update_params(encoding_name, proposed)
            # Hysteresis: the stale-model pairs that raised the flag are
            # obsolete now; drop them so the flag clears immediately and
            # the fresh window judges the corrected constants.
            self.drift.clear_replica(replica_name)
            self._count("repro_recalib_applied_total")
        return self._audit(update)

    def _clamp(self, old: EncodingCostParams,
               proposed: EncodingCostParams
               ) -> tuple[EncodingCostParams, bool]:
        step = self.max_step_factor
        if step is None:
            return proposed, False
        scan = min(max(proposed.scan_rate, old.scan_rate / step),
                   old.scan_rate * step)
        extra = proposed.extra_time
        if old.extra_time > 0:
            extra = min(max(extra, old.extra_time / step),
                        old.extra_time * step)
        clamped = (scan != proposed.scan_rate or extra != proposed.extra_time)
        if not clamped:
            return proposed, False
        return EncodingCostParams(scan_rate=scan, extra_time=extra), True

    def _reject(self, replica_name: str, encoding_name: str,
                old: EncodingCostParams, n_samples: int,
                reason: str) -> CalibrationUpdate:
        # Cooldown: don't retry until min_samples fresh pairs arrive.
        self._cooldown_until[replica_name] = (
            self.drift.recorded + self.min_samples)
        self._count("repro_recalib_rejected_total")
        return self._audit(CalibrationUpdate(
            replica=replica_name,
            encoding=encoding_name,
            action="rejected",
            mode=None,
            reason=reason,
            old_scan_rate=old.scan_rate,
            old_extra_time=old.extra_time,
            new_scan_rate=None,
            new_extra_time=None,
            n_samples=n_samples,
            r_squared=None,
            clamped=False,
        ))

    def _audit(self, update: CalibrationUpdate) -> CalibrationUpdate:
        self.audit_log.append(update)
        if self.timeseries is not None:
            self.timeseries.append("calibration", update.to_dict())
        return update

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    def audit_dicts(self) -> list[dict]:
        """The in-memory audit trail as JSON-safe data."""
        with self._lock:
            return [u.to_dict() for u in self.audit_log]

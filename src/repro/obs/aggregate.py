"""Cross-process metrics aggregation for the serving tier.

Each shard worker owns a private
:class:`~repro.obs.MetricsRegistry`; the front door collects their
:meth:`~repro.obs.MetricsRegistry.snapshot` dicts and merges them here
into one fleet-wide view: counters and gauges sum per ``(name,
labels)``, histograms merge bucket-wise, quantile sketches merge by
summing their log-bucket counts (exact — the whole point of using a
mergeable sketch) and re-reading the canonical quantiles from the
merged state.

Instruments that *cannot* merge — histogram bucket bounds or sketch
``alpha`` differing across snapshots — raise
:class:`~repro.errors.SnapshotMergeError` instead of silently
misbinning observations.  (This module otherwise imports nothing from
the wider package; ``repro.errors`` is itself dependency-free, so the
exception can live on the consolidated surface without a cycle.)
"""

from __future__ import annotations

from repro.errors import SnapshotMergeError
from repro.obs.metrics import SKETCH_QUANTILES, sketch_quantile


def _key(entry: dict) -> tuple:
    return (entry["name"], tuple(sorted(entry["labels"].items())))


def _merge_scalars(all_entries) -> list[dict]:
    merged: dict[tuple, dict] = {}
    for entry in all_entries:
        key = _key(entry)
        slot = merged.get(key)
        if slot is None:
            merged[key] = {"name": entry["name"],
                           "labels": dict(entry["labels"]),
                           "value": entry["value"]}
        else:
            slot["value"] += entry["value"]
    return [merged[key] for key in sorted(merged)]


def _merge_histograms(all_entries) -> list[dict]:
    merged: dict[tuple, dict] = {}
    for entry in all_entries:
        key = _key(entry)
        slot = merged.get(key)
        if slot is None:
            merged[key] = {
                "name": entry["name"],
                "labels": dict(entry["labels"]),
                "count": entry["count"],
                "sum": entry["sum"],
                "buckets": [dict(b) for b in entry["buckets"]],
            }
            continue
        slot["count"] += entry["count"]
        slot["sum"] += entry["sum"]
        theirs = {b["le"]: b["count"] for b in entry["buckets"]}
        ours_bounds = {b["le"] for b in slot["buckets"]}
        if set(theirs) != ours_bounds:
            raise SnapshotMergeError(
                entry["name"], entry["labels"],
                "histogram bucket bounds differ across snapshots",
                ours=sorted(ours_bounds), theirs=sorted(theirs))
        for bucket in slot["buckets"]:
            bucket["count"] += theirs[bucket["le"]]
    return [merged[key] for key in sorted(merged)]


def _merge_quantiles(all_entries) -> list[dict]:
    merged: dict[tuple, dict] = {}
    for entry in all_entries:
        key = _key(entry)
        slot = merged.get(key)
        if slot is None:
            merged[key] = {
                "name": entry["name"],
                "labels": dict(entry["labels"]),
                "alpha": entry["alpha"],
                "count": entry["count"],
                "sum": entry["sum"],
                "min": entry.get("min"),
                "max": entry.get("max"),
                "zero": entry.get("zero", 0),
                "buckets": dict(entry["buckets"]),
            }
            continue
        if entry["alpha"] != slot["alpha"]:
            raise SnapshotMergeError(
                entry["name"], entry["labels"],
                "quantile sketch resolution (alpha) differs across "
                "snapshots", ours=slot["alpha"], theirs=entry["alpha"])
        slot["count"] += entry["count"]
        slot["sum"] += entry["sum"]
        slot["zero"] += entry.get("zero", 0)
        for extreme, pick in (("min", min), ("max", max)):
            theirs = entry.get(extreme)
            if theirs is not None:
                ours = slot[extreme]
                slot[extreme] = theirs if ours is None else \
                    pick(ours, theirs)
        for idx, n in entry["buckets"].items():
            slot["buckets"][idx] = slot["buckets"].get(idx, 0) + n
    out = []
    for key in sorted(merged):
        slot = merged[key]
        buckets = {int(idx): n for idx, n in slot["buckets"].items()}
        slot["buckets"] = {str(idx): n
                           for idx, n in sorted(buckets.items())}
        slot["quantiles"] = {
            str(q): sketch_quantile(slot["alpha"], slot["zero"], buckets,
                                    slot["count"], q)
            for q in SKETCH_QUANTILES
        }
        out.append(slot)
    return out


def merge_metric_snapshots(snapshots) -> dict:
    """Merge :meth:`MetricsRegistry.snapshot` dicts from many processes
    into one, deterministically ordered by ``(name, labels)``; raises
    :class:`~repro.errors.SnapshotMergeError` when instrument shapes
    disagree."""
    snapshots = list(snapshots)
    return {
        "counters": _merge_scalars(
            e for s in snapshots for e in s.get("counters", ())),
        "gauges": _merge_scalars(
            e for s in snapshots for e in s.get("gauges", ())),
        "histograms": _merge_histograms(
            e for s in snapshots for e in s.get("histograms", ())),
        "quantiles": _merge_quantiles(
            e for s in snapshots for e in s.get("quantiles", ())),
    }

"""Cross-process metrics aggregation for the serving tier.

Each shard worker owns a private
:class:`~repro.obs.MetricsRegistry`; the front door collects their
:meth:`~repro.obs.MetricsRegistry.snapshot` dicts and merges them here
into one fleet-wide view: counters and gauges sum per ``(name,
labels)``, histograms merge bucket-wise (the boundaries are fixed
per metric name, so buckets align across processes).
"""

from __future__ import annotations


def _key(entry: dict) -> tuple:
    return (entry["name"], tuple(sorted(entry["labels"].items())))


def _merge_scalars(all_entries) -> list[dict]:
    merged: dict[tuple, dict] = {}
    for entry in all_entries:
        key = _key(entry)
        slot = merged.get(key)
        if slot is None:
            merged[key] = {"name": entry["name"],
                           "labels": dict(entry["labels"]),
                           "value": entry["value"]}
        else:
            slot["value"] += entry["value"]
    return [merged[key] for key in sorted(merged)]


def _merge_histograms(all_entries) -> list[dict]:
    merged: dict[tuple, dict] = {}
    for entry in all_entries:
        key = _key(entry)
        slot = merged.get(key)
        if slot is None:
            merged[key] = {
                "name": entry["name"],
                "labels": dict(entry["labels"]),
                "count": entry["count"],
                "sum": entry["sum"],
                "buckets": [dict(b) for b in entry["buckets"]],
            }
            continue
        slot["count"] += entry["count"]
        slot["sum"] += entry["sum"]
        theirs = {b["le"]: b["count"] for b in entry["buckets"]}
        if set(theirs) != {b["le"] for b in slot["buckets"]}:
            raise ValueError(
                f"histogram {entry['name']!r} has mismatched bucket "
                "boundaries across snapshots"
            )
        for bucket in slot["buckets"]:
            bucket["count"] += theirs[bucket["le"]]
    return [merged[key] for key in sorted(merged)]


def merge_metric_snapshots(snapshots) -> dict:
    """Merge :meth:`MetricsRegistry.snapshot` dicts from many processes
    into one, deterministically ordered by ``(name, labels)``."""
    snapshots = list(snapshots)
    return {
        "counters": _merge_scalars(
            e for s in snapshots for e in s.get("counters", ())),
        "gauges": _merge_scalars(
            e for s in snapshots for e in s.get("gauges", ())),
        "histograms": _merge_histograms(
            e for s in snapshots for e in s.get("histograms", ())),
    }

"""Per-query trace spans with parent/child structure.

A *span* covers one timed step of query execution — ``route``, a
per-partition ``scan``, the ``decode`` inside it, a ``cache`` probe, a
``retry`` backoff, a ``failover`` hop, a ``repair`` — and carries its
parent's id, so a query's spans reassemble into a tree ("where did this
query spend its time?").  Completed spans land in a bounded ring buffer
(:class:`TraceRecorder`), dumpable as JSON lines for offline analysis.

The engine never checks "is tracing on?" at each step: it asks the
store for a recorder once per call and gets either the real
:class:`TraceRecorder` or the shared :data:`NULL_RECORDER`, whose
methods are no-ops.  The disabled path therefore costs one attribute
check per query — the PR 1 benchmark gate stays green.

All methods are thread-safe: partition scans run on the engine's
thread pool and finish their spans concurrently.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import Counter as _TallyCounter
from collections import deque
from dataclasses import dataclass, field


def _span_id_seed() -> int:
    """A process- and instance-unique starting point for span ids.

    Span/trace ids must stay unique across *recorders*, not just within
    one: the serving tier runs one recorder per spawn worker and
    stitches their dumps into one tree, so two workers handing out
    ``1, 2, 3, ...`` would collide on every id.  Each recorder instead
    counts up from an independent random point in a 63-bit space (PID
    folded in as belt-and-braces against a weak entropy source); two
    recorders collide only if one emits enough spans to walk into the
    other's random offset — vanishingly improbable for any real run.
    """
    seed = int.from_bytes(os.urandom(8), "big") ^ (os.getpid() << 24)
    seed &= (1 << 63) - 1
    return seed or 1  # 0 is the null handle's id


@dataclass(slots=True)
class Span:
    """One timed step of query execution.

    ``start``/``end`` are ``time.perf_counter()`` readings — durations
    and sibling ordering are meaningful, absolute values are not.
    ``end`` is None while the span is open.
    """

    trace_id: int
    span_id: int
    parent_id: int | None
    name: str
    start: float
    end: float | None = None
    attrs: dict[str, object] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "seconds": self.seconds,
            "attrs": dict(self.attrs),
        }


class _SpanHandle:
    """An open span: context manager, annotatable, finishable."""

    __slots__ = ("_recorder", "span")

    def __init__(self, recorder: "TraceRecorder", span: Span):
        self._recorder = recorder
        self.span = span

    @property
    def span_id(self) -> int:
        return self.span.span_id

    @property
    def trace_id(self) -> int:
        return self.span.trace_id

    def annotate(self, **attrs: object) -> None:
        self.span.attrs.update(attrs)

    def finish(self) -> None:
        self._recorder.finish(self)

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None and "error" not in self.span.attrs:
            self.span.attrs["error"] = f"{type(exc).__name__}: {exc}"
        self.finish()


class TraceRecorder:
    """Collects finished spans into a bounded ring buffer.

    ``capacity`` bounds the number of *retained* spans — the recorder
    never grows without bound under a long-running workload; old spans
    fall off the front.  ``clock`` is injectable for deterministic
    tests.
    """

    enabled = True

    def __init__(self, capacity: int = 8192, clock=time.perf_counter):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._capacity = int(capacity)
        self._clock = clock
        self._spans: deque[Span] = deque(maxlen=self._capacity)
        self._ids = itertools.count(_span_id_seed())
        self._recorded = 0
        self._lock = threading.Lock()

    @property
    def capacity(self) -> int:
        return self._capacity

    # -- span lifecycle ----------------------------------------------------

    def start(self, name: str, parent: "_SpanHandle | None" = None, *,
              context=None, **attrs: object) -> _SpanHandle:
        """Open a span.  With no ``parent`` the span roots a new trace;
        otherwise it joins the parent's trace as a child.

        ``context`` is a remote parent — anything with ``trace_id`` and
        ``parent_span_id`` attributes (see
        :class:`repro.obs.distributed.TraceContext`).  It lets a span in
        this process continue a trace started in another one: the span
        adopts the context's trace id and parents under the remote span
        instead of rooting a new trace.  A local ``parent`` wins over a
        ``context`` when both are given.
        """
        # next() on itertools.count is atomic under the GIL — id
        # allocation needs no lock (spans start on pool threads, and
        # this sits on the engine's per-scan hot path).
        span_id = next(self._ids)
        if parent is not None:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        elif context is not None:
            trace_id = context.trace_id
            parent_id = context.parent_span_id
        else:
            trace_id = span_id
            parent_id = None
        span = Span(
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent_id,
            name=name,
            start=self._clock(),
            attrs=attrs,  # the kwargs dict is fresh per call — owned
        )
        return _SpanHandle(self, span)

    def finish(self, handle: _SpanHandle) -> None:
        span = handle.span
        if span.end is not None:
            return  # already finished (double close is harmless)
        span.end = self._clock()
        with self._lock:
            self._spans.append(span)
            self._recorded += 1

    def event(self, name: str, parent: "_SpanHandle | None" = None,
              **attrs: object) -> None:
        """A zero-duration span — for instants like a failover decision."""
        self.finish(self.start(name, parent=parent, **attrs))

    # -- inspection --------------------------------------------------------

    def spans(self) -> list[Span]:
        """The retained spans, oldest first."""
        with self._lock:
            return list(self._spans)

    @property
    def recorded(self) -> int:
        """Spans finished over the recorder's lifetime (>= ``len(spans())``
        once the ring buffer wraps)."""
        with self._lock:
            return self._recorded

    def span_counts(self) -> dict[str, int]:
        """Retained span tally by name, for summaries."""
        return dict(_TallyCounter(s.name for s in self.spans()))

    def traces(self) -> dict[int, list[Span]]:
        """Retained spans grouped by trace id (each list oldest-first)."""
        out: dict[int, list[Span]] = {}
        for span in self.spans():
            out.setdefault(span.trace_id, []).append(span)
        return out

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    # -- export ------------------------------------------------------------

    def to_jsonl(self) -> str:
        """The retained spans as JSON lines (one span per line)."""
        return "".join(json.dumps(s.to_dict(), sort_keys=True) + "\n"
                       for s in self.spans())

    def dump_jsonl(self, path: str) -> int:
        """Write :meth:`to_jsonl` to ``path``; returns spans written."""
        spans = self.spans()
        with open(path, "w", encoding="utf-8") as f:
            for span in spans:
                f.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
        return len(spans)


class _NullHandle:
    """The shared no-op span handle the null recorder hands out."""

    __slots__ = ()
    span_id = 0
    trace_id = 0

    def annotate(self, **attrs: object) -> None:
        pass

    def finish(self) -> None:
        pass

    def __enter__(self) -> "_NullHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_HANDLE = _NullHandle()


class NullTraceRecorder:
    """The do-nothing recorder used when tracing is disabled.

    Shares the :class:`TraceRecorder` surface so instrumented code needs
    no conditionals; every method is a constant-time no-op.
    """

    enabled = False
    capacity = 0
    recorded = 0

    def start(self, name: str, parent=None, *, context=None,
              **attrs: object) -> _NullHandle:
        return _NULL_HANDLE

    def finish(self, handle) -> None:
        pass

    def event(self, name: str, parent=None, **attrs: object) -> None:
        pass

    def spans(self) -> list[Span]:
        return []

    def span_counts(self) -> dict[str, int]:
        return {}

    def traces(self) -> dict[int, list[Span]]:
        return {}

    def clear(self) -> None:
        pass

    def to_jsonl(self) -> str:
        return ""

    def dump_jsonl(self, path: str) -> int:
        with open(path, "w", encoding="utf-8"):
            pass
        return 0


#: The process-wide no-op recorder; instrumented code holds this when
#: tracing is off, so the disabled path never branches per step.
NULL_RECORDER = NullTraceRecorder()

"""The operational report: one JSON/text picture of engine health.

``repro report`` (and any embedding application) renders the closed
telemetry loop in one document:

- **queries / cache / degradation** — live counter roll-ups from the
  :class:`~repro.obs.MetricsRegistry` (what the engine actually did);
- **drift** — per-replica predicted-vs-measured status from the
  :class:`~repro.obs.DriftMonitor` (is Section V-B recalibration due);
- **recalibration** — the :class:`~repro.obs.recalibrate.Recalibrator`
  audit trail, read from the on-disk
  :class:`~repro.obs.timeseries.TimeseriesStore` when one is attached
  (so the trail survives restarts) and from the live audit log
  otherwise;
- **trends** — first/last/delta per counter across the persisted
  snapshot history, the "what changed since yesterday" view the live
  registry cannot answer;
- **slo** (schema v4) — the per-tenant burn-rate picture from an
  attached :class:`~repro.obs.slo.SLOEngine`: declared objectives,
  last-evaluation statuses, currently-firing alerts and the
  firing/resolved audit trail (read from the timeseries store when one
  is attached, the live engine otherwise).

:func:`validate_report` is the schema gate CI runs against
``repro report --json``; it is hand-rolled (the toolchain carries no
jsonschema dependency) and intentionally strict about section presence
and types, loose about additive extension.
"""

from __future__ import annotations

__all__ = ["REPORT_SCHEMA_VERSION", "build_report", "render_report_text",
           "validate_report"]

REPORT_SCHEMA_VERSION = 4


def _counter_total(metrics_snapshot: dict, name: str) -> float:
    """Sum one counter across all its label sets."""
    return sum(c["value"] for c in metrics_snapshot["counters"]
               if c["name"] == name)


def _counter_by_label(metrics_snapshot: dict, name: str,
                      label: str) -> dict[str, float]:
    out: dict[str, float] = {}
    for c in metrics_snapshot["counters"]:
        if c["name"] != name:
            continue
        key = c["labels"].get(label, "")
        out[key] = out.get(key, 0.0) + c["value"]
    return out


def _trends(snapshots: list[dict]) -> dict:
    """Per-counter first/last/delta across persisted snapshot entries.

    Counters are summed across label sets per snapshot, so a trend line
    answers "how much of X happened over the retained history" without
    exploding into label combinations.
    """
    if len(snapshots) < 2:
        return {"snapshots": len(snapshots), "counters": {}}
    first, last = snapshots[0], snapshots[-1]
    names = sorted(
        {c["name"] for snap in (first, last)
         for c in snap["data"]["metrics"]["counters"]})
    counters = {}
    for name in names:
        a = _counter_total(first["data"]["metrics"], name)
        b = _counter_total(last["data"]["metrics"], name)
        counters[name] = {"first": a, "last": b, "delta": b - a}
    return {
        "snapshots": len(snapshots),
        "first_seq": first["seq"],
        "last_seq": last["seq"],
        "counters": counters,
    }


def build_report(obs, timeseries=None, recalibrator=None,
                 reselector=None, slo=None) -> dict:
    """Assemble the operational report from whatever is attached.

    ``obs`` is an :class:`~repro.obs.Observability` bundle; the
    timeseries store, recalibrator, reselection controller and
    :class:`~repro.obs.slo.SLOEngine` are optional — absent layers
    produce empty-but-present sections, so the schema is stable.
    """
    metrics = obs.metrics.snapshot()

    hits = _counter_total(metrics, "repro_cache_hits_total")
    misses = _counter_total(metrics, "repro_cache_misses_total")
    lookups = hits + misses

    drift_snapshot = obs.drift.snapshot()

    if reselector is None:
        reselector = getattr(obs, "reselector", None)

    if timeseries is not None:
        audit = [dict(e["data"], seq=e["seq"])
                 for e in timeseries.entries("calibration")]
        reselect_audit = [dict(e["data"], seq=e["seq"])
                          for e in timeseries.entries("reselection")]
        slo_audit = [dict(e["data"], seq=e["seq"])
                     for e in timeseries.entries("slo")]
        snapshots = timeseries.entries("snapshot")
        history = {
            "attached": True,
            "path": timeseries.path,
            "entries": len(timeseries),
            "last_seq": timeseries.last_seq,
        }
    else:
        audit = recalibrator.audit_dicts() if recalibrator is not None else []
        reselect_audit = (reselector.audit_dicts()
                          if reselector is not None
                          and hasattr(reselector, "audit_dicts") else [])
        slo_audit = slo.audit_dicts() if slo is not None else []
        snapshots = []
        history = {"attached": False, "path": None, "entries": 0,
                   "last_seq": 0}

    return {
        "schema_version": REPORT_SCHEMA_VERSION,
        "queries": {
            "workloads": _counter_total(metrics, "repro_workloads_total"),
            "by_path": _counter_by_label(metrics, "repro_queries_total",
                                         "path"),
            "by_replica": _counter_by_label(
                metrics, "repro_queries_by_replica_total", "replica"),
            "bytes_read": _counter_total(metrics, "repro_bytes_read_total"),
            "records_scanned": _counter_total(
                metrics, "repro_records_scanned_total"),
        },
        "scan": {
            "partitions_pruned": _counter_total(
                metrics, "repro_partitions_pruned_total"),
            "columns_skipped": _counter_total(
                metrics, "repro_columns_skipped_total"),
            "count_metadata_partitions": _counter_total(
                metrics, "repro_count_metadata_partitions_total"),
            "columns_decoded_by_kind": _counter_by_label(
                metrics, "repro_columns_decoded_total", "kind"),
        },
        "cache": {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / lookups if lookups else None,
            "evictions": _counter_total(metrics,
                                        "repro_cache_evictions_total"),
            "invalidations": _counter_total(
                metrics, "repro_cache_invalidations_total"),
        },
        "degradation": {
            "retries": _counter_total(metrics, "repro_retries_total"),
            "failovers": _counter_total(metrics, "repro_failovers_total"),
            "repairs": _counter_total(metrics, "repro_repairs_total"),
            "faults_injected": _counter_total(
                metrics, "repro_faults_injected_total"),
        },
        "drift": {
            "replicas": drift_snapshot,
            "flagged": [d["replica"] for d in drift_snapshot if d["flagged"]],
        },
        "ingest": {
            "appends": _counter_total(metrics,
                                      "repro_ingest_appends_total"),
            "records": _counter_total(metrics,
                                      "repro_ingest_records_total"),
            "compactions_by_mode": _counter_by_label(
                metrics, "repro_ingest_compactions_total", "mode"),
            "compaction_failures": _counter_total(
                metrics, "repro_ingest_compaction_failures_total"),
            "windows_sealed": _counter_total(
                metrics, "repro_ingest_windows_sealed_total"),
            "wal": {
                "appends": _counter_total(metrics, "repro_wal_appends_total"),
                "bytes": _counter_total(metrics, "repro_wal_bytes_total"),
                "torn_tails": _counter_total(
                    metrics, "repro_wal_torn_tails_total"),
                "replayed_batches": _counter_total(
                    metrics, "repro_wal_replayed_batches_total"),
                "snapshots": _counter_total(
                    metrics, "repro_wal_snapshots_total"),
            },
            "anti_entropy": {
                "sweeps": _counter_total(
                    metrics, "repro_antientropy_sweeps_total"),
                "windows": _counter_total(
                    metrics, "repro_antientropy_windows_total"),
                "failures": _counter_total(
                    metrics, "repro_antientropy_failures_total"),
            },
        },
        "recalibration": {
            "applied": _counter_total(metrics,
                                      "repro_recalib_applied_total"),
            "rejected": _counter_total(metrics,
                                       "repro_recalib_rejected_total"),
            "audit": audit,
        },
        "reselection": {
            "evaluations": _counter_total(
                metrics, "repro_reselect_evaluations_total"),
            "applied": _counter_total(metrics,
                                      "repro_reselect_applied_total"),
            "rejected": _counter_total(metrics,
                                       "repro_reselect_rejected_total"),
            "replica_changes_by_op": _counter_by_label(
                metrics, "repro_replica_changes_total", "op"),
            "audit": reselect_audit,
        },
        "slo": {
            "objectives": slo.objective_dicts() if slo is not None else [],
            "evaluations": _counter_total(metrics,
                                          "repro_slo_evaluations_total"),
            "alerts": _counter_total(metrics, "repro_slo_alerts_total"),
            "firing": ([{"tenant": t, "objective": o}
                        for t, o in slo.firing]
                       if slo is not None else []),
            "status": slo.status_dicts() if slo is not None else [],
            "audit": slo_audit,
        },
        "trends": _trends(snapshots),
        "history": history,
    }


def render_report_text(report: dict) -> str:
    """The human-readable rendering of :func:`build_report`'s output."""
    lines: list[str] = []
    q = report["queries"]
    lines.append("operational report")
    lines.append(f"  queries: {sum(q['by_path'].values()):.0f} "
                 f"(workloads: {q['workloads']:.0f})")
    for path, n in sorted(q["by_path"].items()):
        lines.append(f"    path {path or '-'}: {n:.0f}")
    for replica, n in sorted(q["by_replica"].items()):
        lines.append(f"    replica {replica}: {n:.0f}")
    lines.append(f"  bytes read: {q['bytes_read']:,.0f}   "
                 f"records scanned: {q['records_scanned']:,.0f}")

    sc = report.get("scan")
    if sc is not None:
        lines.append(
            f"  scan fast paths: {sc['partitions_pruned']:.0f} partitions "
            f"zone-pruned, {sc['columns_skipped']:.0f} column decodes "
            f"skipped, {sc['count_metadata_partitions']:.0f} partitions "
            f"counted from metadata")
        decoded = sc["columns_decoded_by_kind"]
        if decoded:
            by_kind = ", ".join(f"{kind} {n:.0f}"
                                for kind, n in sorted(decoded.items()))
            lines.append(f"    column blocks decoded: {by_kind}")

    c = report["cache"]
    rate = "n/a" if c["hit_rate"] is None else f"{c['hit_rate']:.1%}"
    lines.append(f"  cache: {c['hits']:.0f} hits / {c['misses']:.0f} misses "
                 f"(hit rate {rate}, evictions {c['evictions']:.0f})")

    d = report["degradation"]
    lines.append(f"  degradation: retries {d['retries']:.0f}, "
                 f"failovers {d['failovers']:.0f}, "
                 f"repairs {d['repairs']:.0f}, "
                 f"faults injected {d['faults_injected']:.0f}")

    drift = report["drift"]
    if drift["replicas"]:
        for s in drift["replicas"]:
            flag = " FLAGGED" if s["flagged"] else ""
            scale = s["scale_factor"]
            scale_txt = "inf" if scale is None else f"{scale:.3g}"
            lines.append(
                f"  drift[{s['replica']}]: n={s['samples']} "
                f"err={s['mean_relative_error']:.3f} "
                f"scale={scale_txt}{flag}")
    else:
        lines.append("  drift: no samples")

    ing = report.get("ingest")
    if ing is not None and (ing["appends"] or ing["wal"]["appends"]):
        modes = ", ".join(f"{mode} {n:.0f}" for mode, n
                          in sorted(ing["compactions_by_mode"].items()))
        lines.append(
            f"  ingest: {ing['appends']:.0f} appends "
            f"({ing['records']:,.0f} records), compactions "
            f"[{modes or 'none'}], {ing['compaction_failures']:.0f} failed, "
            f"{ing['windows_sealed']:.0f} windows sealed")
        w = ing["wal"]
        lines.append(
            f"    wal: {w['appends']:.0f} frames "
            f"({w['bytes']:,.0f} bytes), {w['snapshots']:.0f} snapshots, "
            f"{w['replayed_batches']:.0f} batches replayed, "
            f"{w['torn_tails']:.0f} torn tails sealed")
        ae = ing["anti_entropy"]
        if ae["sweeps"]:
            lines.append(
                f"    anti-entropy: {ae['sweeps']:.0f} sweeps over "
                f"{ae['windows']:.0f} windows, "
                f"{ae['failures']:.0f} failures")

    r = report["recalibration"]
    lines.append(f"  recalibration: {r['applied']:.0f} applied, "
                 f"{r['rejected']:.0f} rejected")
    for entry in r["audit"]:
        if entry["action"] == "rejected":
            lines.append(
                f"    [{entry['action']}] {entry['replica']}"
                f"/{entry['encoding']}: {entry['reason']}")
        else:
            clamp = " (clamped)" if entry["clamped"] else ""
            lines.append(
                f"    [{entry['action']}] {entry['replica']}"
                f"/{entry['encoding']} ({entry['mode']}): "
                f"ScanRate {entry['old_scan_rate']:.4g} -> "
                f"{entry['new_scan_rate']:.4g}, "
                f"ExtraTime {entry['old_extra_time']:.4g} -> "
                f"{entry['new_extra_time']:.4g}, "
                f"n={entry['n_samples']}{clamp}")

    rs = report.get("reselection")
    if rs is not None and (rs["evaluations"] or rs["audit"]):
        changes = ", ".join(f"{op} {n:.0f}" for op, n
                            in sorted(rs["replica_changes_by_op"].items()))
        lines.append(
            f"  reselection: {rs['evaluations']:.0f} evaluations, "
            f"{rs['applied']:.0f} applied, {rs['rejected']:.0f} rejected"
            + (f" (replica changes: {changes})" if changes else ""))
        for entry in rs["audit"]:
            if entry["action"] == "applied":
                lines.append(
                    f"    [applied] epoch {entry['epoch']}: "
                    f"div={entry['divergence']:.3f} "
                    f"cost {entry['incumbent_cost']:.4g} -> "
                    f"{entry['candidate_cost']:.4g} "
                    f"(+{entry['improvement']:.1%}), "
                    f"built {list(entry['built'])}, "
                    f"retired {list(entry['retired'])}")
            else:
                lines.append(
                    f"    [{entry['action']}] epoch {entry['epoch']}: "
                    f"div={entry['divergence']:.3f}"
                    + (f" — {entry['reason']}" if entry.get("reason")
                       else ""))
            if entry.get("partial_advisory"):
                lines.append(
                    f"      partial advisory: "
                    f"{list(entry['partial_advisory'])}")

    slo = report.get("slo")
    if slo is not None and (slo["objectives"] or slo["audit"]):
        firing = ", ".join(f"{f['tenant']}:{f['objective']}"
                           for f in slo["firing"]) or "none"
        lines.append(
            f"  slo: {len(slo['objectives'])} objectives, "
            f"{slo['evaluations']:.0f} evaluations, "
            f"{slo['alerts']:.0f} alerts fired (firing now: {firing})")
        for status in slo["status"]:
            burns = ", ".join(
                f"{w['seconds']:.0f}s burn {w['burn_rate']:.2f}"
                f"/{w['max_burn']:g}" for w in status["windows"])
            flag = " FIRING" if status["firing"] else ""
            lines.append(f"    {status['tenant']}:{status['objective']} "
                         f"[{burns}]{flag}")
        for entry in slo["audit"]:
            lines.append(
                f"    [{entry['action']}] {entry['tenant']}:"
                f"{entry['objective']}")

    t = report["trends"]
    if t["counters"]:
        lines.append(f"  trends over {t['snapshots']} snapshots "
                     f"(seq {t['first_seq']}..{t['last_seq']}):")
        for name, tr in sorted(t["counters"].items()):
            if tr["delta"]:
                lines.append(f"    {name}: {tr['first']:.0f} -> "
                             f"{tr['last']:.0f} (+{tr['delta']:.0f})")
    h = report["history"]
    if h["attached"]:
        lines.append(f"  history: {h['entries']} entries "
                     f"(seq <= {h['last_seq']}) at {h['path']}")
    else:
        lines.append("  history: no timeseries store attached")
    return "\n".join(lines)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(f"invalid report: {message}")


def validate_report(report: dict) -> None:
    """Raise ``ValueError`` unless ``report`` matches the operational
    report schema (version, section presence, field types).  Additive
    extra keys are allowed; missing or mistyped required ones are not.
    """
    _require(isinstance(report, dict), "not a mapping")
    _require(report.get("schema_version") == REPORT_SCHEMA_VERSION,
             f"schema_version != {REPORT_SCHEMA_VERSION}")
    for section in ("queries", "scan", "cache", "degradation", "drift",
                    "ingest", "recalibration", "reselection", "slo",
                    "trends", "history"):
        _require(isinstance(report.get(section), dict),
                 f"missing section {section!r}")

    q = report["queries"]
    for field in ("workloads", "bytes_read", "records_scanned"):
        _require(isinstance(q.get(field), (int, float)),
                 f"queries.{field} must be numeric")
    _require(isinstance(q.get("by_path"), dict), "queries.by_path")
    _require(isinstance(q.get("by_replica"), dict), "queries.by_replica")

    sc = report["scan"]
    for field in ("partitions_pruned", "columns_skipped",
                  "count_metadata_partitions"):
        _require(isinstance(sc.get(field), (int, float)),
                 f"scan.{field} must be numeric")
    _require(isinstance(sc.get("columns_decoded_by_kind"), dict),
             "scan.columns_decoded_by_kind")

    c = report["cache"]
    for field in ("hits", "misses", "evictions", "invalidations"):
        _require(isinstance(c.get(field), (int, float)),
                 f"cache.{field} must be numeric")
    _require(c.get("hit_rate") is None
             or isinstance(c["hit_rate"], (int, float)), "cache.hit_rate")

    d = report["degradation"]
    for field in ("retries", "failovers", "repairs", "faults_injected"):
        _require(isinstance(d.get(field), (int, float)),
                 f"degradation.{field} must be numeric")

    drift = report["drift"]
    _require(isinstance(drift.get("replicas"), list), "drift.replicas")
    _require(isinstance(drift.get("flagged"), list), "drift.flagged")
    for s in drift["replicas"]:
        for field in ("replica", "samples", "mean_relative_error",
                      "flagged"):
            _require(field in s, f"drift entry missing {field!r}")

    ing = report["ingest"]
    for field in ("appends", "records", "compaction_failures",
                  "windows_sealed"):
        _require(isinstance(ing.get(field), (int, float)),
                 f"ingest.{field} must be numeric")
    _require(isinstance(ing.get("compactions_by_mode"), dict),
             "ingest.compactions_by_mode")
    for sub, fields in (("wal", ("appends", "bytes", "torn_tails",
                                 "replayed_batches", "snapshots")),
                        ("anti_entropy", ("sweeps", "windows", "failures"))):
        _require(isinstance(ing.get(sub), dict), f"ingest.{sub}")
        for field in fields:
            _require(isinstance(ing[sub].get(field), (int, float)),
                     f"ingest.{sub}.{field} must be numeric")

    r = report["recalibration"]
    for field in ("applied", "rejected"):
        _require(isinstance(r.get(field), (int, float)),
                 f"recalibration.{field} must be numeric")
    _require(isinstance(r.get("audit"), list), "recalibration.audit")
    for entry in r["audit"]:
        _require(entry.get("action") in ("applied", "rejected", "dry-run"),
                 f"audit action {entry.get('action')!r}")
        for field in ("replica", "encoding", "old_scan_rate",
                      "old_extra_time", "n_samples"):
            _require(field in entry, f"audit entry missing {field!r}")
        if entry["action"] != "rejected":
            _require(isinstance(entry.get("new_scan_rate"), (int, float)),
                     "applied/dry-run audit entry needs new_scan_rate")
            _require(isinstance(entry.get("new_extra_time"), (int, float)),
                     "applied/dry-run audit entry needs new_extra_time")

    rs = report["reselection"]
    for field in ("evaluations", "applied", "rejected"):
        _require(isinstance(rs.get(field), (int, float)),
                 f"reselection.{field} must be numeric")
    _require(isinstance(rs.get("replica_changes_by_op"), dict),
             "reselection.replica_changes_by_op")
    _require(isinstance(rs.get("audit"), list), "reselection.audit")
    for entry in rs["audit"]:
        _require(entry.get("action") in ("applied", "rejected", "dry-run",
                                         "skipped"),
                 f"reselection audit action {entry.get('action')!r}")
        for field in ("epoch", "divergence", "incumbent", "candidate",
                      "improvement", "built", "retired"):
            _require(field in entry,
                     f"reselection audit entry missing {field!r}")

    slo = report["slo"]
    for field in ("evaluations", "alerts"):
        _require(isinstance(slo.get(field), (int, float)),
                 f"slo.{field} must be numeric")
    for field in ("objectives", "firing", "status", "audit"):
        _require(isinstance(slo.get(field), list), f"slo.{field}")
    for entry in slo["audit"]:
        _require(entry.get("action") in ("firing", "resolved"),
                 f"slo audit action {entry.get('action')!r}")
        for field in ("tenant", "objective"):
            _require(field in entry, f"slo audit entry missing {field!r}")
    for status in slo["status"]:
        for field in ("tenant", "objective", "windows", "firing"):
            _require(field in status, f"slo status missing {field!r}")
        _require(isinstance(status["windows"], list), "slo status windows")
        for window in status["windows"]:
            for field in ("seconds", "max_burn", "events", "bad_fraction",
                          "burn_rate"):
                _require(isinstance(window.get(field), (int, float)),
                         f"slo window {field} must be numeric")

    t = report["trends"]
    _require(isinstance(t.get("snapshots"), int), "trends.snapshots")
    _require(isinstance(t.get("counters"), dict), "trends.counters")
    for name, tr in t["counters"].items():
        for field in ("first", "last", "delta"):
            _require(isinstance(tr.get(field), (int, float)),
                     f"trends.counters[{name!r}].{field}")

    h = report["history"]
    _require(isinstance(h.get("attached"), bool), "history.attached")
    _require(isinstance(h.get("entries"), int), "history.entries")
    _require(isinstance(h.get("last_seq"), int), "history.last_seq")

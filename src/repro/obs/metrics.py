"""A thread-safe metrics registry: counters, gauges, histograms,
quantile sketches.

The telemetry substrate of the engine (see ``docs/observability.md``).
Every component that makes a runtime decision — the query engine, the
decoded-partition cache, the fault injector, the selection solvers —
publishes its counters into one :class:`MetricsRegistry`, so a single
snapshot answers "what did the system actually do", independent of the
per-call :class:`~repro.storage.QueryStats` / ``WorkloadStats`` values.

Design constraints:

- **Thread-safe**: partition scans run on the engine's thread pool, so
  every mutation takes the instrument's lock.
- **Deterministic shape**: histogram bucket boundaries are fixed at
  creation (no adaptive/wall-clock-derived buckets), so two runs of the
  same workload produce snapshots with identical structure.
- **Pull-based export**: :meth:`MetricsRegistry.snapshot` returns plain
  data (JSON-safe), :meth:`MetricsRegistry.render_prometheus` the
  standard text exposition format.
"""

from __future__ import annotations

import bisect
import math
import threading

#: Default histogram boundaries for second-valued observations: fixed,
#: log-spaced, covering sub-millisecond cache hits up to multi-second
#: degraded scans.  Observations above the last bound land in +Inf.
DEFAULT_SECONDS_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Canonical label encoding inside the registry: a sorted tuple of
#: ``(key, value)`` pairs, hashable and order-independent.
LabelSet = tuple[tuple[str, str], ...]

#: ``# HELP`` text for the metric names the engine publishes.  Unknown
#: names fall back to a generic line (the exposition format requires
#: HELP to parse cleanly, not to be insightful).
METRIC_HELP: dict[str, str] = {
    "repro_queries_total": "Queries served, by execution path.",
    "repro_queries_by_replica_total": "Queries served, by serving replica.",
    "repro_workloads_total": "Batch workload executions.",
    "repro_bytes_read_total": "Encoded bytes fetched from unit stores.",
    "repro_records_scanned_total": "Records decoded and scanned.",
    "repro_partitions_involved_total": "Partitions intersecting queries.",
    "repro_query_seconds": "Wall-clock seconds per single query.",
    "repro_workload_seconds": "Wall-clock seconds per workload run.",
    "repro_retries_total": "Partition reads retried after a fault.",
    "repro_failovers_total": "Queries moved to a fallback replica.",
    "repro_repairs_total": "Partitions rebuilt from sibling replicas.",
    "repro_cache_hits_total": "Decoded-partition cache hits.",
    "repro_cache_misses_total": "Decoded-partition cache misses.",
    "repro_cache_evictions_total": "Decoded-partition cache evictions.",
    "repro_cache_inserts_total": "Decoded-partition cache inserts.",
    "repro_cache_invalidations_total": "Decoded-partition cache invalidations.",
    "repro_cache_resident_bytes": "Decoded bytes resident in the cache.",
    "repro_fault_reads_checked_total": "Unit reads checked by the injector.",
    "repro_faults_injected_total": "Faults injected into unit reads.",
    "repro_fault_reads_slowed_total": "Unit reads slowed by the injector.",
    "repro_recalib_applied_total":
        "Cost-model recalibrations applied to the routing model.",
    "repro_recalib_rejected_total":
        "Cost-model recalibrations rejected by the guard.",
    "repro_solver_runs_total": "Replica-selection solver invocations.",
    "repro_solver_replicas_selected_total": "Replicas chosen by solvers.",
    "repro_solver_nodes_explored_total": "Branch-and-bound nodes explored.",
    "repro_verify_checks_total": "Differential verification checks run.",
    "repro_verify_mismatches_total": "Differential verification mismatches.",
    "repro_verify_ok": "1 when the last store verification passed.",
    "repro_columns_decoded_total": "Column blocks decoded, by column kind.",
    "repro_decode_seconds": "Seconds decoding column blocks, by kind.",
    "repro_partitions_pruned_total":
        "Partitions skipped entirely by zone maps.",
    "repro_columns_skipped_total":
        "Column decodes avoided by the lazy x/y/t-first scan.",
    "repro_count_metadata_partitions_total":
        "Fully-contained partitions counted from metadata alone.",
    "repro_request_seconds":
        "Front-door request latency quantiles, by tenant.",
    "repro_requests_total":
        "Front-door requests, by tenant and outcome.",
    "repro_shard_dispatch_seconds":
        "Shard dispatch round-trip latency quantiles, by shard.",
    "repro_admission_admitted_total": "Queries admitted past the limiter.",
    "repro_admission_shed_total":
        "Queries shed at admission (OverloadError).",
    "repro_quota_rejected_total":
        "Queries rejected by tenant quotas, by tenant.",
    "repro_deadline_exceeded_total":
        "Requests or shard tasks dropped on an expired deadline.",
    "repro_slo_evaluations_total": "SLO burn-rate evaluations run.",
    "repro_slo_alerts_total":
        "SLO burn-rate alerts fired, by tenant and objective.",
}


def _labelset(labels: dict[str, str] | None) -> LabelSet:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format:
    backslash, double quote and newline (in that order — escaping the
    escapes first keeps the mapping bijective)."""
    return (value.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\n", "\\n"))


def _render_labels(labels: LabelSet) -> str:
    if not labels:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in labels)
    return "{" + body + "}"


class Counter:
    """A monotonically increasing value (events, bytes, retries)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelSet = ()):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (resident bytes, active spans)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelSet = ()):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """A distribution over fixed, pre-declared bucket boundaries.

    ``buckets`` are the *upper bounds* of each finite bucket, strictly
    increasing; an implicit +Inf bucket catches the tail.  The rendered
    counts are cumulative, matching the Prometheus exposition format.
    """

    __slots__ = ("name", "labels", "buckets", "_counts", "_sum", "_count",
                 "_lock")

    def __init__(self, name: str, labels: LabelSet = (),
                 buckets: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.name = name
        self.labels = labels
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # +Inf tail
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        idx = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def state(self) -> tuple[list[tuple[float, int]], float, int]:
        """``(cumulative_buckets, sum, count)`` captured under one lock
        acquisition, so the +Inf bucket always equals ``count`` and
        ``sum`` belongs to the same set of observations — the
        ``_sum``/``_count`` consistency the exposition format promises
        scrapers."""
        with self._lock:
            counts = list(self._counts)
            total_sum = self._sum
            total_count = self._count
        out: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.buckets + (float("inf"),), counts):
            running += n
            out.append((bound, running))
        return out, total_sum, total_count

    def cumulative_counts(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` per bucket, +Inf last."""
        return self.state()[0]


#: Quantiles every sketch reports in snapshots and expositions.
SKETCH_QUANTILES: tuple[float, ...] = (0.5, 0.95, 0.99)

#: Default relative-error bound for quantile sketches: a reported p99
#: is within 1% of the true value.
DEFAULT_SKETCH_ALPHA = 0.01

#: Observations below this collapse into the sketch's zero bucket (the
#: log mapping cannot represent 0).
_SKETCH_MIN_VALUE = 1e-9


def sketch_quantile(alpha: float, zero: int, buckets: dict[int, int],
                    count: int, q: float) -> float | None:
    """Read quantile ``q`` out of sketch state (``zero`` count plus
    ``{bucket_index: count}``); None when the sketch is empty.  Shared
    by the live instrument and the cross-process merge path, so a
    merged snapshot reports quantiles identically to a local one."""
    if count <= 0:
        return None
    gamma = (1.0 + alpha) / (1.0 - alpha)
    rank = max(0, math.ceil(q * count) - 1)
    if rank < zero:
        return 0.0
    cumulative = zero
    last = 0.0
    for idx in sorted(buckets):
        cumulative += buckets[idx]
        last = 2.0 * gamma ** idx / (gamma + 1.0)
        if cumulative > rank:
            return last
    return last


class QuantileSketch:
    """Mergeable streaming quantiles over log-spaced buckets.

    DDSketch-style: a value lands in bucket ``ceil(log_gamma(v))`` with
    ``gamma = (1+alpha)/(1-alpha)``, so any reported quantile is within
    relative error ``alpha`` of the true order statistic.  Two sketches
    with the same ``alpha`` merge *exactly* by summing bucket counts —
    the property fixed-bound histograms lack at the tails and P² lacks
    entirely — which is what lets per-worker latency sketches fold into
    fleet-wide per-tenant p50/p95/p99 in :mod:`repro.obs.aggregate`.
    """

    __slots__ = ("name", "labels", "alpha", "_gamma", "_log_gamma",
                 "_buckets", "_zero", "_count", "_sum", "_min", "_max",
                 "_lock")

    def __init__(self, name: str, labels: LabelSet = (),
                 alpha: float = DEFAULT_SKETCH_ALPHA):
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        self.name = name
        self.labels = labels
        self.alpha = float(alpha)
        self._gamma = (1.0 + self.alpha) / (1.0 - self.alpha)
        self._log_gamma = math.log(self._gamma)
        self._buckets: dict[int, int] = {}
        self._zero = 0
        self._count = 0
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        if value < 0.0:
            raise ValueError("quantile sketches take non-negative values")
        idx = None
        if value >= _SKETCH_MIN_VALUE:
            idx = math.ceil(math.log(value) / self._log_gamma)
        with self._lock:
            if idx is None:
                self._zero += 1
            else:
                self._buckets[idx] = self._buckets.get(idx, 0) + 1
            self._count += 1
            self._sum += value
            self._min = value if self._min is None else min(self._min, value)
            self._max = value if self._max is None else max(self._max, value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float | None:
        """The value at quantile ``q`` (None when empty), within
        relative error ``alpha``."""
        with self._lock:
            zero, buckets, count = self._zero, dict(self._buckets), \
                self._count
        return sketch_quantile(self.alpha, zero, buckets, count, q)

    def state(self) -> dict:
        """The sketch as plain JSON-safe data: raw buckets (keyed by
        stringified index, JSON objects cannot key on ints) for exact
        merging, plus the canonical quantile readings for display."""
        with self._lock:
            zero, buckets, count = self._zero, dict(self._buckets), \
                self._count
            total_sum, lo, hi = self._sum, self._min, self._max
        return {
            "alpha": self.alpha,
            "count": count,
            "sum": total_sum,
            "min": lo,
            "max": hi,
            "zero": zero,
            "buckets": {str(idx): n for idx, n in sorted(buckets.items())},
            "quantiles": {
                str(q): sketch_quantile(self.alpha, zero, buckets, count, q)
                for q in SKETCH_QUANTILES
            },
        }


class MetricsRegistry:
    """Get-or-create registry of named, optionally labeled instruments.

    One registry per :class:`~repro.obs.Observability`; instruments are
    identified by ``(name, labels)`` and re-requesting an existing one
    returns the same object.  Requesting an existing name as a different
    instrument type raises ``TypeError`` — a name means one thing.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelSet], object] = {}
        self._types: dict[str, type] = {}
        self._lock = threading.Lock()

    def _get(self, cls, name: str, labels: dict[str, str] | None,
             **kwargs):
        key = (name, _labelset(labels))
        # Lock-free fast path: the metrics dict only ever grows, and
        # dict.get is atomic under the GIL, so a hit needs no lock —
        # this runs once per scan/decode on the engine's hot path.
        existing = self._metrics.get(key)
        if existing is not None and type(existing) is cls:
            return existing
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TypeError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, not {cls.__name__}")
                return existing
            declared = self._types.get(name)
            if declared is not None and declared is not cls:
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{declared.__name__}, not {cls.__name__}")
            metric = cls(name, key[1], **kwargs)
            self._metrics[key] = metric
            self._types[name] = cls
            return metric

    def counter(self, name: str, labels: dict[str, str] | None = None) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, labels: dict[str, str] | None = None) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, labels: dict[str, str] | None = None,
        buckets: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS,
    ) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets)

    def quantile_sketch(
        self, name: str, labels: dict[str, str] | None = None,
        alpha: float = DEFAULT_SKETCH_ALPHA,
    ) -> QuantileSketch:
        return self._get(QuantileSketch, name, labels, alpha=alpha)

    def _sorted_metrics(self) -> list[object]:
        with self._lock:
            items = list(self._metrics.items())
        items.sort(key=lambda kv: kv[0])
        return [m for _, m in items]

    def counter_value(self, name: str, labels: dict[str, str] | None = None,
                      default: float = 0.0) -> float:
        """The current value of one counter, ``default`` when it was
        never created (a path that never ran publishes nothing)."""
        key = (name, _labelset(labels))
        with self._lock:
            metric = self._metrics.get(key)
        if metric is None:
            return default
        if not isinstance(metric, Counter):
            raise TypeError(f"metric {name!r} is not a Counter")
        return metric.value

    def snapshot(self) -> dict:
        """All instruments as plain JSON-safe data, deterministically
        ordered by ``(name, labels)``."""
        out: dict[str, list[dict]] = {"counters": [], "gauges": [],
                                      "histograms": [], "quantiles": []}
        for metric in self._sorted_metrics():
            labels = dict(metric.labels)
            if isinstance(metric, Counter):
                out["counters"].append(
                    {"name": metric.name, "labels": labels,
                     "value": metric.value})
            elif isinstance(metric, Gauge):
                out["gauges"].append(
                    {"name": metric.name, "labels": labels,
                     "value": metric.value})
            elif isinstance(metric, Histogram):
                buckets, total_sum, total_count = metric.state()
                out["histograms"].append({
                    "name": metric.name, "labels": labels,
                    "count": total_count, "sum": total_sum,
                    "buckets": [
                        {"le": bound, "count": n}
                        for bound, n in buckets
                    ],
                })
            elif isinstance(metric, QuantileSketch):
                out["quantiles"].append(
                    {"name": metric.name, "labels": labels,
                     **metric.state()})
        return out

    @staticmethod
    def _header(lines: list[str], seen: set[str], name: str,
                kind: str) -> None:
        if name in seen:
            return
        seen.add(name)
        help_text = METRIC_HELP.get(name, f"repro metric {name}.")
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")

    def render_prometheus(self) -> str:
        """The standard Prometheus text exposition format: ``# HELP`` +
        ``# TYPE`` per metric name, escaped label values, cumulative
        histogram buckets ending in ``+Inf`` (always equal to
        ``_count``, captured in the same lock acquisition as
        ``_sum``)."""
        lines: list[str] = []
        seen: set[str] = set()
        for metric in self._sorted_metrics():
            if isinstance(metric, Counter):
                self._header(lines, seen, metric.name, "counter")
                lines.append(
                    f"{metric.name}{_render_labels(metric.labels)} "
                    f"{_fmt(metric.value)}")
            elif isinstance(metric, Gauge):
                self._header(lines, seen, metric.name, "gauge")
                lines.append(
                    f"{metric.name}{_render_labels(metric.labels)} "
                    f"{_fmt(metric.value)}")
            elif isinstance(metric, Histogram):
                self._header(lines, seen, metric.name, "histogram")
                buckets, total_sum, total_count = metric.state()
                for bound, n in buckets:
                    le = "+Inf" if bound == float("inf") else _fmt(bound)
                    bucket_labels = metric.labels + (("le", le),)
                    lines.append(
                        f"{metric.name}_bucket{_render_labels(bucket_labels)}"
                        f" {n}")
                lines.append(
                    f"{metric.name}_sum{_render_labels(metric.labels)} "
                    f"{_fmt(total_sum)}")
                lines.append(
                    f"{metric.name}_count{_render_labels(metric.labels)} "
                    f"{total_count}")
            elif isinstance(metric, QuantileSketch):
                self._header(lines, seen, metric.name, "summary")
                state = metric.state()
                for q in SKETCH_QUANTILES:
                    value = state["quantiles"][str(q)]
                    if value is None:
                        continue
                    q_labels = metric.labels + (("quantile", _fmt(q)),)
                    lines.append(
                        f"{metric.name}{_render_labels(q_labels)} "
                        f"{_fmt(value)}")
                lines.append(
                    f"{metric.name}_sum{_render_labels(metric.labels)} "
                    f"{_fmt(state['sum'])}")
                lines.append(
                    f"{metric.name}_count{_render_labels(metric.labels)} "
                    f"{state['count']}")
        return "\n".join(lines) + ("\n" if lines else "")


def _fmt(value: float) -> str:
    """Render integral floats without the trailing ``.0`` noise."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)

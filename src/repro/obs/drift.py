"""Cost-model drift detection: is Section IV-B recalibration due?

The engine routes every query on its Eq. 7 predicted cost; Section IV-B
calibrates the underlying ``ScanRate``/``ExtraTime`` constants by
regressing measured scan times.  Those constants go stale — hardware
changes, data grows skewed, a codec update shifts decode speed — and
when they do, routing silently picks the wrong replicas while reporting
healthy-looking plans.

:class:`DriftMonitor` closes the loop: for every executed query it
records the ``(predicted seconds, measured seconds)`` pair against the
replica that served it, keeps a rolling window per replica, and flags a
replica whose mean *symmetric relative error*

    err(p, m) = |p - m| / max(p, m)

exceeds ``threshold`` over at least ``min_samples`` observations.
The symmetric form is scale-free and bounded in [0, 1): a model whose
``ScanRate`` is off by 4x scores ~0.75 no matter the absolute costs,
so one threshold works across environments.  A flagged replica means
"re-run the Section IV-B calibration for this encoding".
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

#: Guard against 0/0 when both predicted and measured are ~zero.
_EPS = 1e-12

#: Finite ceiling for a timing sample.  Metadata-only counts predict
#: exactly zero seconds, and a broken timer can hand back inf/NaN; both
#: must be clamped *before* they enter a drift window, because a single
#: non-finite pair makes every downstream mean (and the JSON snapshot)
#: inf/NaN forever after.
_MAX_SECONDS = 1e9

#: Finite ceiling for :attr:`DriftStatus.scale_factor` when the window's
#: mean prediction is ~zero (the measured/0 case).  Reported as "capped"
#: rather than ``inf`` so the value stays arithmetic- and JSON-safe.
SCALE_FACTOR_CAP = 1e6


def _finite_seconds(value: float) -> float:
    """Clamp one timing sample to a finite non-negative float: NaN
    becomes 0.0 (no evidence), +/-inf becomes ``_MAX_SECONDS``."""
    v = float(value)
    if v != v:  # NaN
        return 0.0
    if v == float("inf") or v == float("-inf"):
        return _MAX_SECONDS
    return min(abs(v), _MAX_SECONDS)


def relative_error(predicted: float, measured: float) -> float:
    """Symmetric relative error in [0, 1): 0 = perfect, ->1 = off by
    orders of magnitude.  Zero-vs-zero counts as no error; non-finite
    inputs are clamped first, so the result is always finite."""
    p, m = _finite_seconds(predicted), _finite_seconds(measured)
    denom = max(p, m)
    if denom <= _EPS:
        return 0.0
    return abs(p - m) / denom


@dataclass(frozen=True, slots=True)
class DriftStatus:
    """The rolling drift picture of one replica."""

    replica_name: str
    samples: int
    mean_relative_error: float
    max_relative_error: float
    mean_predicted: float
    mean_measured: float
    flagged: bool

    @property
    def scale_factor(self) -> float:
        """measured/predicted over the window — >1 means the model is
        optimistic (predicts faster than reality), <1 pessimistic.
        A consistent factor of ~k suggests ``ScanRate`` is off by ~k.
        Always finite: a window whose mean prediction is ~zero (e.g.
        metadata-only counts) caps at :data:`SCALE_FACTOR_CAP` instead
        of going infinite."""
        if self.mean_predicted <= _EPS:
            return SCALE_FACTOR_CAP if self.mean_measured > _EPS else 1.0
        return min(self.mean_measured / self.mean_predicted,
                   SCALE_FACTOR_CAP)


class DriftMonitor:
    """Rolling per-replica comparison of predicted vs. measured cost.

    ``window`` bounds the samples retained per replica (drift is a
    *current* property — ancient history would mask a recent change);
    ``min_samples`` suppresses alarms from a handful of noisy
    observations.  Thread-safe: workload execution records from pool
    threads.
    """

    def __init__(self, window: int = 64, threshold: float = 0.5,
                 min_samples: int = 5):
        if window < 1:
            raise ValueError("window must be >= 1")
        if not 0.0 < threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        self.window = int(window)
        self.threshold = float(threshold)
        self.min_samples = int(min_samples)
        self._pairs: dict[str, deque[tuple[float, float]]] = {}
        self._recorded = 0
        self._lock = threading.Lock()

    def record(self, replica_name: str, predicted_seconds: float,
               measured_seconds: float) -> None:
        """One executed query: what Eq. 7 predicted for the serving
        replica vs. what the scan actually took.  Samples are clamped
        finite on the way in (metadata-only counts predict 0.0 and a
        broken timer can produce inf/NaN) so windows never poison the
        rolling means."""
        pair = (_finite_seconds(predicted_seconds),
                _finite_seconds(measured_seconds))
        with self._lock:
            window = self._pairs.get(replica_name)
            if window is None:
                window = deque(maxlen=self.window)
                self._pairs[replica_name] = window
            window.append(pair)
            self._recorded += 1

    @property
    def recorded(self) -> int:
        """Pairs recorded over the monitor's lifetime."""
        with self._lock:
            return self._recorded

    def replica_names(self) -> list[str]:
        with self._lock:
            return sorted(self._pairs)

    def status(self, replica_name: str) -> DriftStatus:
        """The rolling drift picture of one replica (zero-sample status
        for a replica never observed)."""
        with self._lock:
            pairs = list(self._pairs.get(replica_name, ()))
        if not pairs:
            return DriftStatus(replica_name, 0, 0.0, 0.0, 0.0, 0.0, False)
        errors = [relative_error(p, m) for p, m in pairs]
        mean_err = sum(errors) / len(errors)
        return DriftStatus(
            replica_name=replica_name,
            samples=len(pairs),
            mean_relative_error=mean_err,
            max_relative_error=max(errors),
            mean_predicted=sum(p for p, _ in pairs) / len(pairs),
            mean_measured=sum(m for _, m in pairs) / len(pairs),
            flagged=(len(pairs) >= self.min_samples
                     and mean_err > self.threshold),
        )

    def statuses(self) -> list[DriftStatus]:
        """Every observed replica's status, sorted by name."""
        return [self.status(name) for name in self.replica_names()]

    def flagged(self) -> list[str]:
        """Replicas whose cost model has drifted past the threshold —
        the 'recalibration due' list."""
        return [s.replica_name for s in self.statuses() if s.flagged]

    def clear(self) -> None:
        """Drop all windows (e.g. right after a recalibration)."""
        with self._lock:
            self._pairs.clear()

    def clear_replica(self, replica_name: str) -> None:
        """Drop one replica's window — the hysteresis half of the
        recalibration loop.  The stale-model samples that raised the
        flag predate the correction; keeping them would leave the
        replica flagged until ``window`` fresh pairs dilute them, so the
        :class:`~repro.obs.recalibrate.Recalibrator` clears the window
        on every applied update and the flag drops immediately (a
        zero-sample status is never flagged)."""
        with self._lock:
            self._pairs.pop(replica_name, None)

    def snapshot(self) -> list[dict]:
        """JSON-safe per-replica statuses."""
        return [
            {
                "replica": s.replica_name,
                "samples": s.samples,
                "mean_relative_error": s.mean_relative_error,
                "max_relative_error": s.max_relative_error,
                "mean_predicted_seconds": s.mean_predicted,
                "mean_measured_seconds": s.mean_measured,
                "scale_factor": (None if s.scale_factor >= SCALE_FACTOR_CAP
                                 else s.scale_factor),
                "flagged": s.flagged,
            }
            for s in self.statuses()
        ]

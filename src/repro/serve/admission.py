"""Admission control and per-tenant quotas for the serving front door.

Both mechanisms reject *before* any work is queued, with structured
errors (:class:`~repro.errors.OverloadError`,
:class:`~repro.errors.QuotaExceededError`) — a refused query is always
an explicit signal, never a silently truncated result.

Both publish into an optional :class:`~repro.obs.MetricsRegistry`
(``bind_metrics``): sheds and quota rejections get dedicated counters
(``repro_admission_shed_total``, ``repro_quota_rejected_total``) that
flow into the merged fleet snapshot, so the overload paths are visible
in the same place as the success paths.  Unbound, they keep plain-int
tallies only.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.errors import OverloadError, QuotaExceededError


class AdmissionController:
    """A hard cap on queries in flight through the serving tier.

    ``acquire()`` admits or raises :class:`OverloadError` — there is no
    unbounded queue to hide behind.  Thread-safe so process workers'
    reader threads and the asyncio loop can share it.
    """

    def __init__(self, max_inflight: int, metrics=None):
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self._limit = int(max_inflight)
        self._inflight = 0
        self._shed = 0
        self._admitted = 0
        self._metrics = metrics
        self._lock = threading.Lock()

    def bind_metrics(self, metrics) -> None:
        """Publish admitted/shed counters into ``metrics`` (a
        :class:`~repro.obs.MetricsRegistry`) from now on."""
        self._metrics = metrics

    @property
    def limit(self) -> int:
        return self._limit

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def admitted(self) -> int:
        return self._admitted

    @property
    def shed(self) -> int:
        return self._shed

    def acquire(self) -> None:
        with self._lock:
            if self._inflight >= self._limit:
                self._shed += 1
                inflight = self._inflight
                metrics = self._metrics
            else:
                self._inflight += 1
                self._admitted += 1
                inflight = None
                metrics = self._metrics
        if inflight is not None:
            if metrics is not None:
                metrics.counter("repro_admission_shed_total").inc()
            raise OverloadError(inflight, self._limit)
        if metrics is not None:
            metrics.counter("repro_admission_admitted_total").inc()

    def release(self) -> None:
        with self._lock:
            if self._inflight <= 0:
                raise RuntimeError("release() without a matching acquire()")
            self._inflight -= 1


@dataclass(frozen=True, slots=True)
class QuotaConfig:
    """Token-bucket parameters: sustained ``rate`` queries/second with
    bursts up to ``burst`` queries."""

    rate: float
    burst: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")


class TenantQuotas:
    """Per-tenant token buckets in front of admission.

    Each tenant gets its own bucket (``overrides`` wins over the
    default).  ``clock`` is injectable so tests drive refill
    deterministically without sleeping.
    """

    def __init__(
        self,
        default: QuotaConfig,
        overrides: dict[str, QuotaConfig] | None = None,
        clock=time.monotonic,
    ):
        self._default = default
        self._overrides = dict(overrides or {})
        self._clock = clock
        #: tenant -> [tokens, last_refill_time]
        self._buckets: dict[str, list[float]] = {}
        self._rejected = 0
        self._metrics = None
        self._lock = threading.Lock()

    @property
    def rejected(self) -> int:
        return self._rejected

    def bind_metrics(self, metrics) -> None:
        """Publish per-tenant rejection counters into ``metrics``."""
        self._metrics = metrics

    def config_for(self, tenant: str) -> QuotaConfig:
        return self._overrides.get(tenant, self._default)

    def check(self, tenant: str) -> None:
        """Spend one token or raise :class:`QuotaExceededError` with the
        refill horizon."""
        cfg = self.config_for(tenant)
        now = self._clock()
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = [float(cfg.burst), now]
                self._buckets[tenant] = bucket
            tokens, last = bucket
            tokens = min(cfg.burst, tokens + (now - last) * cfg.rate)
            if tokens < 1.0:
                bucket[0] = tokens
                bucket[1] = now
                self._rejected += 1
                metrics = self._metrics
                if metrics is not None:
                    metrics.counter("repro_quota_rejected_total",
                                    labels={"tenant": tenant}).inc()
                raise QuotaExceededError(
                    tenant, retry_after_seconds=(1.0 - tokens) / cfg.rate)
            bucket[0] = tokens - 1.0
            bucket[1] = now

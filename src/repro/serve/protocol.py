"""The wire vocabulary between the serving front door and shard workers.

Everything crossing a worker queue is plain picklable data: frozen
dataclasses of scalars, :class:`~repro.workload.query.Query` values and
numpy column payloads.  Result records travel as ``{field: ndarray}``
dicts (:func:`dataset_to_payload`) rather than :class:`Dataset` objects
so the protocol owns the representation — the arrays round-trip
bit-exactly through pickle, which is what keeps the sharded answer
bit-equal to the single-process one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import Dataset
from repro.data.record import FIELD_NAMES
from repro.obs.distributed import TraceContext
from repro.workload.query import Query


def dataset_to_payload(dataset: Dataset) -> dict[str, np.ndarray]:
    """A dataset's columns as a plain picklable dict."""
    return dataset.columns


def payload_to_dataset(payload: dict[str, np.ndarray]) -> Dataset:
    """Rebuild a dataset from a :func:`dataset_to_payload` dict."""
    return Dataset({name: payload[name] for name in FIELD_NAMES})


def concat_payloads(payloads) -> Dataset:
    """Union the per-shard partial results of one query (shard order)."""
    return Dataset.concat(payload_to_dataset(p) for p in payloads)


@dataclass(frozen=True, slots=True)
class QueryTask:
    """One query of a batch, tagged with its batch-local index."""

    index: int
    query: Query


@dataclass(frozen=True, slots=True)
class ShardRequest:
    """Execute a batch of queries against one pinned replica.

    The front door routes once and pins ``replica`` for the whole
    fan-out; every shard answers the same queries from the same replica,
    so the per-shard partials union to the full result (ownership masks
    partition each replica exactly once across shards).

    ``trace`` carries the front door's dispatch-span context (plus the
    batch's earliest deadline) into the worker, so engine spans in the
    worker process parent under the originating request's trace instead
    of orphaning.  None when tracing is off — the frame costs nothing.
    """

    request_id: int
    replica: str
    tasks: tuple[QueryTask, ...]
    trace: TraceContext | None = None


@dataclass(frozen=True, slots=True)
class ShardResponse:
    """One shard's answer to a :class:`ShardRequest`.

    ``results`` maps task index to the shard's partial records payload;
    ``failures`` maps task index to a structured error string for
    queries this shard could not serve from the pinned replica.  A task
    index appears in exactly one of the two.
    """

    request_id: int
    shard_id: int
    results: dict[int, dict[str, np.ndarray]] = field(default_factory=dict)
    failures: dict[int, str] = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class MetricsRequest:
    """Ask a shard for its telemetry snapshot."""

    request_id: int


@dataclass(frozen=True, slots=True)
class MetricsResponse:
    request_id: int
    shard_id: int
    snapshot: dict


@dataclass(frozen=True, slots=True)
class TraceRequest:
    """Ask a shard for its retained trace spans (as plain dicts);
    ``clear`` drains the worker's ring buffer after the read so a
    periodic collector never double-counts."""

    request_id: int
    clear: bool = False


@dataclass(frozen=True, slots=True)
class TraceResponse:
    request_id: int
    shard_id: int
    spans: tuple[dict, ...] = ()


#: Queue sentinel: a worker receiving ``None`` drains out; it echoes
#: ``None`` on its response queue so the front door's reader exits too.
SHUTDOWN = None

"""The sharded multi-worker serving tier (ROADMAP: production-scale BLOT).

``repro.serve`` turns the single-process engine into a deployment shape:
the replica set is sharded across worker processes
(:class:`~repro.cluster.ShardAssignment`), an asyncio front door
(:class:`ShardServer`) coalesces concurrent range queries into batched
``execute_workload`` calls per shard (:class:`Batcher`), admission
control and per-tenant quotas shed load with structured errors
(:class:`AdmissionController`, :class:`TenantQuotas`), and a simulated
fleet (:func:`run_fleet`) provides the mixed read traffic.

With ``ShardServer(tracing=True)`` the tier is end-to-end traceable:
request/batch/dispatch spans at the front door, a
:class:`~repro.obs.distributed.TraceContext` on every
:class:`ShardRequest` frame, and per-worker span streams collected by
:class:`TraceRequest` that
:func:`~repro.obs.distributed.stitch_traces` reassembles into one tree
per request.  Request latencies feed mergeable quantile sketches and
an optional per-tenant :class:`~repro.obs.SLOEngine`.

The enabling API is :class:`~repro.storage.StoreConfig`: a picklable
store recipe every ``spawn``-started worker rehydrates with
``open_store(config)`` — no mmap view, thread pool or recorder ever
crosses a process boundary.  See ``docs/serving.md``.
"""

from repro.serve.admission import AdmissionController, QuotaConfig, TenantQuotas
from repro.serve.batcher import Batcher
from repro.serve.fleet import FleetReport, FleetSpec, fleet_queries, run_fleet
from repro.serve.protocol import (
    MetricsRequest,
    MetricsResponse,
    QueryTask,
    ShardRequest,
    ShardResponse,
    TraceRequest,
    TraceResponse,
    concat_payloads,
    dataset_to_payload,
    payload_to_dataset,
)
from repro.serve.server import WORKER_MODES, ShardServer
from repro.serve.worker import (
    open_shard_store,
    pinned_plan,
    serve_request,
    shard_worker_main,
)

__all__ = [
    "AdmissionController",
    "Batcher",
    "FleetReport",
    "FleetSpec",
    "MetricsRequest",
    "MetricsResponse",
    "QueryTask",
    "QuotaConfig",
    "ShardRequest",
    "ShardResponse",
    "ShardServer",
    "TenantQuotas",
    "TraceRequest",
    "TraceResponse",
    "WORKER_MODES",
    "concat_payloads",
    "dataset_to_payload",
    "fleet_queries",
    "open_shard_store",
    "payload_to_dataset",
    "pinned_plan",
    "run_fleet",
    "serve_request",
    "shard_worker_main",
]

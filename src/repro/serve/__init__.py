"""The sharded multi-worker serving tier (ROADMAP: production-scale BLOT).

``repro.serve`` turns the single-process engine into a deployment shape:
the replica set is sharded across worker processes
(:class:`~repro.cluster.ShardAssignment`), an asyncio front door
(:class:`ShardServer`) coalesces concurrent range queries into batched
``execute_workload`` calls per shard (:class:`Batcher`), admission
control and per-tenant quotas shed load with structured errors
(:class:`AdmissionController`, :class:`TenantQuotas`), and a simulated
fleet (:func:`run_fleet`) provides the mixed read traffic.

The enabling API is :class:`~repro.storage.StoreConfig`: a picklable
store recipe every ``spawn``-started worker rehydrates with
``open_store(config)`` — no mmap view, thread pool or recorder ever
crosses a process boundary.  See ``docs/serving.md``.
"""

from repro.serve.admission import AdmissionController, QuotaConfig, TenantQuotas
from repro.serve.batcher import Batcher
from repro.serve.fleet import FleetReport, FleetSpec, fleet_queries, run_fleet
from repro.serve.protocol import (
    MetricsRequest,
    MetricsResponse,
    QueryTask,
    ShardRequest,
    ShardResponse,
    concat_payloads,
    dataset_to_payload,
    payload_to_dataset,
)
from repro.serve.server import WORKER_MODES, ShardServer
from repro.serve.worker import (
    open_shard_store,
    pinned_plan,
    serve_request,
    shard_worker_main,
)

__all__ = [
    "AdmissionController",
    "Batcher",
    "FleetReport",
    "FleetSpec",
    "MetricsRequest",
    "MetricsResponse",
    "QueryTask",
    "QuotaConfig",
    "ShardRequest",
    "ShardResponse",
    "ShardServer",
    "TenantQuotas",
    "WORKER_MODES",
    "concat_payloads",
    "dataset_to_payload",
    "fleet_queries",
    "open_shard_store",
    "payload_to_dataset",
    "pinned_plan",
    "run_fleet",
    "serve_request",
    "shard_worker_main",
]

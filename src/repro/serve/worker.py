"""The shard worker: one process (or thread) owning a slice of every replica.

A worker rehydrates the store from the pickled
:class:`~repro.storage.StoreConfig` it was spawned with — no live
handle ever crosses the process boundary — and masks each replica down
to the units its :class:`~repro.cluster.ShardAssignment` shard owns.
The engine's scan paths treat masked (``None``) unit keys as partitions
contributing no records, so a worker's answer is exactly the slice of
the full answer its shard is responsible for.

Workers never fail over or repair on their own: ownership masks are
per-replica, so a worker switching replicas unilaterally would return a
slice of a *different* partitioning than its peers — duplicated and
missing records.  Failover is the front door's job: a worker reports
per-query structured failures and the server re-dispatches those
queries, pinned to the next-ranked replica, to every shard at once.

Tracing: when a request frame carries a
:class:`~repro.obs.distributed.TraceContext`, the worker opens a
``shard_serve`` span under the front door's dispatch span and threads
its own context into :class:`~repro.storage.options.ExecOptions`, so
the engine's ``workload``/``query``/``scan`` spans land in the worker's
recorder already parented into the originating request's trace.  The
front door collects them later with a
:class:`~repro.serve.protocol.TraceRequest`.  An expired deadline on
the frame fails every task structurally instead of scanning.
"""

from __future__ import annotations

import time
from dataclasses import replace

import numpy as np

from repro.costmodel.model import RoutingPlan
from repro.errors import DeadlineExceededError
from repro.obs.distributed import TraceContext
from repro.obs.trace import NULL_RECORDER
from repro.serve.protocol import (
    MetricsRequest,
    MetricsResponse,
    ShardRequest,
    ShardResponse,
    TraceRequest,
    TraceResponse,
    dataset_to_payload,
)
from repro.storage.config import StoreConfig, hydrate_store
from repro.storage.options import ExecOptions
from repro.workload.query import Workload


def open_shard_store(config: StoreConfig, assignment, shard_id: int):
    """Hydrate this shard's view of the store: every replica reopened
    from its manifest, unit keys masked to the shard's owned set."""
    return hydrate_store(
        config,
        replica_transform=lambda r: assignment.mask_replica(r, shard_id),
    )


def pinned_plan(replica_name: str, n_queries: int) -> RoutingPlan:
    """A degenerate routing plan pinning every query to one replica —
    how the front door's routing decision is carried into
    ``execute_workload`` on each shard."""
    return RoutingPlan(
        replica_names=(replica_name,),
        assignments=np.zeros(n_queries, dtype=np.intp),
        costs=np.zeros((n_queries, 1), dtype=np.float64),
    )


def _worker_options(options: ExecOptions | None) -> ExecOptions:
    base = options if options is not None else ExecOptions()
    # Coordinated failover: the server owns replica switching.
    return replace(base, failover=False, repair=False)


def _recorder_of(store):
    obs = getattr(store, "observability", None)
    return obs.tracer if obs is not None else NULL_RECORDER


def serve_request(store, request: ShardRequest, shard_id: int,
                  options: ExecOptions) -> ShardResponse:
    """Answer one batched request against this shard's masked store.

    The batch path decodes each owned partition once across all queries;
    if any partition read fails the whole ``execute_workload`` call
    aborts (it never returns partial result sets), so the worker falls
    back to per-query execution to isolate exactly which queries the
    pinned replica cannot serve here.
    """
    ctx = request.trace
    if ctx is not None and ctx.deadline is not None:
        now = time.time()
        if now > ctx.deadline:
            err = DeadlineExceededError(ctx.deadline, now)
            return ShardResponse(
                request_id=request.request_id, shard_id=shard_id,
                failures={task.index: f"{type(err).__name__}: {err}"
                          for task in request.tasks})
    if ctx is not None and ctx.trace_id:
        rec = _recorder_of(store)
        shard_span = rec.start("shard_serve", context=ctx, shard=shard_id,
                               replica=request.replica,
                               n_tasks=len(request.tasks))
        options = replace(
            options, trace=True,
            trace_context=TraceContext(trace_id=shard_span.trace_id,
                                       parent_span_id=shard_span.span_id,
                                       tenant=ctx.tenant,
                                       deadline=ctx.deadline))
    else:
        shard_span = None
    queries = [task.query for task in request.tasks]
    results: dict[int, dict[str, np.ndarray]] = {}
    failures: dict[int, str] = {}
    try:
        try:
            outcome = store.execute_workload(
                Workload.unweighted(queries),
                plan=pinned_plan(request.replica, len(queries)),
                options=options,
            )
            for task, qr in zip(request.tasks, outcome.results):
                results[task.index] = dataset_to_payload(qr.records)
        except Exception:
            for task in request.tasks:
                try:
                    qr = store.query(task.query, replica=request.replica,
                                     options=options)
                    results[task.index] = dataset_to_payload(qr.records)
                except Exception as exc:
                    failures[task.index] = f"{type(exc).__name__}: {exc}"
    finally:
        if shard_span is not None:
            shard_span.annotate(results=len(results),
                                failures=len(failures))
            shard_span.finish()
    return ShardResponse(request_id=request.request_id, shard_id=shard_id,
                         results=results, failures=failures)


def _metrics_snapshot(store) -> dict:
    obs = store.observability
    if obs is None:
        return {"counters": [], "gauges": [], "histograms": [],
                "quantiles": []}
    return obs.metrics.snapshot()


def _trace_spans(store, clear: bool) -> tuple[dict, ...]:
    rec = _recorder_of(store)
    spans = tuple(s.to_dict() for s in rec.spans())
    if clear:
        rec.clear()
    return spans


def shard_worker_main(config: StoreConfig, assignment, shard_id: int,
                      request_queue, response_queue,
                      options: ExecOptions | None = None) -> None:
    """The worker loop: ``spawn`` target for process workers, ``Thread``
    target for in-process ones.  Exits on the ``None`` sentinel, echoing
    it so the front door's response reader unblocks."""
    opts = _worker_options(options)
    store = open_shard_store(config, assignment, shard_id)
    try:
        while True:
            message = request_queue.get()
            if message is None:
                break
            if isinstance(message, MetricsRequest):
                response_queue.put(MetricsResponse(
                    request_id=message.request_id,
                    shard_id=shard_id,
                    snapshot=_metrics_snapshot(store),
                ))
                continue
            if isinstance(message, TraceRequest):
                response_queue.put(TraceResponse(
                    request_id=message.request_id,
                    shard_id=shard_id,
                    spans=_trace_spans(store, message.clear),
                ))
                continue
            response_queue.put(serve_request(store, message, shard_id, opts))
    finally:
        store.close()
        response_queue.put(None)

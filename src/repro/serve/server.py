"""The serving front door: routing, batching, fan-out, coordinated failover.

A :class:`ShardServer` owns

- a *router* store — a full (unmasked) :class:`~repro.storage.BlotStore`
  hydrated from the same :class:`~repro.storage.StoreConfig` the workers
  get, used only for Eq. 6–7 cost routing, never for scanning;
- ``n_shards`` workers, each holding the masked shard view of every
  replica (see :mod:`repro.serve.worker`);
- the admission / quota gate and the query :class:`~repro.serve.Batcher`.

**Coordinated failover.** The server routes each batch once, pins the
chosen replica, and dispatches the same assignment to every shard.  A
shard that cannot serve a query from the pinned replica reports a
structured failure; the server then re-dispatches that query — to *all*
shards, pinned to the next replica in the plan's cost ranking —
discarding any partials from the failed round.  Only this keeps the
union bit-equal: ownership masks are per-replica, so shards must always
agree on which replica a query reads.  A query that exhausts the
ranking raises :class:`~repro.errors.DegradedReadError`, never a
partial result.

**Distributed tracing** (``tracing=True``): every ``query()`` call
opens a ``request`` root span under a fresh 128-bit trace id; the batch
span parents under the *first* request of the batch and lists the
others as ``links``; each per-replica round gets a ``dispatch`` span
whose :class:`~repro.obs.distributed.TraceContext` rides the
:class:`~repro.serve.protocol.ShardRequest` frame into the workers, so
engine spans in other processes parent back into the originating
request.  :meth:`trace_snapshot` / :meth:`dump_traces` collect the
per-worker streams for :func:`~repro.obs.distributed.stitch_traces`.
Tracing off is the :data:`~repro.obs.trace.NULL_RECORDER` no-op path.

**SLO + quantiles.** The front door always carries its own
:class:`~repro.obs.Observability` bundle: request outcomes and
latencies land in ``repro_requests_total{tenant,outcome}`` and the
mergeable ``repro_request_seconds{tenant}`` sketch (plus
``repro_shard_dispatch_seconds{shard}`` per fan-out leg), and — when an
:class:`~repro.obs.SLOEngine` is attached — feed per-tenant burn-rate
evaluation.  Quota rejections are excluded from the SLO stream (the
client misbehaved, not the service); sheds and degraded reads count
against availability.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import time
from dataclasses import dataclass, replace

from repro.cluster.placement import ShardAssignment, assign_shards
from repro.data.dataset import Dataset
from repro.errors import (
    DeadlineExceededError,
    DegradedReadError,
    OverloadError,
    QuotaExceededError,
)
from repro.obs import Observability
from repro.obs.aggregate import merge_metric_snapshots
from repro.obs.distributed import TraceContext, new_trace_id
from repro.obs.trace import NULL_RECORDER
from repro.serve.admission import AdmissionController, TenantQuotas
from repro.serve.batcher import Batcher
from repro.serve.protocol import (
    MetricsRequest,
    QueryTask,
    ShardRequest,
    TraceRequest,
    concat_payloads,
)
from repro.serve.worker import shard_worker_main
from repro.storage.config import StoreConfig, hydrate_store
from repro.storage.options import ExecOptions
from repro.workload.query import Query, Workload

WORKER_MODES = ("process", "thread")


@dataclass(slots=True)
class _Envelope:
    """One in-flight request travelling through the batcher: the query
    plus the tracing/deadline context the flush path needs to resolve
    it.  The batcher treats it opaquely."""

    query: Query
    tenant: str
    span: object  # the request root span handle (null when tracing off)
    deadline: float | None  # absolute ``time.time()`` seconds


class ShardServer:
    """An asyncio serving tier over ``n_shards`` store workers.

    ``worker_mode="process"`` starts real ``spawn`` processes (the
    deployment shape; proves no live handle crosses the boundary);
    ``"thread"`` runs the same worker loop on threads (deterministic
    and cheap — the default for tests and benchmarks).
    """

    def __init__(
        self,
        config: StoreConfig,
        n_shards: int = 2,
        sharding: str = "hash",
        worker_mode: str = "thread",
        window_seconds: float = 0.002,
        max_batch: int = 64,
        max_inflight: int = 256,
        quotas: TenantQuotas | None = None,
        options: ExecOptions | None = None,
        tracing: bool = False,
        observability: Observability | None = None,
        slo=None,
    ):
        if worker_mode not in WORKER_MODES:
            raise ValueError(
                f"unknown worker_mode {worker_mode!r}; have {WORKER_MODES}")
        self._config = config
        self._n_shards = int(n_shards)
        self._sharding = sharding
        self._worker_mode = worker_mode
        self._options = options
        self._tracing = bool(tracing)
        #: The front door's own telemetry bundle — always present, so
        #: admission/quota/request counters land somewhere even when the
        #: store config carries no observability.
        self.obs = observability if observability is not None \
            else Observability.create()
        self._tracer = self.obs.tracer if self._tracing else NULL_RECORDER
        self.slo = slo
        self.admission = AdmissionController(max_inflight,
                                             metrics=self.obs.metrics)
        self.quotas = quotas
        if quotas is not None:
            quotas.bind_metrics(self.obs.metrics)
        self._batcher = Batcher(self._flush_batch,
                                window_seconds=window_seconds,
                                max_batch=max_batch)
        self._router = None
        self._assignment: ShardAssignment | None = None
        self._workers: list = []
        self._request_queues: list = []
        self._response_queues: list = []
        self._readers: list[asyncio.Task] = []
        self._pending: dict[int, asyncio.Future] = {}
        self._ids = itertools.count()
        self._started = False
        self.failovers = 0
        self.degraded = 0
        self.queries_served = 0

    # -- lifecycle ---------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return self._n_shards

    @property
    def tracing(self) -> bool:
        return self._tracing

    @property
    def assignment(self) -> ShardAssignment:
        if self._assignment is None:
            raise RuntimeError("server not started")
        return self._assignment

    @property
    def router(self):
        """The full (unmasked) store the front door routes with."""
        if self._router is None:
            raise RuntimeError("server not started")
        return self._router

    async def start(self) -> None:
        if self._started:
            raise RuntimeError("server already started")
        self._router = hydrate_store(self._config)
        names = sorted(self._router.replica_names())
        self._assignment = assign_shards(
            [self._router.replica(name) for name in names],
            self._n_shards, self._sharding)
        # Tracing needs a recorder in every worker: force the bundle on
        # even when the caller's config was built without one.
        worker_config = self._config
        if self._tracing and not worker_config.observability:
            worker_config = replace(worker_config, observability=True)
        if self._worker_mode == "process":
            import multiprocessing as mp

            ctx = mp.get_context("spawn")
            make_queue = ctx.Queue
            def make_worker(args):
                return ctx.Process(target=shard_worker_main, args=args,
                                   daemon=True)
        else:
            import queue as queue_mod
            import threading

            make_queue = queue_mod.Queue
            def make_worker(args):
                return threading.Thread(target=shard_worker_main, args=args,
                                        daemon=True)
        loop = asyncio.get_running_loop()
        for shard_id in range(self._n_shards):
            request_q = make_queue()
            response_q = make_queue()
            worker = make_worker((worker_config, self._assignment, shard_id,
                                  request_q, response_q, self._options))
            worker.start()
            self._request_queues.append(request_q)
            self._response_queues.append(response_q)
            self._workers.append(worker)
            self._readers.append(loop.create_task(
                self._read_responses(response_q)))
        self._started = True

    async def stop(self) -> None:
        if not self._started:
            return
        await self._batcher.drain()
        for request_q in self._request_queues:
            request_q.put(None)
        if self._readers:
            await asyncio.gather(*self._readers, return_exceptions=True)
        loop = asyncio.get_running_loop()
        for worker in self._workers:
            await loop.run_in_executor(None, lambda w=worker: w.join(10))
        self._router.close()
        self._started = False

    async def __aenter__(self) -> "ShardServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- the query surface -------------------------------------------------

    async def query(self, query: Query, tenant: str = "default",
                    deadline_seconds: float | None = None) -> Dataset:
        """Admit, batch, shard and answer one range query.

        Raises :class:`~repro.errors.QuotaExceededError` /
        :class:`~repro.errors.OverloadError` at the gate,
        :class:`~repro.errors.DeadlineExceededError` when
        ``deadline_seconds`` elapses before dispatch, and
        :class:`~repro.errors.DegradedReadError` when every replica
        failed for this query — never a partial result.
        """
        if not self._started:
            raise RuntimeError("server not started")
        t0 = time.perf_counter()
        deadline = (time.time() + deadline_seconds
                    if deadline_seconds is not None else None)
        tracer = self._tracer
        ctx = (TraceContext(trace_id=new_trace_id(), tenant=tenant,
                            deadline=deadline)
               if self._tracing else None)
        root = tracer.start("request", context=ctx, tenant=tenant)
        outcome = "ok"
        try:
            if self.quotas is not None:
                with tracer.start("quota", parent=root, tenant=tenant):
                    self.quotas.check(tenant)
            with tracer.start("admission", parent=root):
                self.admission.acquire()
            try:
                records = await self._batcher.submit(
                    _Envelope(query, tenant, root, deadline))
            finally:
                self.admission.release()
            self.queries_served += 1
            return records
        except QuotaExceededError:
            outcome = "quota_rejected"
            raise
        except OverloadError:
            outcome = "shed"
            raise
        except DeadlineExceededError:
            outcome = "deadline"
            raise
        except DegradedReadError:
            outcome = "degraded"
            raise
        except BaseException:
            outcome = "error"
            raise
        finally:
            latency = time.perf_counter() - t0
            root.annotate(outcome=outcome)
            root.finish()
            metrics = self.obs.metrics
            metrics.counter("repro_requests_total",
                            labels={"tenant": tenant,
                                    "outcome": outcome}).inc()
            metrics.quantile_sketch("repro_request_seconds",
                                    labels={"tenant": tenant}
                                    ).observe(latency)
            if outcome == "deadline":
                metrics.counter("repro_deadline_exceeded_total").inc()
            if self.slo is not None and outcome != "quota_rejected":
                self.slo.record(tenant, ok=(outcome == "ok"),
                                latency_seconds=latency)

    async def execute(self, queries, tenant: str = "default") -> list:
        """Submit many queries concurrently; returns per-query results
        in order, with the raised exception object in an errored
        query's slot (shed/degraded queries never silently vanish)."""
        return await asyncio.gather(
            *(self.query(q, tenant=tenant) for q in queries),
            return_exceptions=True,
        )

    # -- batched dispatch with coordinated failover ------------------------

    async def _flush_batch(self, batch) -> None:
        # Dedupe: concurrent clients may submit identical queries, and
        # both Workload and the engine want unique query sets.
        order: list[Query] = []
        pairs_by_query: dict[Query, list] = {}
        for envelope, future in batch:
            if envelope.query not in pairs_by_query:
                pairs_by_query[envelope.query] = []
                order.append(envelope.query)
            pairs_by_query[envelope.query].append((envelope, future))

        # Expire dead envelopes before any work is dispatched; a query
        # whose every waiter is past deadline is dropped entirely.
        now = time.time()
        for query in list(order):
            live = []
            for envelope, future in pairs_by_query[query]:
                if envelope.deadline is not None and now > envelope.deadline:
                    if not future.done():
                        future.set_exception(
                            DeadlineExceededError(envelope.deadline, now))
                else:
                    live.append((envelope, future))
            if live:
                pairs_by_query[query] = live
            else:
                order.remove(query)
                del pairs_by_query[query]
        if not order:
            return

        envelopes = [e for q in order for e, _f in pairs_by_query[q]]
        deadlines = [e.deadline for e in envelopes if e.deadline is not None]
        batch_deadline = min(deadlines) if deadlines else None
        # The batch span parents under the first request of the batch
        # (the "owner"); the other coalesced requests are recorded as
        # span links so the stitcher can graft the shared subtree into
        # each of their trees.
        owner = envelopes[0]
        tracer = self._tracer
        batch_span = tracer.start("batch", parent=owner.span,
                                  n_queries=len(order),
                                  n_requests=len(envelopes))
        links = [[e.span.trace_id, e.span.span_id]
                 for e in envelopes[1:] if e.span.span_id]
        if links:
            batch_span.annotate(links=links)

        plan = self._router.route_workload(Workload.unweighted(order))
        rankings = [plan.ranking_for(i) for i in range(len(order))]
        rank_pos = [0] * len(order)
        attempts: list[list] = [[] for _ in order]
        outcome: dict[int, object] = {}
        pending = set(range(len(order)))
        rounds = 0

        try:
            while pending:
                rounds += 1
                groups: dict[str, list[int]] = {}
                for i in sorted(pending):
                    groups.setdefault(rankings[i][rank_pos[i]], []).append(i)
                dispatches = [
                    self._dispatch(
                        replica,
                        tuple(QueryTask(i, order[i]) for i in idxs),
                        parent=batch_span,
                        tenant=owner.tenant,
                        deadline=batch_deadline)
                    for replica, idxs in groups.items()
                ]
                all_responses = await asyncio.gather(*dispatches)
                for (replica, idxs), responses in zip(groups.items(),
                                                      all_responses):
                    responses = sorted(responses, key=lambda r: r.shard_id)
                    for i in idxs:
                        errors = [r.failures[i] for r in responses
                                  if i in r.failures]
                        if not errors:
                            if rank_pos[i] > 0:
                                self.failovers += 1
                            outcome[i] = concat_payloads(
                                r.results[i] for r in responses)
                            pending.discard(i)
                            continue
                        attempts[i].append((replica, RuntimeError(errors[0])))
                        tracer.event("failover", parent=batch_span,
                                     query=i, replica=replica,
                                     error=errors[0])
                        rank_pos[i] += 1
                        if rank_pos[i] >= len(rankings[i]):
                            self.degraded += 1
                            outcome[i] = DegradedReadError(
                                f"query {order[i]} could not be served by "
                                "any replica", tuple(attempts[i]))
                            pending.discard(i)
        finally:
            batch_span.annotate(rounds=rounds,
                                degraded=sum(
                                    1 for r in outcome.values()
                                    if isinstance(r, DegradedReadError)))
            batch_span.finish()

        for i, query in enumerate(order):
            result = outcome[i]
            for _envelope, future in pairs_by_query[query]:
                if future.done():
                    continue
                if isinstance(result, BaseException):
                    future.set_exception(result)
                else:
                    future.set_result(result)

    async def _dispatch(self, replica: str, tasks, parent=None,
                        tenant: str = "", deadline: float | None = None
                        ) -> list:
        """Send one pinned-replica task group to every shard and gather
        the per-shard responses.  The dispatch span's context rides the
        request frame so worker-side spans parent under it."""
        tracer = self._tracer
        span = tracer.start("dispatch", parent=parent, replica=replica,
                            queries=len(tasks), shards=self._n_shards)
        ctx = None
        if span.span_id or deadline is not None:
            ctx = TraceContext(trace_id=span.trace_id,
                               parent_span_id=span.span_id or None,
                               tenant=tenant, deadline=deadline)
        loop = asyncio.get_running_loop()
        t0 = time.perf_counter()
        waits = []
        for shard_id in range(self._n_shards):
            request_id = next(self._ids)
            future = loop.create_future()
            self._pending[request_id] = future
            self._request_queues[shard_id].put(
                ShardRequest(request_id=request_id, replica=replica,
                             tasks=tasks, trace=ctx))
            waits.append((shard_id, future))

        async def wait_one(shard_id, future):
            response = await future
            self.obs.metrics.quantile_sketch(
                "repro_shard_dispatch_seconds",
                labels={"shard": str(shard_id)},
            ).observe(time.perf_counter() - t0)
            return response

        try:
            responses = await asyncio.gather(
                *(wait_one(s, f) for s, f in waits))
            span.annotate(failures=sum(
                len(r.failures) for r in responses))
            return responses
        finally:
            span.finish()

    async def _read_responses(self, response_q) -> None:
        loop = asyncio.get_running_loop()
        while True:
            message = await loop.run_in_executor(None, response_q.get)
            if message is None:
                return
            future = self._pending.pop(message.request_id, None)
            if future is not None and not future.done():
                future.set_result(message)

    # -- observability -----------------------------------------------------

    def server_stats(self) -> dict:
        """Front-door counters as plain data."""
        return {
            "queries_served": self.queries_served,
            "admitted": self.admission.admitted,
            "shed": self.admission.shed,
            "quota_rejected": (self.quotas.rejected
                               if self.quotas is not None else 0),
            "failovers": self.failovers,
            "degraded": self.degraded,
            "batches_flushed": self._batcher.batches_flushed,
            "queries_batched": self._batcher.queries_batched,
        }

    async def metrics_snapshot(self) -> dict:
        """Per-shard telemetry plus the cross-shard aggregate.

        ``shards`` holds each worker's
        :meth:`~repro.obs.MetricsRegistry.snapshot`; ``frontdoor`` the
        server's own registry (admission, quotas, request latencies);
        ``merged`` is their
        :func:`~repro.obs.aggregate.merge_metric_snapshots` union;
        ``server`` the front-door counters.  When an SLO engine is
        attached, ``slo`` carries its freshly evaluated status."""
        loop = asyncio.get_running_loop()
        waits = []
        for shard_id in range(self._n_shards):
            request_id = next(self._ids)
            future = loop.create_future()
            self._pending[request_id] = future
            self._request_queues[shard_id].put(MetricsRequest(request_id))
            waits.append(future)
        responses = await asyncio.gather(*waits)
        shard_snapshots = {r.shard_id: r.snapshot for r in responses}
        frontdoor = self.obs.metrics.snapshot()
        snapshot = {
            "server": self.server_stats(),
            "frontdoor": frontdoor,
            "shards": shard_snapshots,
            "merged": merge_metric_snapshots(
                [frontdoor]
                + [shard_snapshots[s] for s in sorted(shard_snapshots)]),
        }
        if self.slo is not None:
            self.slo.evaluate()
            snapshot["slo"] = {
                "objectives": self.slo.objective_dicts(),
                "status": self.slo.status_dicts(),
                "firing": [{"tenant": t, "objective": o}
                           for t, o in self.slo.firing],
                "audit": self.slo.audit_dicts(),
            }
        return snapshot

    async def trace_snapshot(self, clear: bool = False) -> dict:
        """Every worker's retained spans plus the front door's own, each
        tagged with a ``worker`` label (``frontdoor`` / ``shard-N``) for
        :func:`~repro.obs.distributed.stitch_traces`."""
        loop = asyncio.get_running_loop()
        waits = []
        for shard_id in range(self._n_shards):
            request_id = next(self._ids)
            future = loop.create_future()
            self._pending[request_id] = future
            self._request_queues[shard_id].put(
                TraceRequest(request_id, clear=clear))
            waits.append(future)
        responses = await asyncio.gather(*waits)
        shards = {
            r.shard_id: [dict(s, worker=f"shard-{r.shard_id}")
                         for s in r.spans]
            for r in responses
        }
        frontdoor = [dict(s.to_dict(), worker="frontdoor")
                     for s in self._tracer.spans()]
        if clear:
            self._tracer.clear()
        return {"frontdoor": frontdoor, "shards": shards}

    async def dump_traces(self, directory, clear: bool = False) -> list:
        """Write per-worker span streams as JSONL files
        (``frontdoor.jsonl``, ``worker-N.jsonl``) under ``directory``
        and return the written paths — the on-disk shape
        :func:`~repro.obs.distributed.stitch_files` consumes."""
        from pathlib import Path

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        snapshot = await self.trace_snapshot(clear=clear)
        paths = []
        streams = [("frontdoor.jsonl", snapshot["frontdoor"])]
        streams += [(f"worker-{shard_id}.jsonl", spans)
                    for shard_id, spans in sorted(
                        snapshot["shards"].items())]
        for name, spans in streams:
            path = directory / name
            with open(path, "w", encoding="utf-8") as fh:
                for span in spans:
                    fh.write(json.dumps(span) + "\n")
            paths.append(path)
        return paths

"""The serving front door: routing, batching, fan-out, coordinated failover.

A :class:`ShardServer` owns

- a *router* store — a full (unmasked) :class:`~repro.storage.BlotStore`
  hydrated from the same :class:`~repro.storage.StoreConfig` the workers
  get, used only for Eq. 6–7 cost routing, never for scanning;
- ``n_shards`` workers, each holding the masked shard view of every
  replica (see :mod:`repro.serve.worker`);
- the admission / quota gate and the query :class:`~repro.serve.Batcher`.

**Coordinated failover.** The server routes each batch once, pins the
chosen replica, and dispatches the same assignment to every shard.  A
shard that cannot serve a query from the pinned replica reports a
structured failure; the server then re-dispatches that query — to *all*
shards, pinned to the next replica in the plan's cost ranking —
discarding any partials from the failed round.  Only this keeps the
union bit-equal: ownership masks are per-replica, so shards must always
agree on which replica a query reads.  A query that exhausts the
ranking raises :class:`~repro.errors.DegradedReadError`, never a
partial result.
"""

from __future__ import annotations

import asyncio
import itertools

from repro.cluster.placement import ShardAssignment, assign_shards
from repro.data.dataset import Dataset
from repro.errors import DegradedReadError
from repro.obs.aggregate import merge_metric_snapshots
from repro.serve.admission import AdmissionController, TenantQuotas
from repro.serve.batcher import Batcher
from repro.serve.protocol import (
    MetricsRequest,
    QueryTask,
    ShardRequest,
    concat_payloads,
)
from repro.serve.worker import shard_worker_main
from repro.storage.config import StoreConfig, hydrate_store
from repro.storage.options import ExecOptions
from repro.workload.query import Query, Workload

WORKER_MODES = ("process", "thread")


class ShardServer:
    """An asyncio serving tier over ``n_shards`` store workers.

    ``worker_mode="process"`` starts real ``spawn`` processes (the
    deployment shape; proves no live handle crosses the boundary);
    ``"thread"`` runs the same worker loop on threads (deterministic
    and cheap — the default for tests and benchmarks).
    """

    def __init__(
        self,
        config: StoreConfig,
        n_shards: int = 2,
        sharding: str = "hash",
        worker_mode: str = "thread",
        window_seconds: float = 0.002,
        max_batch: int = 64,
        max_inflight: int = 256,
        quotas: TenantQuotas | None = None,
        options: ExecOptions | None = None,
    ):
        if worker_mode not in WORKER_MODES:
            raise ValueError(
                f"unknown worker_mode {worker_mode!r}; have {WORKER_MODES}")
        self._config = config
        self._n_shards = int(n_shards)
        self._sharding = sharding
        self._worker_mode = worker_mode
        self._options = options
        self.admission = AdmissionController(max_inflight)
        self.quotas = quotas
        self._batcher = Batcher(self._flush_batch,
                                window_seconds=window_seconds,
                                max_batch=max_batch)
        self._router = None
        self._assignment: ShardAssignment | None = None
        self._workers: list = []
        self._request_queues: list = []
        self._response_queues: list = []
        self._readers: list[asyncio.Task] = []
        self._pending: dict[int, asyncio.Future] = {}
        self._ids = itertools.count()
        self._started = False
        self.failovers = 0
        self.degraded = 0
        self.queries_served = 0

    # -- lifecycle ---------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return self._n_shards

    @property
    def assignment(self) -> ShardAssignment:
        if self._assignment is None:
            raise RuntimeError("server not started")
        return self._assignment

    @property
    def router(self):
        """The full (unmasked) store the front door routes with."""
        if self._router is None:
            raise RuntimeError("server not started")
        return self._router

    async def start(self) -> None:
        if self._started:
            raise RuntimeError("server already started")
        self._router = hydrate_store(self._config)
        names = sorted(self._router.replica_names())
        self._assignment = assign_shards(
            [self._router.replica(name) for name in names],
            self._n_shards, self._sharding)
        if self._worker_mode == "process":
            import multiprocessing as mp

            ctx = mp.get_context("spawn")
            make_queue = ctx.Queue
            def make_worker(args):
                return ctx.Process(target=shard_worker_main, args=args,
                                   daemon=True)
        else:
            import queue as queue_mod
            import threading

            make_queue = queue_mod.Queue
            def make_worker(args):
                return threading.Thread(target=shard_worker_main, args=args,
                                        daemon=True)
        loop = asyncio.get_running_loop()
        for shard_id in range(self._n_shards):
            request_q = make_queue()
            response_q = make_queue()
            worker = make_worker((self._config, self._assignment, shard_id,
                                  request_q, response_q, self._options))
            worker.start()
            self._request_queues.append(request_q)
            self._response_queues.append(response_q)
            self._workers.append(worker)
            self._readers.append(loop.create_task(
                self._read_responses(response_q)))
        self._started = True

    async def stop(self) -> None:
        if not self._started:
            return
        await self._batcher.drain()
        for request_q in self._request_queues:
            request_q.put(None)
        if self._readers:
            await asyncio.gather(*self._readers, return_exceptions=True)
        loop = asyncio.get_running_loop()
        for worker in self._workers:
            await loop.run_in_executor(None, lambda w=worker: w.join(10))
        self._router.close()
        self._started = False

    async def __aenter__(self) -> "ShardServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- the query surface -------------------------------------------------

    async def query(self, query: Query, tenant: str = "default") -> Dataset:
        """Admit, batch, shard and answer one range query.

        Raises :class:`~repro.errors.QuotaExceededError` /
        :class:`~repro.errors.OverloadError` at the gate and
        :class:`~repro.errors.DegradedReadError` when every replica
        failed for this query — never a partial result.
        """
        if not self._started:
            raise RuntimeError("server not started")
        if self.quotas is not None:
            self.quotas.check(tenant)
        self.admission.acquire()
        try:
            records = await self._batcher.submit(query)
        finally:
            self.admission.release()
        self.queries_served += 1
        return records

    async def execute(self, queries, tenant: str = "default") -> list:
        """Submit many queries concurrently; returns per-query results
        in order, with the raised exception object in an errored
        query's slot (shed/degraded queries never silently vanish)."""
        return await asyncio.gather(
            *(self.query(q, tenant=tenant) for q in queries),
            return_exceptions=True,
        )

    # -- batched dispatch with coordinated failover ------------------------

    async def _flush_batch(self, batch) -> None:
        # Dedupe: concurrent clients may submit identical queries, and
        # both Workload and the engine want unique query sets.
        order: list[Query] = []
        futures_by_query: dict[Query, list] = {}
        for query, future in batch:
            if query not in futures_by_query:
                futures_by_query[query] = []
                order.append(query)
            futures_by_query[query].append(future)

        plan = self._router.route_workload(Workload.unweighted(order))
        rankings = [plan.ranking_for(i) for i in range(len(order))]
        rank_pos = [0] * len(order)
        attempts: list[list] = [[] for _ in order]
        outcome: dict[int, object] = {}
        pending = set(range(len(order)))

        while pending:
            groups: dict[str, list[int]] = {}
            for i in sorted(pending):
                groups.setdefault(rankings[i][rank_pos[i]], []).append(i)
            dispatches = [
                self._dispatch(replica,
                               tuple(QueryTask(i, order[i]) for i in idxs))
                for replica, idxs in groups.items()
            ]
            all_responses = await asyncio.gather(*dispatches)
            for (replica, idxs), responses in zip(groups.items(),
                                                  all_responses):
                responses = sorted(responses, key=lambda r: r.shard_id)
                for i in idxs:
                    errors = [r.failures[i] for r in responses
                              if i in r.failures]
                    if not errors:
                        if rank_pos[i] > 0:
                            self.failovers += 1
                        outcome[i] = concat_payloads(
                            r.results[i] for r in responses)
                        pending.discard(i)
                        continue
                    attempts[i].append((replica, RuntimeError(errors[0])))
                    rank_pos[i] += 1
                    if rank_pos[i] >= len(rankings[i]):
                        self.degraded += 1
                        outcome[i] = DegradedReadError(
                            f"query {order[i]} could not be served by any "
                            "replica", tuple(attempts[i]))
                        pending.discard(i)

        for i, query in enumerate(order):
            result = outcome[i]
            for future in futures_by_query[query]:
                if future.done():
                    continue
                if isinstance(result, BaseException):
                    future.set_exception(result)
                else:
                    future.set_result(result)

    async def _dispatch(self, replica: str, tasks) -> list:
        """Send one pinned-replica task group to every shard and gather
        the per-shard responses."""
        loop = asyncio.get_running_loop()
        waits = []
        for shard_id in range(self._n_shards):
            request_id = next(self._ids)
            future = loop.create_future()
            self._pending[request_id] = future
            self._request_queues[shard_id].put(
                ShardRequest(request_id=request_id, replica=replica,
                             tasks=tasks))
            waits.append(future)
        return await asyncio.gather(*waits)

    async def _read_responses(self, response_q) -> None:
        loop = asyncio.get_running_loop()
        while True:
            message = await loop.run_in_executor(None, response_q.get)
            if message is None:
                return
            future = self._pending.pop(message.request_id, None)
            if future is not None and not future.done():
                future.set_result(message)

    # -- observability -----------------------------------------------------

    def server_stats(self) -> dict:
        """Front-door counters as plain data."""
        return {
            "queries_served": self.queries_served,
            "admitted": self.admission.admitted,
            "shed": self.admission.shed,
            "quota_rejected": (self.quotas.rejected
                               if self.quotas is not None else 0),
            "failovers": self.failovers,
            "degraded": self.degraded,
            "batches_flushed": self._batcher.batches_flushed,
            "queries_batched": self._batcher.queries_batched,
        }

    async def metrics_snapshot(self) -> dict:
        """Per-shard telemetry plus the cross-shard aggregate.

        ``shards`` holds each worker's
        :meth:`~repro.obs.MetricsRegistry.snapshot`; ``merged`` is their
        :func:`~repro.obs.aggregate.merge_metric_snapshots` union;
        ``server`` the front-door counters."""
        loop = asyncio.get_running_loop()
        waits = []
        for shard_id in range(self._n_shards):
            request_id = next(self._ids)
            future = loop.create_future()
            self._pending[request_id] = future
            self._request_queues[shard_id].put(MetricsRequest(request_id))
            waits.append(future)
        responses = await asyncio.gather(*waits)
        shard_snapshots = {r.shard_id: r.snapshot for r in responses}
        return {
            "server": self.server_stats(),
            "shards": shard_snapshots,
            "merged": merge_metric_snapshots(
                [shard_snapshots[s] for s in sorted(shard_snapshots)]),
        }

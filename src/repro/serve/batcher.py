"""Coalescing concurrent range queries into batched shard dispatches.

The engine's ``execute_workload`` decodes each involved partition once
per *batch* instead of once per query — but only if concurrent requests
actually arrive as one workload.  The :class:`Batcher` is that funnel:
admitted queries wait up to ``window_seconds`` (or until ``max_batch``
queued) and flush together into one routed, sharded dispatch.
"""

from __future__ import annotations

import asyncio


class Batcher:
    """Window/size-bounded query coalescing on the asyncio loop.

    ``flush`` is an async callable receiving ``[(query, future), ...]``;
    it must resolve every future (result or exception).  Any exception
    escaping ``flush`` itself is propagated to the batch's unresolved
    futures, so a submitter can never hang on a crashed flush.
    """

    def __init__(self, flush, window_seconds: float = 0.002,
                 max_batch: int = 64):
        if window_seconds < 0:
            raise ValueError("window_seconds must be non-negative")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self._flush_cb = flush
        self._window = window_seconds
        self._max_batch = max_batch
        self._pending: list = []
        self._timer: asyncio.TimerHandle | None = None
        self._inflight: set[asyncio.Task] = set()
        self.batches_flushed = 0
        self.queries_batched = 0

    async def submit(self, query):
        """Queue one query; resolves with the flush callback's result
        for it."""
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._pending.append((query, future))
        self.queries_batched += 1
        if len(self._pending) >= self._max_batch:
            self._flush_now()
        elif self._timer is None:
            self._timer = loop.call_later(self._window, self._flush_now)
        return await future

    async def drain(self) -> None:
        """Flush anything pending and wait for in-flight batches."""
        self._flush_now()
        while self._inflight:
            await asyncio.gather(*tuple(self._inflight),
                                 return_exceptions=True)

    def _flush_now(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        self.batches_flushed += 1
        task = asyncio.ensure_future(self._run_flush(batch))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _run_flush(self, batch) -> None:
        try:
            await self._flush_cb(batch)
        except BaseException as exc:  # noqa: BLE001 - must not strand futures
            for _, future in batch:
                if not future.done():
                    future.set_exception(exc)
            if not isinstance(exc, Exception):
                raise

"""A simulated fleet of tenants issuing mixed read traffic.

The paper's motivating deployment is a fleet of tracked vehicles whose
operators query recent movement concurrently.  :func:`run_fleet` stands
in for those operators: ``n_queries`` positioned range queries
(log-uniform extents over the store universe, seed-deterministic),
issued round-robin across tenants with bounded client concurrency, every
outcome accounted — served, shed (:class:`~repro.errors.OverloadError`),
quota-rejected (:class:`~repro.errors.QuotaExceededError`) or degraded
(:class:`~repro.errors.DegradedReadError`).  Nothing is dropped
silently; the report's totals always add up to ``n_queries``.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

import numpy as np

from repro.errors import DegradedReadError, OverloadError, QuotaExceededError
from repro.workload.generator import positioned_random_workload


@dataclass(frozen=True, slots=True)
class FleetSpec:
    """Shape of the simulated read traffic."""

    n_queries: int = 100
    tenants: tuple[str, ...] = ("fleet-a", "fleet-b")
    concurrency: int = 16
    seed: int = 0
    min_fraction: float = 1e-3
    max_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.n_queries < 1:
            raise ValueError("n_queries must be >= 1")
        if not self.tenants:
            raise ValueError("need at least one tenant")
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")


@dataclass(frozen=True, slots=True)
class FleetReport:
    """Outcome accounting for one fleet run (sums to ``n_queries``)."""

    n_queries: int
    served: int
    shed: int
    quota_rejected: int
    degraded: int
    records_returned: int

    def __post_init__(self) -> None:
        total = self.served + self.shed + self.quota_rejected + self.degraded
        if total != self.n_queries:
            raise ValueError(
                f"outcomes sum to {total}, expected {self.n_queries} — "
                "a query outcome was lost"
            )


def fleet_queries(universe, spec: FleetSpec) -> list:
    """The deterministic query stream a spec generates over a universe."""
    workload = positioned_random_workload(
        universe, spec.n_queries, np.random.default_rng(spec.seed),
        min_fraction=spec.min_fraction, max_fraction=spec.max_fraction)
    return workload.queries()


async def run_fleet(server, spec: FleetSpec) -> FleetReport:
    """Drive ``spec``'s traffic through a started
    :class:`~repro.serve.ShardServer` and account every outcome."""
    queries = fleet_queries(server.router.universe, spec)
    gate = asyncio.Semaphore(spec.concurrency)
    served = shed = quota_rejected = degraded = records = 0

    async def issue(i: int, query):
        nonlocal served, shed, quota_rejected, degraded, records
        tenant = spec.tenants[i % len(spec.tenants)]
        async with gate:
            try:
                result = await server.query(query, tenant=tenant)
            except OverloadError:
                shed += 1
            except QuotaExceededError:
                quota_rejected += 1
            except DegradedReadError:
                degraded += 1
            else:
                served += 1
                records += len(result)

    await asyncio.gather(*(issue(i, q) for i, q in enumerate(queries)))
    return FleetReport(
        n_queries=spec.n_queries,
        served=served,
        shed=shed,
        quota_rejected=quota_rejected,
        degraded=degraded,
        records_returned=records,
    )

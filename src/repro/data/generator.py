"""Synthetic taxi-fleet GPS log generator.

The paper evaluates on a proprietary GPS log "collected from more than
4,000 taxis in Shanghai during a month" (65M records, longitude 120-122,
latitude 30-32, 2007-11-01 to 2007-11-29).  That dataset is not available,
so this module simulates an equivalent fleet:

- taxis move on a Manhattan street grid between successive waypoints,
  alternating passenger trips and empty cruising;
- destinations are drawn from a mixture of Gaussian *hotspots* (downtown
  cores) plus a uniform background, reproducing the heavy spatial skew of
  real taxi data;
- positions are sampled every ``sample_interval`` seconds, like real
  AVL/GPS loggers, and carry speed, heading, occupancy, trip id and
  odometer common attributes.

Only the aggregate properties matter to the experiments — record count,
bounding box, spatio-temporal skew and per-column entropy (which drives
compression ratios) — and those are faithfully reproduced; see DESIGN.md §2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import Dataset
from repro.geometry import Box3

#: 2007-11-01 00:00:00 UTC, the start of the paper's observation window.
SHANGHAI_EPOCH = 1193875200.0

#: The paper's dataset bounding box (lon 120-122, lat 30-32, 28 days).
SHANGHAI_BBOX = Box3(120.0, 122.0, 30.0, 32.0, SHANGHAI_EPOCH, SHANGHAI_EPOCH + 28 * 86400.0)

#: Rough km per degree at ~31N; spherical precision is irrelevant here.
_KM_PER_DEG_LON = 95.0
_KM_PER_DEG_LAT = 111.0


@dataclass(frozen=True, slots=True)
class Hotspot:
    """A Gaussian attraction center for trip destinations."""

    x: float
    y: float
    sigma: float
    weight: float


@dataclass(frozen=True, slots=True)
class FleetConfig:
    """Parameters of the synthetic fleet.

    The defaults model a small sample of the Shanghai fleet; scale
    ``num_taxis`` / ``duration`` up for bigger datasets, or use
    :func:`synthetic_shanghai_taxis` which sizes them for a target record
    count.
    """

    num_taxis: int = 50
    start_time: float = SHANGHAI_EPOCH
    duration: float = 86400.0
    sample_interval: float = 30.0
    x_min: float = 120.0
    x_max: float = 122.0
    y_min: float = 30.0
    y_max: float = 32.0
    hotspots: tuple[Hotspot, ...] = (
        Hotspot(121.47, 31.23, 0.08, 0.55),  # downtown core
        Hotspot(121.34, 31.20, 0.05, 0.25),  # airport-ish secondary center
        Hotspot(121.60, 31.15, 0.10, 0.20),  # suburban center
    )
    background_probability: float = 0.15
    occupied_speed_kmh: tuple[float, float] = (25.0, 60.0)
    cruise_speed_kmh: tuple[float, float] = (10.0, 40.0)
    cruise_radius_deg: float = 0.03
    mean_dwell_seconds: float = 120.0
    seed: int = 7

    def bounding_box(self) -> Box3:
        """The configured universe ``U``."""
        return Box3(
            self.x_min, self.x_max, self.y_min, self.y_max,
            self.start_time, self.start_time + self.duration,
        )


@dataclass
class _TaxiState:
    """Mutable per-taxi simulation state."""

    x: float
    y: float
    clock: float
    occupied: int = 0
    trip_id: int = 0
    odometer: float = 0.0


class TaxiFleetGenerator:
    """Simulates a fleet of taxis and emits a :class:`Dataset`.

    Generation is deterministic given ``config.seed``.
    """

    def __init__(self, config: FleetConfig | None = None):
        self.config = config or FleetConfig()

    # -- public API -----------------------------------------------------

    def generate(self) -> Dataset:
        """Simulate every taxi over the configured window."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        parts = []
        for oid in range(cfg.num_taxis):
            taxi_rng = np.random.default_rng(rng.integers(0, 2**63 - 1))
            parts.append(self._simulate_taxi(oid, taxi_rng))
        dataset = Dataset.concat(parts).sorted_by_time()
        return quantize_like_gps_logger(dataset)

    # -- destination sampling ------------------------------------------------

    def _sample_destination(self, rng: np.random.Generator) -> tuple[float, float]:
        """Draw a trip destination from the hotspot mixture."""
        cfg = self.config
        if rng.random() < cfg.background_probability:
            return (
                rng.uniform(cfg.x_min, cfg.x_max),
                rng.uniform(cfg.y_min, cfg.y_max),
            )
        weights = np.array([h.weight for h in cfg.hotspots])
        h = cfg.hotspots[rng.choice(len(cfg.hotspots), p=weights / weights.sum())]
        x = float(np.clip(rng.normal(h.x, h.sigma), cfg.x_min, cfg.x_max))
        y = float(np.clip(rng.normal(h.y, h.sigma), cfg.y_min, cfg.y_max))
        return x, y

    def _sample_cruise_target(
        self, state: _TaxiState, rng: np.random.Generator
    ) -> tuple[float, float]:
        """Short empty-cruise hop around the current position."""
        cfg = self.config
        x = float(np.clip(state.x + rng.uniform(-1, 1) * cfg.cruise_radius_deg,
                          cfg.x_min, cfg.x_max))
        y = float(np.clip(state.y + rng.uniform(-1, 1) * cfg.cruise_radius_deg,
                          cfg.y_min, cfg.y_max))
        return x, y

    # -- per-taxi simulation ---------------------------------------------------

    def _simulate_taxi(self, oid: int, rng: np.random.Generator) -> Dataset:
        cfg = self.config
        end_time = cfg.start_time + cfg.duration
        state = _TaxiState(
            *self._sample_destination(rng),
            clock=cfg.start_time + float(rng.uniform(0, cfg.sample_interval)),
        )
        chunks: list[dict[str, np.ndarray]] = []
        while state.clock < end_time:
            if state.occupied:
                dest = self._sample_destination(rng)
                lo, hi = cfg.occupied_speed_kmh
            else:
                dest = self._sample_cruise_target(state, rng)
                lo, hi = cfg.cruise_speed_kmh
            speed_kmh = float(rng.uniform(lo, hi))
            self._drive_manhattan(oid, state, dest, speed_kmh, end_time, rng, chunks)
            if state.clock >= end_time:
                break
            self._dwell(oid, state, end_time, rng, chunks)
            # Passenger handoff at the waypoint: pickups start a new trip.
            if state.occupied:
                state.occupied = 0
            else:
                state.occupied = 1
                state.trip_id += 1
        return _chunks_to_dataset(chunks)

    def _drive_manhattan(
        self,
        oid: int,
        state: _TaxiState,
        dest: tuple[float, float],
        speed_kmh: float,
        end_time: float,
        rng: np.random.Generator,
        chunks: list[dict[str, np.ndarray]],
    ) -> None:
        """Drive two axis-aligned legs (x first, then y) emitting samples."""
        legs = (
            (dest[0], state.y, "x"),
            (dest[0], dest[1], "y"),
        )
        for leg_x, leg_y, axis in legs:
            if state.clock >= end_time:
                return
            dx_km = (leg_x - state.x) * _KM_PER_DEG_LON
            dy_km = (leg_y - state.y) * _KM_PER_DEG_LAT
            dist_km = abs(dx_km) + abs(dy_km)
            if dist_km < 1e-9:
                continue
            leg_seconds = dist_km / speed_kmh * 3600.0
            t0, t1 = state.clock, min(state.clock + leg_seconds, end_time)
            times = _sample_times(t0, state.clock + leg_seconds, t1, cfg_interval=self.config.sample_interval)
            if times.size:
                cfg = self.config
                frac = (times - t0) / leg_seconds
                # GPS fixes wander a couple of metres around the true path.
                xs = np.clip(
                    state.x + (leg_x - state.x) * frac
                    + rng.normal(0.0, 1.5e-5, times.size),
                    cfg.x_min, cfg.x_max,
                )
                ys = np.clip(
                    state.y + (leg_y - state.y) * frac
                    + rng.normal(0.0, 1.5e-5, times.size),
                    cfg.y_min, cfg.y_max,
                )
                if axis == "x":
                    heading = 90.0 if leg_x >= state.x else 270.0
                else:
                    heading = 0.0 if leg_y >= state.y else 180.0
                n = times.size
                chunks.append({
                    "oid": np.full(n, oid, dtype=np.int32),
                    "t": times,
                    "x": xs,
                    "y": ys,
                    "speed": (speed_kmh + rng.normal(0, 1.5, n)).astype(np.float32),
                    "heading": (heading + rng.normal(0, 4.0, n)).astype(np.float32),
                    "occupied": np.full(n, state.occupied, dtype=np.uint8),
                    "trip_id": np.full(n, state.trip_id, dtype=np.int32),
                    "odometer": (state.odometer + dist_km * frac).astype(np.float32),
                })
            state.odometer += dist_km * min(1.0, (t1 - t0) / leg_seconds)
            state.clock = t1
            travelled = min(1.0, (t1 - t0) / leg_seconds)
            state.x += (leg_x - state.x) * travelled
            state.y += (leg_y - state.y) * travelled
            if state.clock >= end_time:
                return

    def _dwell(
        self,
        oid: int,
        state: _TaxiState,
        end_time: float,
        rng: np.random.Generator,
        chunks: list[dict[str, np.ndarray]],
    ) -> None:
        """Wait at the waypoint (dropoff/pickup), emitting stationary samples."""
        cfg = self.config
        dwell = float(rng.exponential(cfg.mean_dwell_seconds))
        t0, t1 = state.clock, min(state.clock + dwell, end_time)
        times = _sample_times(t0, state.clock + dwell, t1, cfg_interval=cfg.sample_interval)
        if times.size:
            n = times.size
            # Stationary GPS fixes still wander by a couple of metres;
            # perfectly identical coordinates would be unrealistic (and
            # would create irreducible ties for equal-count partitioners).
            chunks.append({
                "oid": np.full(n, oid, dtype=np.int32),
                "t": times,
                "x": np.clip(state.x + rng.normal(0.0, 1.5e-5, n),
                             cfg.x_min, cfg.x_max),
                "y": np.clip(state.y + rng.normal(0.0, 1.5e-5, n),
                             cfg.y_min, cfg.y_max),
                "speed": np.zeros(n, dtype=np.float32),
                "heading": np.full(n, 0.0, dtype=np.float32),
                "occupied": np.full(n, state.occupied, dtype=np.uint8),
                "trip_id": np.full(n, state.trip_id, dtype=np.int32),
                "odometer": np.full(n, state.odometer, dtype=np.float32),
            })
        state.clock = t1


def _sample_times(t0: float, t_leg_end: float, t1: float, cfg_interval: float) -> np.ndarray:
    """GPS sample instants in ``[t0, t1)`` on the logger's fixed cadence."""
    del t_leg_end  # the leg may extend past the window; sampling stops at t1
    if t1 <= t0:
        return np.empty(0, dtype=np.float64)
    first = np.ceil(t0 / cfg_interval) * cfg_interval
    if first < t0:
        first += cfg_interval
    return np.arange(first, t1, cfg_interval, dtype=np.float64)


def quantize_like_gps_logger(dataset: Dataset) -> Dataset:
    """Round columns to the fixed precision a real GPS logger emits.

    Raw AVL feeds carry micro-degree coordinates, tenth-of-unit speeds and
    headings, and centi-km odometers; the simulation's full-double noise
    would otherwise make the data unrealistically incompressible.
    """
    cols = dataset.columns

    def rounded(name: str, decimals: int) -> np.ndarray:
        col = cols[name]
        return (np.round(col.astype(np.float64), decimals)).astype(col.dtype)

    cols["x"] = rounded("x", 6)
    cols["y"] = rounded("y", 6)
    cols["speed"] = rounded("speed", 1)
    cols["heading"] = rounded("heading", 1)
    cols["odometer"] = rounded("odometer", 2)
    return Dataset(cols)


def _chunks_to_dataset(chunks: list[dict[str, np.ndarray]]) -> Dataset:
    from repro.data.record import FIELD_NAMES, empty_columns

    if not chunks:
        return Dataset(empty_columns())
    return Dataset({
        name: np.concatenate([c[name] for c in chunks]) for name in FIELD_NAMES
    })


def synthetic_shanghai_taxis(
    n_records: int,
    seed: int = 7,
    num_taxis: int = 64,
    sample_interval: float = 30.0,
) -> Dataset:
    """A deterministic synthetic stand-in for the paper's Shanghai sample.

    Sizes the simulation window so the fleet produces at least ``n_records``
    samples, then keeps exactly the first ``n_records`` in time order.  The
    bounding box matches the paper (lon 120-122, lat 30-32, November 2007).
    """
    if n_records <= 0:
        raise ValueError("n_records must be positive")
    # Taxis emit roughly one sample per interval while active; oversize by
    # 15% and trim (generation is cheap relative to the experiments).
    duration = n_records * sample_interval / num_taxis * 1.15 + 4 * sample_interval
    cfg = FleetConfig(
        num_taxis=num_taxis,
        duration=duration,
        sample_interval=sample_interval,
        seed=seed,
    )
    data = TaxiFleetGenerator(cfg).generate()
    if len(data) < n_records:
        raise RuntimeError(
            f"generator undershot: produced {len(data)} < requested {n_records}"
        )
    return data.head(n_records)

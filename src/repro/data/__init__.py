"""The BLOT data model and dataset substrate.

A BLOT system stores *location tracking records* of the form
``(OID, TIME, LOC, A1..Am)`` (paper Section II-A).  This package provides:

- :mod:`repro.data.record` — the record schema (3 core attributes plus the
  5 taxi common attributes used throughout the evaluation);
- :mod:`repro.data.dataset` — a columnar, numpy-backed :class:`Dataset`
  container with spatio-temporal filtering;
- :mod:`repro.data.csvio` — CSV import/export (the paper's uncompressed
  baseline format);
- :mod:`repro.data.generator` — a synthetic taxi-fleet GPS simulator that
  stands in for the proprietary Shanghai taxi log (see DESIGN.md §2).
"""

from repro.data.csvio import dataset_from_csv, dataset_to_csv
from repro.data.dataset import Dataset
from repro.data.generator import FleetConfig, TaxiFleetGenerator, synthetic_shanghai_taxis
from repro.data.record import COMMON_FIELDS, CORE_FIELDS, FIELDS, Field, Record
from repro.data.trajectory import (
    TrajectoryStats,
    objects_through,
    od_matrix,
    path_length_km,
    split_trips,
    trajectories_of,
    trajectory_stats,
)

__all__ = [
    "COMMON_FIELDS",
    "CORE_FIELDS",
    "Dataset",
    "FIELDS",
    "Field",
    "FleetConfig",
    "Record",
    "TaxiFleetGenerator",
    "TrajectoryStats",
    "dataset_from_csv",
    "dataset_to_csv",
    "objects_through",
    "od_matrix",
    "path_length_km",
    "split_trips",
    "synthetic_shanghai_taxis",
    "trajectories_of",
    "trajectory_stats",
]

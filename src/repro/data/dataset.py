"""Columnar, numpy-backed container for location tracking data."""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.data.record import FIELD_NAMES, FIELDS, Record, validate_columns
from repro.geometry import Box3


class Dataset:
    """An immutable-by-convention columnar set of location tracking records.

    Columns follow the schema in :mod:`repro.data.record`.  All filtering
    operations return new :class:`Dataset` views/copies; the underlying
    arrays should not be mutated after construction.
    """

    __slots__ = ("_columns", "_length")

    def __init__(self, columns: dict[str, np.ndarray]):
        self._length = validate_columns(columns)
        self._columns = dict(columns)

    # -- constructors -----------------------------------------------------

    @staticmethod
    def empty() -> "Dataset":
        """A dataset with zero records."""
        from repro.data.record import empty_columns

        return Dataset(empty_columns())

    @staticmethod
    def from_records(records: Iterable[Record]) -> "Dataset":
        """Materialize an iterable of :class:`Record` rows into columns."""
        rows = list(records)
        columns: dict[str, np.ndarray] = {}
        for i, field in enumerate(FIELDS):
            columns[field.name] = np.array([r[i] for r in rows], dtype=field.dtype)
        return Dataset(columns)

    @staticmethod
    def from_npz(path) -> "Dataset":
        """Load a dataset saved by :meth:`to_npz` (lossless: bit-exact
        column arrays, unlike the ``%.6f``-rounded CSV path)."""
        with np.load(path) as archive:
            return Dataset({name: archive[name] for name in FIELD_NAMES})

    def to_npz(self, path) -> None:
        """Save the raw column arrays to an uncompressed ``.npz`` file.

        The round-trip is bit-exact, which makes this the right on-disk
        format for a :class:`~repro.storage.StoreConfig` dataset that
        spawned workers must rehydrate identically to the parent.
        """
        np.savez(path, **{name: self._columns[name] for name in FIELD_NAMES})

    @staticmethod
    def concat(parts: "Iterable[Dataset]") -> "Dataset":
        """Concatenate datasets, preserving record order across parts."""
        parts = list(parts)
        if not parts:
            return Dataset.empty()
        columns = {
            name: np.concatenate([p._columns[name] for p in parts])
            for name in FIELD_NAMES
        }
        return Dataset(columns)

    # -- basic accessors ----------------------------------------------------

    def __len__(self) -> int:
        return self._length

    def column(self, name: str) -> np.ndarray:
        """The raw column array for schema field ``name``."""
        return self._columns[name]

    @property
    def columns(self) -> dict[str, np.ndarray]:
        """A shallow copy of the column dict."""
        return dict(self._columns)

    def __iter__(self) -> Iterator[Record]:
        return self.records()

    def records(self) -> Iterator[Record]:
        """Iterate rows as :class:`Record` tuples (slow path; for tests,
        CSV export and the row encoder)."""
        cols = [self._columns[name] for name in FIELD_NAMES]
        for i in range(self._length):
            yield Record(*(col[i].item() for col in cols))

    def record_at(self, i: int) -> Record:
        """The single row at index ``i`` as a :class:`Record`."""
        return Record(*(self._columns[name][i].item() for name in FIELD_NAMES))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Dataset):
            return NotImplemented
        if len(self) != len(other):
            return False
        return all(
            np.array_equal(self._columns[name], other._columns[name])
            for name in FIELD_NAMES
        )

    def __hash__(self) -> int:  # pragma: no cover - datasets are not hashable
        raise TypeError("Dataset is not hashable")

    def __repr__(self) -> str:
        return f"Dataset(n={self._length})"

    # -- geometry -----------------------------------------------------------

    def bounding_box(self) -> Box3:
        """The tight spatio-temporal bounding box ``U`` of the data."""
        if self._length == 0:
            raise ValueError("bounding_box of an empty dataset is undefined")
        x, y, t = self._columns["x"], self._columns["y"], self._columns["t"]
        return Box3(
            float(x.min()), float(x.max()),
            float(y.min()), float(y.max()),
            float(t.min()), float(t.max()),
        )

    def filter_box(self, box: Box3) -> "Dataset":
        """Records spatio-temporally contained by ``box`` (closed bounds)."""
        return self.take(self.mask_box(box))

    def mask_box(self, box: Box3) -> np.ndarray:
        """Boolean mask of records contained by ``box``."""
        x, y, t = self._columns["x"], self._columns["y"], self._columns["t"]
        return (
            (x >= box.x_min) & (x <= box.x_max)
            & (y >= box.y_min) & (y <= box.y_max)
            & (t >= box.t_min) & (t <= box.t_max)
        )

    def count_in_box(self, box: Box3) -> int:
        """Number of records contained by ``box`` without materializing them."""
        return int(self.mask_box(box).sum())

    # -- reshaping ------------------------------------------------------------

    def take(self, selector: np.ndarray) -> "Dataset":
        """A new dataset holding the rows picked by an index array or mask."""
        return Dataset({name: col[selector] for name, col in self._columns.items()})

    def head(self, n: int) -> "Dataset":
        """The first ``n`` records."""
        return self.take(np.arange(min(n, self._length)))

    def sample(self, n: int, rng: np.random.Generator) -> "Dataset":
        """A uniform sample of ``n`` records without replacement.

        The paper builds its cost model and selects replicas from "a small
        portion of the data"; this is that sampling primitive.
        """
        if n >= self._length:
            return self
        idx = rng.choice(self._length, size=n, replace=False)
        idx.sort()
        return self.take(idx)

    def sorted_by(self, *names: str) -> "Dataset":
        """A copy sorted lexicographically by the given columns."""
        if not names:
            raise ValueError("need at least one sort key")
        keys = [self._columns[name] for name in reversed(names)]
        order = np.lexsort(keys)
        return self.take(order)

    def sorted_by_time(self) -> "Dataset":
        """A copy sorted by (t, oid) — the canonical in-partition order."""
        return self.sorted_by("t", "oid")

    def split_at(self, indices: list[int]) -> "list[Dataset]":
        """Split into consecutive chunks at the given row offsets."""
        parts = []
        bounds = [0, *indices, self._length]
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            parts.append(self.take(np.arange(lo, hi)))
        return parts

    # -- size accounting ---------------------------------------------------

    def binary_size_bytes(self) -> int:
        """Total size of the raw column arrays (the dense binary layout)."""
        return int(sum(col.nbytes for col in self._columns.values()))

    def csv_size_bytes(self) -> int:
        """Approximate size of this dataset rendered as uncompressed CSV.

        Estimated from a bounded sample of rendered rows; exact for small
        datasets.  This is the paper's baseline denominator for compression
        ratios (the 3.7 GB figure).
        """
        if self._length == 0:
            return 0
        from repro.data.csvio import render_csv_rows

        probe = min(self._length, 2048)
        rendered = render_csv_rows(self.head(probe))
        return int(round(len(rendered) / probe * self._length))

"""CSV import/export for location tracking datasets.

CSV is the paper's uncompressed interchange baseline ("3.7 GB in
uncompressed CSV format"); every compression ratio in Table I is measured
against it.  The format is one record per line, columns in schema order,
no header by default (matching raw GPS log dumps), with a fixed number of
decimals chosen to round-trip the generator's precision.
"""

from __future__ import annotations

import io
from typing import IO

import numpy as np

from repro.data.dataset import Dataset
from repro.data.record import FIELD_NAMES, FIELDS

#: Text formatting per column: GPS logs carry ~6 decimal places of
#: coordinate precision and 1 decimal for derived quantities.
_FORMATTERS = {
    "oid": lambda v: str(int(v)),
    "t": lambda v: f"{v:.0f}",
    "x": lambda v: f"{v:.6f}",
    "y": lambda v: f"{v:.6f}",
    "speed": lambda v: f"{v:.1f}",
    "heading": lambda v: f"{v:.1f}",
    "occupied": lambda v: str(int(v)),
    "trip_id": lambda v: str(int(v)),
    "odometer": lambda v: f"{v:.2f}",
}


def render_csv_rows(dataset: Dataset) -> str:
    """Render every record as a CSV line (no header)."""
    out = io.StringIO()
    cols = [(name, dataset.column(name), _FORMATTERS[name]) for name in FIELD_NAMES]
    for i in range(len(dataset)):
        out.write(",".join(fmt(col[i]) for _, col, fmt in cols))
        out.write("\n")
    return out.getvalue()


def dataset_to_csv(dataset: Dataset, fp: IO[str] | str, header: bool = False) -> None:
    """Write ``dataset`` to a path or text file object as CSV."""
    text = render_csv_rows(dataset)
    if isinstance(fp, str):
        with open(fp, "w", encoding="ascii") as f:
            if header:
                f.write(",".join(FIELD_NAMES) + "\n")
            f.write(text)
    else:
        if header:
            fp.write(",".join(FIELD_NAMES) + "\n")
        fp.write(text)


def dataset_from_csv(fp: IO[str] | str, header: bool = False) -> Dataset:
    """Read a CSV file produced by :func:`dataset_to_csv`."""
    if isinstance(fp, str):
        with open(fp, "r", encoding="ascii") as f:
            return dataset_from_csv(f, header=header)
    lines = fp.read().splitlines()
    if header and lines:
        expected = ",".join(FIELD_NAMES)
        if lines[0] != expected:
            raise ValueError(f"unexpected CSV header: {lines[0]!r}")
        lines = lines[1:]
    lines = [ln for ln in lines if ln.strip()]
    raw: list[list[str]] = [ln.split(",") for ln in lines]
    for ln, parts in zip(lines, raw):
        if len(parts) != len(FIELDS):
            raise ValueError(f"malformed CSV line ({len(parts)} fields): {ln!r}")
    columns: dict[str, np.ndarray] = {}
    for j, field in enumerate(FIELDS):
        text = [parts[j] for parts in raw]
        if np.issubdtype(field.dtype, np.integer):
            columns[field.name] = np.array([int(v) for v in text], dtype=field.dtype)
        else:
            columns[field.name] = np.array([float(v) for v in text], dtype=field.dtype)
    return Dataset(columns)

"""Record schema for location tracking data.

The paper's data model (Definition in Section II-A) is
``(OID, TIME, LOC, A1, ..., Am)`` where the first three are *core*
attributes and the rest are dataset-specific *common* attributes.  The
evaluation dataset is a taxi GPS log with "8 attributes (including the 3
core attributes)", so we fix five taxi-flavoured common attributes.

``LOC`` is a 2-D point and is stored as the two columns ``x`` (longitude)
and ``y`` (latitude); it still counts as a single attribute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

import numpy as np


@dataclass(frozen=True, slots=True)
class Field:
    """One column of the dataset schema."""

    name: str
    dtype: np.dtype
    kind: str  # "core" or "common"
    description: str

    def __post_init__(self) -> None:
        if self.kind not in ("core", "common"):
            raise ValueError(f"unknown field kind: {self.kind!r}")


FIELDS: tuple[Field, ...] = (
    Field("oid", np.dtype(np.int32), "core", "object (taxi) identifier"),
    Field("t", np.dtype(np.float64), "core", "timestamp, seconds since the Unix epoch"),
    Field("x", np.dtype(np.float64), "core", "longitude, degrees east"),
    Field("y", np.dtype(np.float64), "core", "latitude, degrees north"),
    Field("speed", np.dtype(np.float32), "common", "instantaneous speed, km/h"),
    Field("heading", np.dtype(np.float32), "common", "heading, degrees clockwise from north"),
    Field("occupied", np.dtype(np.uint8), "common", "1 when carrying passengers"),
    Field("trip_id", np.dtype(np.int32), "common", "monotone per-taxi trip counter"),
    Field("odometer", np.dtype(np.float32), "common", "cumulative distance this shift, km"),
)
"""The full schema: 3 core attributes (OID, TIME, LOC) over 4 columns, plus
5 common attributes — the paper's "8 attributes" taxi layout."""

FIELD_NAMES: tuple[str, ...] = tuple(f.name for f in FIELDS)
CORE_FIELDS: tuple[str, ...] = tuple(f.name for f in FIELDS if f.kind == "core")
COMMON_FIELDS: tuple[str, ...] = tuple(f.name for f in FIELDS if f.kind == "common")

FIELD_BY_NAME: dict[str, Field] = {f.name: f for f in FIELDS}


class Record(NamedTuple):
    """A single materialized location tracking record.

    :class:`repro.data.dataset.Dataset` stores data columnar; ``Record`` is
    the row view used by iteration, the row encoder and tests.
    """

    oid: int
    t: float
    x: float
    y: float
    speed: float
    heading: float
    occupied: int
    trip_id: int
    odometer: float


def empty_columns() -> dict[str, np.ndarray]:
    """Fresh zero-length column arrays for every schema field."""
    return {f.name: np.empty(0, dtype=f.dtype) for f in FIELDS}


def validate_columns(columns: dict[str, np.ndarray]) -> int:
    """Check a column dict against the schema.

    Returns the common row count; raises ``ValueError`` on missing/extra
    fields, dtype mismatches, or ragged column lengths.
    """
    missing = set(FIELD_NAMES) - set(columns)
    extra = set(columns) - set(FIELD_NAMES)
    if missing:
        raise ValueError(f"missing columns: {sorted(missing)}")
    if extra:
        raise ValueError(f"unexpected columns: {sorted(extra)}")
    length: int | None = None
    for field in FIELDS:
        col = columns[field.name]
        if not isinstance(col, np.ndarray):
            raise ValueError(f"column {field.name!r} is not a numpy array")
        if col.dtype != field.dtype:
            raise ValueError(
                f"column {field.name!r} has dtype {col.dtype}, expected {field.dtype}"
            )
        if col.ndim != 1:
            raise ValueError(f"column {field.name!r} must be 1-D")
        if length is None:
            length = col.shape[0]
        elif col.shape[0] != length:
            raise ValueError(
                f"column {field.name!r} has length {col.shape[0]}, expected {length}"
            )
    return int(length or 0)

"""Trajectory views over location tracking data.

BLOT systems store *tracking* data: per-object time series.  The systems
the paper abstracts (TrajStore in particular) expose trajectory-level
operations on top of range filtering; this module provides that layer:

- :func:`trajectories_of` — per-object time-ordered sub-datasets;
- :func:`split_trips` — cut one taxi's stream into passenger trips using
  the occupancy attribute;
- :class:`TrajectoryStats` — length/duration/speed summaries;
- :func:`objects_through` — "which taxis crossed region R during T",
  expressed as one engine range query plus a distinct-OID reduction.

Everything consumes the plain :class:`~repro.data.dataset.Dataset`
container, so these helpers run equally on raw data and on the output of
:class:`~repro.storage.engine.BlotStore` queries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset
from repro.geometry import Box3

#: Rough km per degree at the dataset's latitude; consistent with the
#: fleet generator's motion model.
_KM_PER_DEG_LON = 95.0
_KM_PER_DEG_LAT = 111.0


def trajectories_of(dataset: Dataset) -> dict[int, Dataset]:
    """Split a dataset into per-object, time-ordered trajectories."""
    ordered = dataset.sorted_by("oid", "t")
    oids = ordered.column("oid")
    out: dict[int, Dataset] = {}
    if len(ordered) == 0:
        return out
    boundaries = np.flatnonzero(np.diff(oids)) + 1
    start = 0
    for end in list(boundaries) + [len(ordered)]:
        chunk = ordered.take(np.arange(start, end))
        out[int(oids[start])] = chunk
        start = end
    return out


def path_length_km(trajectory: Dataset) -> float:
    """Polyline length of a time-ordered trajectory, in km (Manhattan
    metric, matching the street-grid motion model)."""
    if len(trajectory) < 2:
        return 0.0
    x = trajectory.column("x")
    y = trajectory.column("y")
    return float(
        (np.abs(np.diff(x)) * _KM_PER_DEG_LON).sum()
        + (np.abs(np.diff(y)) * _KM_PER_DEG_LAT).sum()
    )


@dataclass(frozen=True, slots=True)
class TrajectoryStats:
    """Summary of one object's trajectory."""

    oid: int
    n_points: int
    duration_seconds: float
    length_km: float
    mean_speed_kmh: float
    occupied_fraction: float


def trajectory_stats(oid: int, trajectory: Dataset) -> TrajectoryStats:
    """Compute :class:`TrajectoryStats` for a time-ordered trajectory."""
    if len(trajectory) == 0:
        raise ValueError("empty trajectory")
    t = trajectory.column("t")
    duration = float(t[-1] - t[0])
    length = path_length_km(trajectory)
    return TrajectoryStats(
        oid=oid,
        n_points=len(trajectory),
        duration_seconds=duration,
        length_km=length,
        mean_speed_kmh=length / (duration / 3600.0) if duration > 0 else 0.0,
        occupied_fraction=float(trajectory.column("occupied").mean()),
    )


def split_trips(trajectory: Dataset) -> list[Dataset]:
    """Cut one object's time-ordered stream into passenger trips.

    A trip is a maximal run of samples with ``occupied == 1`` sharing one
    ``trip_id``.  Returns trips in time order.
    """
    if len(trajectory) == 0:
        return []
    occupied = trajectory.column("occupied").astype(bool)
    trip_ids = trajectory.column("trip_id")
    trips: list[Dataset] = []
    run_start: int | None = None
    for i in range(len(trajectory)):
        in_trip = bool(occupied[i])
        if in_trip and run_start is None:
            run_start = i
        boundary = (
            run_start is not None
            and (not in_trip or trip_ids[i] != trip_ids[run_start])
        )
        if boundary:
            trips.append(trajectory.take(np.arange(run_start, i)))
            run_start = i if in_trip else None
    if run_start is not None:
        trips.append(trajectory.take(np.arange(run_start, len(trajectory))))
    return trips


def objects_through(records: Dataset, region: Box3 | None = None) -> list[int]:
    """Distinct object ids present in ``records`` (optionally filtered to
    ``region`` first) — the "which taxis crossed this area" analytics
    primitive, fed by an engine range query."""
    data = records if region is None else records.filter_box(region)
    return sorted(int(v) for v in np.unique(data.column("oid")))


def od_matrix(
    dataset: Dataset, nx: int, ny: int, universe: Box3 | None = None
) -> np.ndarray:
    """Origin-destination matrix over an ``nx x ny`` spatial grid.

    Counts passenger trips by (origin cell, destination cell), the core
    artifact of the paper's "urban transportation planning" motivation.
    Cells are numbered row-major: ``cell = ix * ny + iy``.
    """
    if nx < 1 or ny < 1:
        raise ValueError("grid dimensions must be >= 1")
    u = universe or dataset.bounding_box()
    matrix = np.zeros((nx * ny, nx * ny), dtype=np.int64)

    def cell_of(x: float, y: float) -> int:
        ix = min(int((x - u.x_min) / max(u.width, 1e-300) * nx), nx - 1)
        iy = min(int((y - u.y_min) / max(u.height, 1e-300) * ny), ny - 1)
        return ix * ny + iy

    for trajectory in trajectories_of(dataset).values():
        for trip in split_trips(trajectory):
            first = trip.record_at(0)
            last = trip.record_at(len(trip) - 1)
            matrix[cell_of(first.x, first.y), cell_of(last.x, last.y)] += 1
    return matrix

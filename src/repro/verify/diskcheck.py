"""Oracle sweep over an on-disk store (the ``repro verify-store`` core).

Given a unit store and one manifest per replica, this module

1. CRC-checks every unit against its manifest (:func:`verify_replica`),
2. recovers the logical dataset from every replica and cross-checks that
   all replicas hold the *same* record multiset (any odd one out is a
   silently-corrupted replica — the failure CRC alone cannot catch when
   the manifest was regenerated after the damage),
3. runs a differential query sweep: every replica's on-disk decode path
   must answer every query bit-identically to the brute-force oracle.

Per-replica diffs are published through a
:class:`~repro.obs.MetricsRegistry` when one is supplied.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.data.dataset import Dataset
from repro.geometry import Box3
from repro.storage.manifest import load_replica, verify_replica
from repro.storage.recovery import recover_dataset
from repro.storage.replica import StoredReplica
from repro.storage.unit import UnitStore
from repro.verify.oracle import (
    Mismatch,
    canonical,
    datasets_identical,
    diff_results,
    edge_pinned_boxes,
    oracle_answer,
    random_boxes,
)


@dataclass
class ReplicaDiskReport:
    """Integrity + content verdict for one on-disk replica."""

    name: str
    units: int
    damaged: tuple[int, ...]
    content_ok: bool
    read_errors: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.damaged and self.content_ok and not self.read_errors


@dataclass
class StoreVerification:
    """Outcome of :func:`verify_store`."""

    replicas: list[ReplicaDiskReport] = field(default_factory=list)
    mismatches: list[Mismatch] = field(default_factory=list)
    checks: int = 0
    n_queries: int = 0

    @property
    def ok(self) -> bool:
        return (not self.mismatches
                and all(r.ok for r in self.replicas))

    def summary(self) -> str:
        status = "OK" if self.ok else "FAILED"
        lines = [f"store verification: {status} ({len(self.replicas)} "
                 f"replicas, {self.checks} checks, "
                 f"{self.n_queries} queries)"]
        for rep in self.replicas:
            verdict = "OK" if rep.ok else "DAMAGED"
            detail = []
            if rep.damaged:
                detail.append(f"CRC failures in units {list(rep.damaged)[:10]}")
            if not rep.content_ok:
                detail.append("content differs from the reference dataset")
            if rep.read_errors:
                detail.append(f"read errors: {rep.read_errors[:3]}")
            lines.append(f"  {rep.name}: {verdict}"
                         + (f" ({'; '.join(detail)})" if detail else
                            f" ({rep.units} units)"))
        lines.extend("  " + m.describe() for m in self.mismatches[:20])
        if len(self.mismatches) > 20:
            lines.append(f"  ... and {len(self.mismatches) - 20} more")
        return "\n".join(lines)


def _scan_replica(replica: StoredReplica, box: Box3) -> Dataset:
    """The raw on-disk read path: decode every involved unit, filter."""
    parts = []
    for pid in replica.involved_partitions(box):
        pid = int(pid)
        if replica.unit_keys[pid] is None:
            continue
        parts.append(replica.read_partition(pid).filter_box(box))
    return Dataset.concat(parts) if parts else Dataset.empty()


def verify_store(
    store: UnitStore,
    manifests: list[dict | str],
    n_queries: int = 12,
    seed: int = 7,
    reference: Dataset | None = None,
    metrics=None,
) -> StoreVerification:
    """Run the full oracle sweep against an on-disk store.

    ``reference`` supplies the ground-truth dataset when available
    (e.g. the original CSV); without it the replicas vouch for each
    other — the majority recovered dataset becomes the oracle, so a
    single corrupted replica is still caught.
    """
    if not manifests:
        raise ValueError("need at least one manifest")
    result = StoreVerification()

    loaded: list[tuple[StoredReplica, dict]] = []
    for manifest in manifests:
        if isinstance(manifest, str):
            with open(manifest, "r", encoding="utf-8") as f:
                manifest = json.load(f)
        loaded.append((load_replica(manifest, store), manifest))

    # Phase 1+2: CRC integrity, then logical-content recovery.
    recovered: list[Dataset | None] = []
    crc_damage: list[tuple[int, ...]] = []
    read_errors: list[tuple[str, ...]] = []
    for replica, manifest in loaded:
        damaged = tuple(verify_replica(replica, manifest))
        crc_damage.append(damaged)
        errors: list[str] = []
        try:
            recovered.append(canonical(recover_dataset(replica)))
        except Exception as err:  # damaged units may fail to decode
            recovered.append(None)
            errors.append(f"{type(err).__name__}: {err}")
        read_errors.append(tuple(errors))

    oracle_ds = reference
    if oracle_ds is None:
        # Majority vote over the recovered contents: group bit-identical
        # recoveries, take the largest group as ground truth.
        groups: list[list[int]] = []
        for i, ds in enumerate(recovered):
            if ds is None:
                continue
            for group in groups:
                if datasets_identical(recovered[group[0]], ds):
                    group.append(i)
                    break
            else:
                groups.append([i])
        if not groups:
            raise ValueError("no replica could be recovered; nothing to "
                             "verify against")
        groups.sort(key=len, reverse=True)
        oracle_ds = recovered[groups[0][0]]
    oracle_ds = canonical(oracle_ds)

    for idx, (replica, _) in enumerate(loaded):
        ds = recovered[idx]
        content_ok = ds is not None and datasets_identical(oracle_ds, ds)
        result.checks += 1
        result.replicas.append(ReplicaDiskReport(
            name=replica.name,
            units=sum(1 for k in replica.unit_keys if k is not None),
            damaged=crc_damage[idx],
            content_ok=content_ok,
            read_errors=read_errors[idx],
        ))
        if metrics is not None:
            metrics.counter("repro_verify_checks_total",
                            labels={"path": "recover"}).inc()
            if not content_ok or crc_damage[idx]:
                metrics.counter("repro_verify_mismatches_total",
                                labels={"path": "recover",
                                        "replica": replica.name}).inc()

    # Phase 3: the differential query sweep over the on-disk read path.
    boxes = random_boxes(oracle_ds, n_queries, seed)
    boxes.extend(edge_pinned_boxes(
        oracle_ds, loaded[0][0].partitioning.boxes()))
    result.n_queries = len(boxes)
    for replica, _ in loaded:
        for i, box in enumerate(boxes):
            want = oracle_answer(oracle_ds, box)
            result.checks += 1
            if metrics is not None:
                metrics.counter("repro_verify_checks_total",
                                labels={"path": "disk-scan"}).inc()
            try:
                got = _scan_replica(replica, box)
            except Exception:  # decode failure on a damaged unit
                got = Dataset.empty()
            diff = diff_results(want, got)
            if diff is None:
                continue
            result.mismatches.append(Mismatch(
                path="disk-scan", replica=replica.name, query_index=i,
                box=box, diff=diff))
            if metrics is not None:
                metrics.counter("repro_verify_mismatches_total",
                                labels={"path": "disk-scan",
                                        "replica": replica.name}).inc()

    if metrics is not None:
        metrics.gauge("repro_verify_ok").set(1.0 if result.ok else 0.0)
    return result

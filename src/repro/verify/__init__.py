"""Differential correctness harness (the repository's oracle suite).

Diverse replicas differ only in layout; this package enforces the
invariant that makes replica routing sound — every replica, every
encoding and every execution path returns bit-identical answers to a
brute-force scan of the raw dataset:

- :mod:`repro.verify.oracle` — ground truth + multiset diffing;
- :mod:`repro.verify.harness` — the advisor-grid x execution-path sweep
  (:class:`DifferentialHarness`, :func:`verify_dataset`);
- :mod:`repro.verify.solvers` — solver decisions vs brute-force
  enumeration (:func:`check_instance`, :func:`check_budget_sweep`);
- :mod:`repro.verify.diskcheck` — the on-disk sweep behind
  ``repro verify-store`` (:func:`verify_store`).
"""

from repro.verify.diskcheck import (
    ReplicaDiskReport,
    StoreVerification,
    verify_store,
)
from repro.verify.harness import (
    ALL_PATHS,
    DifferentialHarness,
    default_grid,
    verify_dataset,
)
from repro.verify.oracle import (
    Mismatch,
    ResultDiff,
    VerificationReport,
    canonical,
    datasets_identical,
    diff_results,
    edge_pinned_boxes,
    oracle_answer,
    random_boxes,
    row_keys,
)
from repro.verify.solvers import (
    SOLVERS,
    SolverCheckReport,
    check_budget_sweep,
    check_instance,
)

__all__ = [
    "ALL_PATHS",
    "DifferentialHarness",
    "Mismatch",
    "ReplicaDiskReport",
    "ResultDiff",
    "SOLVERS",
    "SolverCheckReport",
    "StoreVerification",
    "VerificationReport",
    "canonical",
    "check_budget_sweep",
    "check_instance",
    "datasets_identical",
    "default_grid",
    "diff_results",
    "edge_pinned_boxes",
    "oracle_answer",
    "random_boxes",
    "row_keys",
    "verify_dataset",
    "verify_store",
]

"""The brute-force oracle and bit-identical result comparison.

Diverse replicas differ only in *layout*: every replica, every encoding
and every execution path must return exactly the records a naive filter
of the raw :class:`~repro.data.dataset.Dataset` returns (the paper's
Eq. 5-7 routing silently serves wrong answers otherwise).  This module
supplies the two primitives every differential check is built from:

- :func:`oracle_answer` — the ground truth for a range query, a plain
  ``filter_box`` over the raw dataset;
- :func:`diff_results` — a bit-level comparison of two result sets as
  canonically-ordered multisets (replicas scan partitions in different
  orders, so record *order* legitimately differs; record *content* must
  not).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import Dataset
from repro.data.record import FIELD_NAMES
from repro.geometry import Box3


def canonical(dataset: Dataset) -> Dataset:
    """A copy in canonical comparison order: lexicographic over every
    column.  Identical multisets of records always canonicalize to the
    same row sequence, whatever order the scan produced them in."""
    if len(dataset) == 0:
        return dataset
    return dataset.sorted_by(*FIELD_NAMES)


def oracle_answer(dataset: Dataset, box: Box3) -> Dataset:
    """Ground truth for a range query: brute-force filter, canonical order."""
    return canonical(dataset.filter_box(box))


def row_keys(dataset: Dataset) -> list[tuple]:
    """Hashable per-record keys (all columns), for multiset diffing."""
    if len(dataset) == 0:
        return []
    columns = [dataset.column(name).tolist() for name in FIELD_NAMES]
    return list(zip(*columns))


def datasets_identical(a: Dataset, b: Dataset) -> bool:
    """True when ``a`` and ``b`` hold bit-identical record multisets.

    Comparison happens on the canonical order and on the raw column
    bytes, so it is exact — no float tolerance, no dtype coercion.
    """
    if len(a) != len(b):
        return False
    ca, cb = canonical(a), canonical(b)
    return all(
        ca.column(name).tobytes() == cb.column(name).tobytes()
        for name in FIELD_NAMES
    )


@dataclass(frozen=True)
class ResultDiff:
    """How one result set differs from the oracle's."""

    expected_count: int
    got_count: int
    missing: tuple[tuple, ...]  # records the oracle has, the result lacks
    extra: tuple[tuple, ...]    # records the result has, the oracle lacks

    _SAMPLE = 3

    def describe(self) -> str:
        parts = [f"expected {self.expected_count} records, got {self.got_count}"]
        if self.missing:
            parts.append(f"{len(self.missing)} missing "
                         f"(e.g. {self.missing[:self._SAMPLE]})")
        if self.extra:
            parts.append(f"{len(self.extra)} extra "
                         f"(e.g. {self.extra[:self._SAMPLE]})")
        return "; ".join(parts)


def diff_results(expected: Dataset, got: Dataset) -> ResultDiff | None:
    """None when ``got`` matches the oracle bit-for-bit; otherwise the
    multiset difference (missing / extra records)."""
    if datasets_identical(expected, got):
        return None
    want = row_keys(expected)
    have = row_keys(got)
    want_counts: dict[tuple, int] = {}
    for key in want:
        want_counts[key] = want_counts.get(key, 0) + 1
    have_counts: dict[tuple, int] = {}
    for key in have:
        have_counts[key] = have_counts.get(key, 0) + 1
    missing = tuple(
        key for key, n in sorted(want_counts.items())
        for _ in range(n - have_counts.get(key, 0)) if n > have_counts.get(key, 0)
    )
    extra = tuple(
        key for key, n in sorted(have_counts.items())
        for _ in range(n - want_counts.get(key, 0)) if n > want_counts.get(key, 0)
    )
    return ResultDiff(
        expected_count=len(expected),
        got_count=len(got),
        missing=missing,
        extra=extra,
    )


@dataclass(frozen=True)
class Mismatch:
    """One differential check that failed: which execution path, which
    replica, which query box, and how the answer differed."""

    path: str
    replica: str
    query_index: int
    box: Box3
    diff: ResultDiff

    def describe(self) -> str:
        return (f"[{self.path}] replica {self.replica!r} query "
                f"#{self.query_index}: {self.diff.describe()}")


@dataclass
class VerificationReport:
    """Outcome of a differential sweep."""

    checks: int = 0
    mismatches: list[Mismatch] = field(default_factory=list)
    replicas: tuple[str, ...] = ()
    paths: tuple[str, ...] = ()
    n_queries: int = 0

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def merge(self, other: "VerificationReport") -> None:
        self.checks += other.checks
        self.mismatches.extend(other.mismatches)

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.mismatches)} MISMATCHES"
        lines = [
            f"differential verification: {status} "
            f"({self.checks} checks, {len(self.replicas)} replicas, "
            f"{self.n_queries} queries, paths: {', '.join(self.paths)})"
        ]
        lines.extend("  " + m.describe() for m in self.mismatches[:20])
        if len(self.mismatches) > 20:
            lines.append(f"  ... and {len(self.mismatches) - 20} more")
        return "\n".join(lines)


def edge_pinned_boxes(dataset: Dataset, boundaries: "list[Box3]",
                      max_boxes: int = 12) -> list[Box3]:
    """Query boxes whose faces lie *exactly* on partition boundaries and
    on record coordinates — the inputs most likely to expose half-open /
    closed placement disagreements and one-ulp box round-trip drift.

    ``boundaries`` are partition boxes of a built replica; each sampled
    partition face becomes a query face, and each sampled record supplies
    a degenerate (point) query pinned to its exact coordinates.
    """
    universe = dataset.bounding_box()
    boxes: list[Box3] = []
    step = max(1, len(boundaries) // max(1, max_boxes // 2))
    for pbox in boundaries[::step][:max_boxes // 2]:
        # Query exactly one partition's span: every face is a cell edge.
        boxes.append(pbox)
        # And a query ending exactly where the partition begins.
        boxes.append(Box3(universe.x_min, pbox.x_min,
                          universe.y_min, pbox.y_min,
                          universe.t_min, pbox.t_min))
    n = len(dataset)
    for idx in np.linspace(0, n - 1, num=min(4, n), dtype=int):
        x = float(dataset.column("x")[idx])
        y = float(dataset.column("y")[idx])
        t = float(dataset.column("t")[idx])
        boxes.append(Box3(x, x, y, y, t, t))
    return boxes


def random_boxes(dataset: Dataset, n: int, seed: int) -> list[Box3]:
    """Random query boxes spanning point-like to universe-crossing sizes."""
    rng = np.random.default_rng(seed)
    u = dataset.bounding_box()
    boxes = []
    for _ in range(n):
        frac = float(rng.uniform(0.0, 1.2))
        cx = float(rng.uniform(u.x_min, u.x_max))
        cy = float(rng.uniform(u.y_min, u.y_max))
        ct = float(rng.uniform(u.t_min, u.t_max))
        boxes.append(Box3.from_center_size(
            (cx, cy, ct), u.width * frac, u.height * frac,
            u.duration * float(rng.uniform(0.0, 1.2))))
    return boxes

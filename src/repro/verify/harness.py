"""The differential sweep: every replica, every execution path.

:class:`DifferentialHarness` builds the advisor grid of candidate
replicas (every partitioning x encoding combination) over one dataset
and drives the same query boxes through every execution path the engine
has — scalar ``query()``, batch ``execute_workload``, cold and warm
``PartitionCache`` reads, fault-injected reads with failover, and
``IngestingBlotStore`` merged base+buffer reads — asserting every answer
is bit-identical to the brute-force oracle.

The sweep doubles as the engine's conformance suite (tests) and as the
work-horse behind ``repro verify-store`` (on-disk stores; see
:mod:`repro.verify.diskcheck`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.costmodel.model import CostModel, RoutingPlan
from repro.data.dataset import Dataset
from repro.encoding.base import EncodingScheme, paper_encoding_schemes
from repro.geometry import Box3
from repro.partition.base import PartitioningScheme
from repro.partition.composite import small_partitioning_schemes
from repro.storage.engine import BlotStore
from repro.storage.faults import FaultInjector
from repro.storage.ingest import IngestingBlotStore, ReplicaSpec
from repro.storage.options import ExecOptions
from repro.storage.unit import InMemoryStore
from repro.verify.oracle import (
    Mismatch,
    ResultDiff,
    VerificationReport,
    diff_results,
    edge_pinned_boxes,
    oracle_answer,
    random_boxes,
)
from repro.workload.query import Query, Workload

#: The five execution paths the differential sweep covers.
ALL_PATHS: tuple[str, ...] = ("scalar", "batch", "cached", "faulty", "ingest")

_NO_FAILOVER = ExecOptions(failover=False, repair=False, use_cache=False)
_COLD = ExecOptions(use_cache=True)


def default_grid(
    spatial_leaves: Sequence[int] = (4, 16),
    time_slices: Sequence[int] = (2, 4),
) -> list[PartitioningScheme]:
    """A laptop-sized advisor grid of partitioning schemes (the paper's
    KD x temporal grid, scaled down)."""
    return small_partitioning_schemes(
        spatial_leaves=tuple(spatial_leaves), time_slices=tuple(time_slices))


class DifferentialHarness:
    """Cross-replica, cross-path differential checker for one dataset.

    ``partitioning_schemes`` x ``encoding_schemes`` defines the candidate
    grid (defaults: :func:`default_grid` x the paper's seven encodings).
    ``metrics`` (a :class:`~repro.obs.MetricsRegistry`) receives
    ``repro_verify_checks_total`` / ``repro_verify_mismatches_total``
    counters labelled by path (and replica, for mismatches).
    """

    def __init__(
        self,
        dataset: Dataset,
        partitioning_schemes: Sequence[PartitioningScheme] | None = None,
        encoding_schemes: Sequence[EncodingScheme] | None = None,
        cost_model: CostModel | None = None,
        cache_bytes: int = 8 << 20,
        seed: int = 7,
        metrics=None,
    ):
        if len(dataset) == 0:
            raise ValueError("cannot verify an empty dataset")
        self._dataset = dataset
        self._schemes = list(partitioning_schemes or default_grid())
        self._encodings = list(encoding_schemes or paper_encoding_schemes())
        self._cost_model = cost_model
        self._seed = seed
        self._metrics = metrics
        self._store = BlotStore(dataset, cost_model=cost_model,
                                cache_bytes=cache_bytes)
        for scheme in self._schemes:
            for encoding in self._encodings:
                self._store.add_replica(scheme, encoding, InMemoryStore())
        self._names = sorted(self._store.replica_names())

    @property
    def store(self) -> BlotStore:
        """The grid store under test (one replica per grid cell)."""
        return self._store

    @property
    def replica_names(self) -> list[str]:
        return list(self._names)

    # -- bookkeeping --------------------------------------------------------

    def _check(self, report: VerificationReport, path: str, replica: str,
               query_index: int, box: Box3, expected: Dataset,
               got: Dataset) -> None:
        report.checks += 1
        if self._metrics is not None:
            self._metrics.counter("repro_verify_checks_total",
                                  labels={"path": path}).inc()
        diff = diff_results(expected, got)
        if diff is None:
            return
        report.mismatches.append(
            Mismatch(path=path, replica=replica, query_index=query_index,
                     box=box, diff=diff))
        if self._metrics is not None:
            self._metrics.counter(
                "repro_verify_mismatches_total",
                labels={"path": path, "replica": replica}).inc()

    def _check_count(self, report: VerificationReport, path: str,
                     replica: str, query_index: int, box: Box3,
                     expected: int, got: int) -> None:
        report.checks += 1
        if self._metrics is not None:
            self._metrics.counter("repro_verify_checks_total",
                                  labels={"path": path}).inc()
        if got == expected:
            return
        report.mismatches.append(Mismatch(
            path=path, replica=replica, query_index=query_index, box=box,
            diff=ResultDiff(expected_count=expected, got_count=got,
                            missing=(), extra=())))
        if self._metrics is not None:
            self._metrics.counter(
                "repro_verify_mismatches_total",
                labels={"path": path, "replica": replica}).inc()

    # -- the sweep ----------------------------------------------------------

    def query_boxes(self, n_random: int = 12,
                    include_edges: bool = True) -> list[Box3]:
        """The default query set: random boxes plus boxes pinned exactly
        to partition boundaries and record coordinates."""
        boxes = random_boxes(self._dataset, n_random, self._seed)
        if include_edges:
            first = self._store.replica(self._names[0])
            boxes.extend(edge_pinned_boxes(
                self._dataset, first.partitioning.boxes()))
        return boxes

    def run(self, boxes: Sequence[Box3] | None = None,
            paths: Sequence[str] = ALL_PATHS) -> VerificationReport:
        """Run the differential sweep; every mismatch lands in the report."""
        unknown = set(paths) - set(ALL_PATHS)
        if unknown:
            raise ValueError(f"unknown paths {sorted(unknown)}; "
                             f"have {list(ALL_PATHS)}")
        if boxes is None:
            boxes = self.query_boxes()
        boxes = list(boxes)
        oracles = [oracle_answer(self._dataset, box) for box in boxes]
        report = VerificationReport(
            replicas=tuple(self._names), paths=tuple(paths),
            n_queries=len(boxes))
        if "scalar" in paths:
            self._run_scalar(report, boxes, oracles)
        if "batch" in paths:
            self._run_batch(report, boxes, oracles)
        if "cached" in paths:
            self._run_cached(report, boxes, oracles)
        if "faulty" in paths:
            self._run_faulty(report, boxes, oracles)
        if "ingest" in paths:
            self._run_ingest(report, boxes, oracles)
        return report

    def _run_scalar(self, report, boxes, oracles) -> None:
        """Pinned scalar ``query()`` and ``count()`` on every replica,
        cache bypassed (the cold path of the seed engine)."""
        for name in self._names:
            for i, (box, want) in enumerate(zip(boxes, oracles)):
                got = self._store.query(box, replica=name,
                                        options=_NO_FAILOVER)
                self._check(report, "scalar", name, i, box, want, got.records)
                n, _ = self._store.count(box, replica=name,
                                         options=_NO_FAILOVER)
                self._check_count(report, "scalar", name, i, box,
                                  len(want), n)
        if self._cost_model is not None:
            for i, (box, want) in enumerate(zip(boxes, oracles)):
                got = self._store.query(box, options=_NO_FAILOVER)
                self._check(report, "scalar", "<routed>", i, box, want,
                            got.records)

    def _run_batch(self, report, boxes, oracles) -> None:
        """``execute_workload`` pinned to each replica via an explicit
        :class:`RoutingPlan` (and cost-routed when a model exists)."""
        queries = [Query.from_box(box) for box in boxes]
        workload = Workload.unweighted(queries)
        # The batch path scans Range(q) of the positioned query, so its
        # oracle must too (Query.from_box().box() may differ from the
        # original box by one ulp; both sides must use the same bounds).
        batch_oracles = [oracle_answer(self._dataset, q.box())
                         for q in queries]
        m = len(queries)
        for j, name in enumerate(self._names):
            plan = RoutingPlan(
                replica_names=tuple(self._names),
                assignments=np.full(m, j, dtype=np.intp),
                costs=np.zeros((m, len(self._names)), dtype=np.float64),
            )
            result = self._store.execute_workload(workload, plan=plan,
                                                  options=_NO_FAILOVER)
            for i, got in enumerate(result.results):
                self._check(report, "batch", name, i, queries[i].box(),
                            batch_oracles[i], got.records)
        if self._cost_model is not None:
            result = self._store.execute_workload(workload)
            for i, got in enumerate(result.results):
                self._check(report, "batch", "<routed>", i,
                            queries[i].box(), batch_oracles[i], got.records)

    def _run_cached(self, report, boxes, oracles) -> None:
        """Cold pass populates the decoded-partition cache, warm pass is
        served from it; both must equal the oracle."""
        cache = self._store.partition_cache
        if cache is not None:
            cache.clear()
        for name in self._names:
            for label, path in (("cold", "cached"), ("warm", "cached")):
                for i, (box, want) in enumerate(zip(boxes, oracles)):
                    got = self._store.query(
                        box, replica=name,
                        options=ExecOptions(failover=False, repair=False,
                                            use_cache=True))
                    self._check(report, path, f"{name}[{label}]", i, box,
                                want, got.records)

    def _run_faulty(self, report, boxes, oracles) -> None:
        """Reads with an injected whole-replica outage and a dead
        partition: failover down the ranking must still produce oracle-
        identical answers."""
        injector = FaultInjector(seed=self._seed)
        dead = self._names[0]
        injector.fail_replica(dead)
        lame = self._names[1 % len(self._names)]
        if lame != dead:
            stored = self._store.replica(lame)
            pid = next((p for p, key in enumerate(stored.unit_keys)
                        if key is not None), None)
            if pid is not None:
                injector.fail_partition(lame, pid)
        self._store.set_fault_injector(injector)
        try:
            opts = ExecOptions(failover=True, repair=True, use_cache=False,
                               retries=1)
            for pin in (dead, lame):
                for i, (box, want) in enumerate(zip(boxes, oracles)):
                    got = self._store.query(box, replica=pin, options=opts)
                    self._check(report, "faulty", pin, i, box, want,
                                got.records)
        finally:
            self._store.set_fault_injector(None)
            cache = self._store.partition_cache
            if cache is not None:
                cache.clear()

    def _run_ingest(self, report, boxes, oracles) -> None:
        """Merged base+buffer reads: split the dataset, append the tail
        in chunks, verify before and after compaction."""
        n = len(self._dataset)
        if n < 4:
            return
        ordered = self._dataset.sorted_by_time()
        cut = max(1, (n * 7) // 10)
        base = ordered.take(np.arange(cut))
        tail = ordered.take(np.arange(cut, n))
        specs = [
            ReplicaSpec(self._schemes[0], self._encodings[0], name="ing-a"),
            ReplicaSpec(self._schemes[-1], self._encodings[-1], name="ing-b"),
        ]
        store = IngestingBlotStore(base, specs)
        third = max(1, len(tail) // 3)
        for lo in range(0, len(tail), third):
            store.append(tail.take(np.arange(lo, min(lo + third, len(tail)))))
        # The ingest oracle is the *full* dataset: base scans + buffer
        # filter must reconstruct it exactly, with no loss or double
        # counting at the compaction boundary.
        for phase in ("buffered", "compacted"):
            for spec in specs:
                for i, (box, want) in enumerate(zip(boxes, oracles)):
                    got = store.query(box, replica=spec.name)
                    self._check(report, "ingest",
                                f"{spec.name}[{phase}]", i, box, want,
                                got.records)
            if phase == "buffered":
                store.compact()


def verify_dataset(
    dataset: Dataset,
    partitioning_schemes: Sequence[PartitioningScheme] | None = None,
    encoding_schemes: Sequence[EncodingScheme] | None = None,
    boxes: Sequence[Box3] | None = None,
    paths: Sequence[str] = ALL_PATHS,
    seed: int = 7,
    metrics=None,
) -> VerificationReport:
    """One-call differential sweep over the advisor grid of ``dataset``."""
    harness = DifferentialHarness(
        dataset, partitioning_schemes=partitioning_schemes,
        encoding_schemes=encoding_schemes, seed=seed, metrics=metrics)
    return harness.run(boxes=boxes, paths=paths)

"""Differential checks for the replica-selection solvers.

On instances small enough for :func:`~repro.core.bruteforce.brute_force_select`
to enumerate, every solver's decision is checked against the exact
optimum: the exact solvers (branch and bound, MIP) must *match* it, the
heuristics (greedy, local search) must be feasible and no better than
it, and nobody may ever return an infeasible
:class:`~repro.core.problem.Selection`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.bnb import branch_and_bound_select
from repro.core.bruteforce import brute_force_select
from repro.core.greedy import greedy_select
from repro.core.localsearch import local_search_select
from repro.core.problem import Selection, SelectionInstance

_REL_TOL = 1e-9

#: name -> (solver callable, claims optimality?)
SOLVERS: dict[str, tuple[Callable[[SelectionInstance], Selection], bool]] = {
    "greedy": (greedy_select, False),
    "local-search": (local_search_select, False),
    "bnb": (branch_and_bound_select, True),
}


def _mip_scipy(instance: SelectionInstance) -> Selection | None:
    """The HiGHS-backed MIP, or None when scipy.optimize.milp is absent."""
    try:
        from repro.core.mip import solve_mip

        return solve_mip(instance, backend="scipy")
    except ImportError:
        return None


@dataclass
class SolverCheckReport:
    """Outcome of a solver differential run."""

    instances: int = 0
    checks: int = 0
    issues: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.issues)} ISSUES"
        lines = [f"solver differential: {status} "
                 f"({self.checks} checks over {self.instances} instances)"]
        lines.extend("  " + issue for issue in self.issues)
        return "\n".join(lines)


def check_instance(instance: SelectionInstance,
                   report: SolverCheckReport | None = None,
                   label: str = "") -> SolverCheckReport:
    """Run every solver against brute force on one (small) instance."""
    if report is None:
        report = SolverCheckReport()
    report.instances += 1
    prefix = f"{label}: " if label else ""
    exact = brute_force_select(instance)
    optimum = instance.capped_workload_cost(exact.selected)

    solutions: list[tuple[str, Selection, bool]] = []
    for name, (solver, claims_optimal) in SOLVERS.items():
        solutions.append((name, solver(instance), claims_optimal))
    mip = _mip_scipy(instance)
    if mip is not None:
        solutions.append(("mip-scipy", mip, True))

    for name, selection, claims_optimal in solutions:
        report.checks += 1
        if not instance.is_feasible(selection.selected):
            report.issues.append(
                f"{prefix}{name} returned infeasible selection "
                f"{selection.selected} (storage "
                f"{instance.storage_of(selection.selected):.3g} > budget "
                f"{instance.budget:.3g})")
            continue
        cost = instance.capped_workload_cost(selection.selected)
        tol = _REL_TOL * max(1.0, abs(optimum))
        if cost < optimum - tol:
            report.issues.append(
                f"{prefix}{name} beat the brute-force optimum "
                f"({cost!r} < {optimum!r}) — oracle or solver is wrong")
        elif claims_optimal and cost > optimum + tol:
            report.issues.append(
                f"{prefix}{name} claims exactness but returned cost "
                f"{cost!r}, optimum is {optimum!r} "
                f"(selected {selection.selected}, "
                f"optimal {exact.selected})")
    return report


def check_budget_sweep(
    instance: SelectionInstance,
    budgets: Sequence[float] | None = None,
    report: SolverCheckReport | None = None,
    label: str = "",
) -> SolverCheckReport:
    """Differential-check one instance across a sweep of budgets —
    zero, insufficient (below the smallest replica), single-replica,
    and effectively unlimited."""
    if report is None:
        report = SolverCheckReport()
    if budgets is None:
        smallest = float(instance.storage.min()) if instance.n_replicas else 0.0
        total = float(instance.storage.sum())
        budgets = [0.0, smallest * 0.5, smallest, total * 0.4, total]
    for budget in budgets:
        check_instance(instance.with_budget(float(budget)), report,
                       label=f"{label}b={budget:.3g}")
    return report

"""Spatio-temporal partitioning schemes for BLOT systems (Section II-B).

The paper's candidate layouts partition space with an equal-count k-d
tree and refine each spatial cell into equi-depth temporal slices; this
package also provides uniform grids and adaptive quadtrees for
illustrations and ablations, plus the global partitioning index.
"""

from repro.partition.base import Partitioning, PartitioningScheme, check_partitioning
from repro.partition.composite import (
    CompositeScheme,
    paper_partitioning_schemes,
    small_partitioning_schemes,
)
from repro.partition.grid import GridPartitioner
from repro.partition.index import PartitionIndex
from repro.partition.kdtree import KdTreePartitioner
from repro.partition.quadtree import QuadtreePartitioner
from repro.partition.temporal import TemporalSlicer, equi_depth_boundaries, slice_labels

__all__ = [
    "CompositeScheme",
    "GridPartitioner",
    "KdTreePartitioner",
    "PartitionIndex",
    "Partitioning",
    "PartitioningScheme",
    "QuadtreePartitioner",
    "TemporalSlicer",
    "check_partitioning",
    "equi_depth_boundaries",
    "paper_partitioning_schemes",
    "slice_labels",
    "small_partitioning_schemes",
]

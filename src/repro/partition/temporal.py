"""Equi-depth temporal slicing."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset
from repro.geometry import Box3
from repro.partition.base import Partitioning, PartitioningScheme


def equi_depth_boundaries(
    times: np.ndarray, n_slices: int, t_min: float, t_max: float
) -> np.ndarray:
    """``n_slices + 1`` slice boundaries with near-equal record counts.

    Interior boundaries are time quantiles of ``times``; the outer
    boundaries are pinned to ``[t_min, t_max]`` so the slices cover the
    universe's time range even when built from a sample.
    """
    if n_slices < 1:
        raise ValueError("n_slices must be >= 1")
    if times.size == 0:
        return np.linspace(t_min, t_max, n_slices + 1)
    interior = np.quantile(times, np.linspace(0, 1, n_slices + 1)[1:-1])
    # Interior boundaries must stay strictly below t_max: a face equal to
    # the universe's upper bound would read as closed under the canonical
    # half-open placement rule and make ownership ambiguous.
    interior = np.minimum(interior, np.nextafter(t_max, t_min))
    boundaries = np.concatenate(([t_min], interior, [t_max]))
    # Quantiles of skewed samples may dip outside [t_min, t_max] pins or
    # invert at the edges; enforce monotonicity.
    return np.maximum.accumulate(np.clip(boundaries, t_min, t_max))


def slice_labels(times: np.ndarray, boundaries: np.ndarray) -> np.ndarray:
    """Slice index per record.  Records on an interior boundary go right,
    matching half-open ``[b_i, b_{i+1})`` slices (last slice closed)."""
    labels = np.searchsorted(boundaries[1:-1], times, side="right")
    return labels.astype(np.int64)


@dataclass(frozen=True)
class TemporalSlicer(PartitioningScheme):
    """Time-only partitioning into ``n_slices`` equi-depth slices spanning
    the whole spatial extent."""

    n_slices: int

    def __post_init__(self) -> None:
        if self.n_slices < 1:
            raise ValueError("n_slices must be >= 1")

    @property
    def name(self) -> str:
        return f"T{self.n_slices}"

    @property
    def n_partitions(self) -> int:
        return self.n_slices

    def build(self, dataset: Dataset, universe: Box3 | None = None) -> Partitioning:
        if len(dataset) == 0:
            raise ValueError("cannot slice an empty dataset")
        u = universe or dataset.bounding_box()
        times = dataset.column("t")
        boundaries = equi_depth_boundaries(times, self.n_slices, u.t_min, u.t_max)
        labels = slice_labels(times, boundaries)
        box_array = np.empty((self.n_slices, 6), dtype=np.float64)
        box_array[:, 0] = u.x_min
        box_array[:, 1] = u.x_max
        box_array[:, 2] = u.y_min
        box_array[:, 3] = u.y_max
        box_array[:, 4] = boundaries[:-1]
        box_array[:, 5] = boundaries[1:]
        return Partitioning(self.name, u, box_array, labels)

"""Uniform grid partitioning.

Not used by the paper's candidate set (which is k-d tree based) but needed
for the Figure 2 partitioning-tradeoff illustration, the quadtree
comparison and several tests: a plain ``nx x ny x nt`` equal-*extent* grid
whose partitions are generally *skewed* in record count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset
from repro.geometry import Box3
from repro.partition.base import Partitioning, PartitioningScheme


@dataclass(frozen=True)
class GridPartitioner(PartitioningScheme):
    """Uniform grid with ``nx * ny * nt`` equal-extent cells."""

    nx: int
    ny: int
    nt: int = 1

    def __post_init__(self) -> None:
        if min(self.nx, self.ny, self.nt) < 1:
            raise ValueError("grid dimensions must be >= 1")

    @property
    def name(self) -> str:
        return f"G{self.nx}x{self.ny}x{self.nt}"

    @property
    def n_partitions(self) -> int:
        return self.nx * self.ny * self.nt

    def build(self, dataset: Dataset, universe: Box3 | None = None) -> Partitioning:
        if len(dataset) == 0:
            raise ValueError("cannot build a grid on an empty dataset")
        u = universe or dataset.bounding_box()
        xs = np.linspace(u.x_min, u.x_max, self.nx + 1)
        ys = np.linspace(u.y_min, u.y_max, self.ny + 1)
        ts = np.linspace(u.t_min, u.t_max, self.nt + 1)

        def cell_of(values: np.ndarray, edges: np.ndarray) -> np.ndarray:
            idx = np.searchsorted(edges[1:-1], values, side="right")
            return np.clip(idx, 0, len(edges) - 2)

        ix = cell_of(dataset.column("x"), xs)
        iy = cell_of(dataset.column("y"), ys)
        it = cell_of(dataset.column("t"), ts)
        labels = (ix * self.ny + iy) * self.nt + it

        box_array = np.empty((self.n_partitions, 6), dtype=np.float64)
        k = 0
        for i in range(self.nx):
            for j in range(self.ny):
                for m in range(self.nt):
                    box_array[k] = (xs[i], xs[i + 1], ys[j], ys[j + 1], ts[m], ts[m + 1])
                    k += 1
        return Partitioning(self.name, u, box_array, labels.astype(np.int64))

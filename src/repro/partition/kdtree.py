"""Equal-count k-d tree spatial partitioner.

The paper's evaluation partitions space "according to a k-d tree index
which recursively decomposes the space by alternatively using each space
dimension" with equal record counts per leaf (Section V-A) — the
non-skewed property the cost model relies on.

Split positions come from data quantiles: each internal node cuts at the
value that sends (as nearly as duplicate coordinates allow) the first
``L_left/L`` fraction of its records to the left child.

Placement is *canonical half-open*: a record goes left iff its coordinate
is strictly below the cut value, so ties never straddle a boundary and a
partition's exact contents can be recomputed from the partition boxes
alone — the property replica recovery relies on
(:mod:`repro.storage.recovery`).  With duplicate coordinates (taxis
dwelling at a stand emit identical positions) leaf counts may deviate
from perfect balance by the size of the tied group.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset
from repro.geometry import Box3
from repro.partition.base import Partitioning, PartitioningScheme

_AXES = ("x", "y")


def _canonical_cut(sorted_values: np.ndarray, target: int) -> tuple[float, int]:
    """Cut value for a canonical half-open split near position ``target``.

    Returns ``(boundary, left_count)`` where ``left_count = #{v < boundary}``
    is as close to ``target`` as duplicate values allow.  The boundary is
    the midpoint between the last left and first right (distinct) values,
    so ``v < boundary`` reproduces the split exactly from the boundary
    alone *and* the boundary never collides with the data maximum — which
    matters because a face equal to the universe's upper bound is treated
    as closed by the canonical placement rule.
    """
    n = len(sorted_values)
    if n == 0:
        return 0.0, 0
    if target <= 0:
        return float(sorted_values[0]), 0
    if target >= n:
        return float(sorted_values[-1]), n  # degenerate: all left
    pivot = sorted_values[target]
    # Option A: cut below the pivot's tied group (ties go right).
    below = int(np.searchsorted(sorted_values, pivot, side="left"))
    # Option B: cut above the tied group (ties go left).
    above = int(np.searchsorted(sorted_values, pivot, side="right"))
    candidates = []
    if below > 0:
        candidates.append((abs(target - below), below))
    if above < n:
        candidates.append((abs(target - above), above))
    if not candidates:
        # Every value is identical: no non-degenerate cut exists.
        return float(pivot), 0
    _, left_count = min(candidates)
    last_left = float(sorted_values[left_count - 1])
    first_right = float(sorted_values[left_count])
    boundary = (last_left + first_right) / 2.0
    # Guard against midpoint rounding onto an endpoint (adjacent floats):
    # keep the invariant last_left < boundary <= first_right.
    if boundary <= last_left:
        boundary = first_right
    return boundary, left_count


@dataclass(frozen=True)
class KdTreePartitioner(PartitioningScheme):
    """Spatial-only equal-count k-d tree with ``n_leaves`` leaves.

    ``n_leaves`` may be any integer >= 1 (the paper uses powers of 4 so the
    alternating x/y splits tile space like a square grid).  Leaf boxes span
    the universe's full time range.
    """

    n_leaves: int

    def __post_init__(self) -> None:
        if self.n_leaves < 1:
            raise ValueError("n_leaves must be >= 1")

    @property
    def name(self) -> str:
        return f"KD{self.n_leaves}"

    @property
    def n_partitions(self) -> int:
        return self.n_leaves

    def build(self, dataset: Dataset, universe: Box3 | None = None) -> Partitioning:
        if len(dataset) == 0:
            raise ValueError("cannot build a k-d tree on an empty dataset")
        u = universe or dataset.bounding_box()
        coords = {axis: dataset.column(axis) for axis in _AXES}
        labels = np.empty(len(dataset), dtype=np.int64)
        boxes: list[tuple[float, float, float, float]] = []

        def split(indices: np.ndarray, bounds: tuple[float, float, float, float],
                  leaves: int, depth: int) -> None:
            """bounds = (x_min, x_max, y_min, y_max)."""
            if leaves == 1:
                labels[indices] = len(boxes)
                boxes.append(bounds)
                return
            left_leaves = leaves // 2
            target = round(len(indices) * left_leaves / leaves)
            target = min(max(target, 0), len(indices))
            # Prefer the alternating axis, but fall back to the other one
            # when tied coordinates make its best cut badly unbalanced.
            preferred = _AXES[depth % len(_AXES)]
            other = _AXES[(depth + 1) % len(_AXES)]
            options = []
            for axis_name in (preferred, other):
                values = coords[axis_name][indices]
                boundary, left_count = _canonical_cut(np.sort(values), target)
                options.append((abs(left_count - target), axis_name,
                                boundary, left_count))
            if options[0][0] <= options[1][0]:
                _, axis, boundary, left_count = options[0]
            else:
                _, axis, boundary, left_count = options[1]
            values = coords[axis][indices]
            if left_count <= 0:
                boundary = bounds[0] if axis == "x" else bounds[2]
            elif left_count >= len(indices):
                boundary = bounds[1] if axis == "x" else bounds[3]
            left_mask = values < boundary
            left_idx = indices[left_mask]
            right_idx = indices[~left_mask]
            if axis == "x":
                left_bounds = (bounds[0], boundary, bounds[2], bounds[3])
                right_bounds = (boundary, bounds[1], bounds[2], bounds[3])
            else:
                left_bounds = (bounds[0], bounds[1], bounds[2], boundary)
                right_bounds = (bounds[0], bounds[1], boundary, bounds[3])
            split(left_idx, left_bounds, left_leaves, depth + 1)
            split(right_idx, right_bounds, leaves - left_leaves, depth + 1)

        split(
            np.arange(len(dataset)),
            (u.x_min, u.x_max, u.y_min, u.y_max),
            self.n_leaves,
            0,
        )
        box_array = np.empty((len(boxes), 6), dtype=np.float64)
        for i, (x0, x1, y0, y1) in enumerate(boxes):
            box_array[i] = (x0, x1, y0, y1, u.t_min, u.t_max)
        return Partitioning(self.name, u, box_array, labels)

"""The partitioning index: range -> involved partitions lookup.

The paper calls for "a small global data structure to index the
spatio-temporal ranges of all data partitions" (Section II-B).  For
moderate partition counts a vectorized linear scan over the box array is
unbeatable; for the million-partition schemes at the large end of the
candidate grid this module adds a coarse uniform-grid accelerator that
prunes to candidate buckets first, then verifies exactly.
"""

from __future__ import annotations

import numpy as np

from repro.geometry import Box3, boxes_intersect_mask


class PartitionIndex:
    """Query-to-involved-partitions index over an ``(n, 6)`` box array.

    ``resolution`` controls the coarse grid (cells per axis).  The index
    answers :meth:`involved` exactly — the grid only narrows the candidate
    set.  With ``resolution=1`` it degenerates to the linear scan.
    """

    def __init__(self, box_array: np.ndarray, universe: Box3, resolution: int = 16):
        if resolution < 1:
            raise ValueError("resolution must be >= 1")
        self.box_array = np.asarray(box_array, dtype=np.float64)
        if self.box_array.ndim != 2 or self.box_array.shape[1] != 6:
            raise ValueError(f"box_array must be (n, 6), got {self.box_array.shape}")
        self.universe = universe
        self.resolution = resolution
        self._edges = (
            np.linspace(universe.x_min, universe.x_max, resolution + 1),
            np.linspace(universe.y_min, universe.y_max, resolution + 1),
            np.linspace(universe.t_min, universe.t_max, resolution + 1),
        )
        # For each axis, the [lo, hi] cell span of every partition box.
        self._spans = []
        for axis, (lo_col, hi_col) in enumerate(((0, 1), (2, 3), (4, 5))):
            lo = self._cell_of(self.box_array[:, lo_col], axis)
            hi = self._cell_of(self.box_array[:, hi_col], axis)
            self._spans.append((lo, hi))

    def _cell_of(self, values: np.ndarray, axis: int) -> np.ndarray:
        edges = self._edges[axis]
        idx = np.searchsorted(edges[1:-1], values, side="right")
        return np.clip(idx, 0, self.resolution - 1)

    def __len__(self) -> int:
        return int(self.box_array.shape[0])

    def involved(self, query: Box3) -> np.ndarray:
        """Ids of partitions whose range intersects ``query`` (exact)."""
        q = (
            (query.x_min, query.x_max),
            (query.y_min, query.y_max),
            (query.t_min, query.t_max),
        )
        candidate = np.ones(len(self), dtype=bool)
        for axis, (q_lo, q_hi) in enumerate(q):
            lo_cell = int(self._cell_of(np.array([q_lo]), axis)[0])
            hi_cell = int(self._cell_of(np.array([q_hi]), axis)[0])
            span_lo, span_hi = self._spans[axis]
            candidate &= (span_lo <= hi_cell) & (span_hi >= lo_cell)
        ids = np.flatnonzero(candidate)
        exact = boxes_intersect_mask(self.box_array[ids], query)
        return ids[exact]

    def count_involved(self, query: Box3) -> int:
        """``Np(q, r)`` for a positioned query."""
        return int(self.involved(query).size)

    def memory_bytes(self) -> int:
        """Approximate resident size — the paper's point is that this stays
        small enough to keep in memory on one node."""
        spans = sum(lo.nbytes + hi.nbytes for lo, hi in self._spans)
        edges = sum(e.nbytes for e in self._edges)
        return int(self.box_array.nbytes + spans + edges)

"""Space-then-time composite partitioning (the TrajStore/CloST layout).

"In TrajStore and CloST, for example, data are first partitioned by
location and then further partitioned by time" (Section II-B).  A
composite scheme wraps any spatial scheme and splits each spatial cell's
records into equi-depth temporal slices; the paper's 25 candidate schemes
are k-d tree spatial (4^2..4^6 leaves) x temporal (2^4..2^8 slices).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset
from repro.geometry import Box3
from repro.partition.base import Partitioning, PartitioningScheme
from repro.partition.kdtree import KdTreePartitioner
from repro.partition.temporal import equi_depth_boundaries, slice_labels


@dataclass(frozen=True)
class CompositeScheme(PartitioningScheme):
    """``spatial`` partitioning refined by ``n_time_slices`` per cell.

    Temporal boundaries are per-spatial-cell record-time quantiles (outer
    boundaries pinned to the universe), so with an equal-count spatial
    scheme the final partitions are near equal-count overall.
    """

    spatial: PartitioningScheme
    n_time_slices: int

    def __post_init__(self) -> None:
        if self.n_time_slices < 1:
            raise ValueError("n_time_slices must be >= 1")

    @property
    def name(self) -> str:
        return f"{self.spatial.name}xT{self.n_time_slices}"

    @property
    def n_partitions(self) -> int:
        return self.spatial.n_partitions * self.n_time_slices

    def build(self, dataset: Dataset, universe: Box3 | None = None) -> Partitioning:
        u = universe or dataset.bounding_box()
        base = self.spatial.build(dataset, u)
        nt = self.n_time_slices
        times = dataset.column("t")
        n_cells = base.n_partitions
        box_array = np.empty((n_cells * nt, 6), dtype=np.float64)
        labels = np.empty(len(dataset), dtype=np.int64)
        for cell in range(n_cells):
            idx = base.partition_indices(cell)
            boundaries = equi_depth_boundaries(times[idx], nt, u.t_min, u.t_max)
            cell_box = base.box_array[cell]
            lo = cell * nt
            box_array[lo:lo + nt, 0:4] = cell_box[0:4]
            box_array[lo:lo + nt, 4] = boundaries[:-1]
            box_array[lo:lo + nt, 5] = boundaries[1:]
            labels[idx] = lo + slice_labels(times[idx], boundaries)
        return Partitioning(self.name, u, box_array, labels)


def paper_partitioning_schemes() -> list[CompositeScheme]:
    """The evaluation's 25 candidate spatio-temporal schemes: k-d tree
    spatial partitions from {4^2..4^6} crossed with temporal slice counts
    from {2^4..2^8} (Section V-A)."""
    return [
        CompositeScheme(KdTreePartitioner(4**s), 2**t)
        for s in range(2, 7)
        for t in range(4, 9)
    ]


def small_partitioning_schemes(
    spatial_leaves: tuple[int, ...] = (4, 16, 64),
    time_slices: tuple[int, ...] = (4, 8, 16),
) -> list[CompositeScheme]:
    """A laptop-scale candidate grid with the same structure as the
    paper's 25 schemes; used by tests, examples and fast benches."""
    return [
        CompositeScheme(KdTreePartitioner(s), t)
        for s in spatial_leaves
        for t in time_slices
    ]

"""Partitioning-scheme abstraction (paper Definitions 1-2).

A *partitioning scheme* ``P`` divides the dataset bounding box ``U`` into
disjoint space partitions that jointly cover ``U``; the *data partition*
of ``p_i`` holds every record spatio-temporally contained by ``p_i``.

A scheme object is a recipe (``KD(256) x T(64)``); calling
:meth:`PartitioningScheme.build` on a dataset realizes it into a
:class:`Partitioning`: the concrete partition boxes plus the per-record
partition labels.  Schemes derive split positions from data quantiles, so
building on an i.i.d. sample yields boxes representative of the full
dataset — this is how the paper sizes replicas "using only a small portion
of the data".
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset
from repro.geometry import Box3, array_to_boxes, boxes_intersect_mask


@dataclass(frozen=True)
class Partitioning:
    """A realized partitioning: boxes, per-record labels, counts.

    ``labels[i]`` is the partition id of record ``i`` of the dataset the
    partitioning was built from; ``counts[j] == (labels == j).sum()``.
    ``counts`` is derived from ``labels`` unless supplied explicitly (the
    manifest-loading path reconstructs a partitioning without the source
    dataset; see :func:`Partitioning.from_boxes`).
    """

    scheme_name: str
    universe: Box3
    box_array: np.ndarray
    labels: np.ndarray
    counts: np.ndarray | None = None

    def __post_init__(self) -> None:
        arr = np.asarray(self.box_array, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[1] != 6:
            raise ValueError(f"box_array must be (n, 6), got {arr.shape}")
        if np.any(self.labels < 0) or (self.labels.size and self.labels.max() >= len(arr)):
            raise ValueError("labels reference partitions outside box_array")
        if self.counts is None:
            object.__setattr__(
                self,
                "counts",
                np.bincount(self.labels, minlength=len(arr)).astype(np.int64),
            )
        else:
            counts = np.asarray(self.counts, dtype=np.int64)
            if counts.shape != (len(arr),):
                raise ValueError(
                    f"counts shape {counts.shape} does not match {len(arr)} boxes"
                )
            object.__setattr__(self, "counts", counts)

    @staticmethod
    def from_boxes(
        scheme_name: str,
        universe: Box3,
        box_array: np.ndarray,
        counts: np.ndarray,
    ) -> "Partitioning":
        """Reconstruct a partitioning from persisted geometry + counts
        (no per-record labels; :meth:`partition_indices`/:meth:`records_of`
        are unavailable on such an instance)."""
        return Partitioning(
            scheme_name=scheme_name,
            universe=universe,
            box_array=np.asarray(box_array, dtype=np.float64),
            labels=np.empty(0, dtype=np.int64),
            counts=np.asarray(counts, dtype=np.int64),
        )

    @property
    def n_partitions(self) -> int:
        return int(self.box_array.shape[0])

    def boxes(self) -> list[Box3]:
        """Partition boxes as :class:`Box3` objects (materialized lazily)."""
        return array_to_boxes(self.box_array)

    def involved(self, query: Box3) -> np.ndarray:
        """Ids of partitions whose range intersects the query range —
        the partitions a BLOT system must scan (Section II-D)."""
        return np.flatnonzero(boxes_intersect_mask(self.box_array, query))

    def partition_indices(self, partition_id: int) -> np.ndarray:
        """Record indices belonging to one partition."""
        return np.flatnonzero(self.labels == partition_id)

    def records_of(self, dataset: Dataset, partition_id: int) -> Dataset:
        """The data partition ``d_i = D(p_i)`` of the source dataset."""
        return dataset.take(self.partition_indices(partition_id))

    def skew(self) -> float:
        """Max/mean partition size — 1.0 means perfectly non-skewed, the
        property the cost model assumes (Section IV-A)."""
        nonzero = self.counts[self.counts > 0]
        if nonzero.size == 0:
            return 1.0
        return float(self.counts.max() / self.counts.mean())


class PartitioningScheme(ABC):
    """Recipe for partitioning a dataset's bounding box."""

    @property
    @abstractmethod
    def name(self) -> str:
        """Stable human-readable identifier, e.g. ``"KD256xT64"``."""

    @property
    @abstractmethod
    def n_partitions(self) -> int:
        """Number of partitions the scheme produces."""

    @abstractmethod
    def build(self, dataset: Dataset, universe: Box3 | None = None) -> Partitioning:
        """Realize the scheme on ``dataset``.

        ``universe`` defaults to the dataset bounding box; pass the full
        dataset's ``U`` explicitly when building from a sample so the outer
        partition boundaries cover the whole space.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


def check_partitioning(partitioning: Partitioning, dataset: Dataset) -> None:
    """Validate Definition 1/2 invariants; raises AssertionError on
    violation.  Used by tests and by the storage engine in debug mode.

    Checks: every record is labeled with a box that contains it, partition
    volumes sum to the universe volume (cover + disjointness for
    axis-aligned tilings), and every box lies inside the universe.
    """
    arr = partitioning.box_array
    u = partitioning.universe
    for row in arr:
        assert u.contains_box(Box3(*row)), f"partition {row} escapes universe"
    total = float(
        np.prod(
            np.stack([arr[:, 1] - arr[:, 0], arr[:, 3] - arr[:, 2], arr[:, 5] - arr[:, 4]]),
            axis=0,
        ).sum()
    )
    scale = max(abs(total), abs(u.volume), 1e-30)
    assert abs(total - u.volume) / scale < 1e-6, (
        f"partition volumes sum to {total}, universe volume is {u.volume}"
    )
    x, y, t = dataset.column("x"), dataset.column("y"), dataset.column("t")
    lab = partitioning.labels
    b = arr[lab]
    eps = 1e-9
    inside = (
        (x >= b[:, 0] - eps) & (x <= b[:, 1] + eps)
        & (y >= b[:, 2] - eps) & (y <= b[:, 3] + eps)
        & (t >= b[:, 4] - eps) & (t <= b[:, 5] + eps)
    )
    assert inside.all(), f"{(~inside).sum()} records fall outside their partition box"

"""Point-region quadtree partitioner.

An alternative adaptive spatial scheme (cited by the paper's related work
via Samet's survey): recursively split the most populated spatial cell
into four equal quadrants until the target leaf count is reached.  Unlike
the equal-count k-d tree, leaves have equal *extent* locally but skewed
counts globally — useful as an ablation of the non-skew assumption in the
cost model.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset
from repro.geometry import Box3
from repro.partition.base import Partitioning, PartitioningScheme


@dataclass(frozen=True)
class QuadtreePartitioner(PartitioningScheme):
    """Adaptive quadtree with exactly ``n_leaves`` spatial leaves.

    ``n_leaves`` must be of the form ``3k + 1`` (every split replaces one
    leaf with four).  Leaves span the universe's full time range.
    """

    n_leaves: int

    def __post_init__(self) -> None:
        if self.n_leaves < 1 or (self.n_leaves - 1) % 3 != 0:
            raise ValueError("quadtree leaf count must be 1 + 3k")

    @property
    def name(self) -> str:
        return f"Q{self.n_leaves}"

    @property
    def n_partitions(self) -> int:
        return self.n_leaves

    def build(self, dataset: Dataset, universe: Box3 | None = None) -> Partitioning:
        if len(dataset) == 0:
            raise ValueError("cannot build a quadtree on an empty dataset")
        u = universe or dataset.bounding_box()
        x = dataset.column("x")
        y = dataset.column("y")
        # Max-heap of (-count, tiebreak, bounds, indices).
        counter = itertools.count()
        heap: list[tuple[int, int, tuple[float, float, float, float], np.ndarray]] = [
            (-len(dataset), next(counter), (u.x_min, u.x_max, u.y_min, u.y_max),
             np.arange(len(dataset)))
        ]
        while len(heap) < self.n_leaves:
            neg_count, _, bounds, indices = heapq.heappop(heap)
            x0, x1, y0, y1 = bounds
            mx, my = (x0 + x1) / 2.0, (y0 + y1) / 2.0
            xi, yi = x[indices], y[indices]
            west = xi < mx
            south = yi < my
            quadrants = (
                ((x0, mx, y0, my), indices[west & south]),
                ((x0, mx, my, y1), indices[west & ~south]),
                ((mx, x1, y0, my), indices[~west & south]),
                ((mx, x1, my, y1), indices[~west & ~south]),
            )
            for qbounds, qidx in quadrants:
                heapq.heappush(heap, (-len(qidx), next(counter), qbounds, qidx))
        labels = np.empty(len(dataset), dtype=np.int64)
        box_array = np.empty((self.n_leaves, 6), dtype=np.float64)
        for leaf_id, (_, _, (x0, x1, y0, y1), indices) in enumerate(heap):
            labels[indices] = leaf_id
            box_array[leaf_id] = (x0, x1, y0, y1, u.t_min, u.t_max)
        return Partitioning(self.name, u, box_array, labels)

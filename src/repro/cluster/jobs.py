"""Query execution and calibration jobs on simulated clusters.

Bridges replica geometry (cost-model :class:`ReplicaProfile`) to map-only
scan jobs: a positioned query's involved partitions become one
:class:`MapTask` each.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import JobResult, MapTask, SimulatedCluster
from repro.costmodel.calibrate import CalibrationResult, calibrate_encoding
from repro.costmodel.model import CostModel, ReplicaProfile
from repro.geometry import boxes_intersect_count, centroid_range
from repro.workload.query import GroupedQuery, Query


def position_query(
    query: Query | GroupedQuery,
    profile: ReplicaProfile,
    rng: np.random.Generator | None = None,
) -> Query:
    """Positioned form of ``query``: grouped queries get a centroid drawn
    uniformly from their admissible centroid range (Definition 6's
    uniform-position assumption)."""
    if isinstance(query, Query):
        return query
    if rng is None:
        raise ValueError("positioning a grouped query requires an rng")
    cr = centroid_range(profile.universe, query.size)
    return query.at(
        rng.uniform(cr.x_min, cr.x_max) if cr.width > 0 else cr.x_min,
        rng.uniform(cr.y_min, cr.y_max) if cr.height > 0 else cr.y_min,
        rng.uniform(cr.t_min, cr.t_max) if cr.duration > 0 else cr.t_min,
    )


def query_scan_tasks(profile: ReplicaProfile, query: Query) -> list[MapTask]:
    """One :class:`MapTask` per involved partition of a positioned query."""
    n_involved = boxes_intersect_count(profile.box_array, query.box())
    return [
        MapTask(profile.encoding_name, profile.records_per_partition)
    ] * n_involved


def simulate_query(
    cluster: SimulatedCluster, profile: ReplicaProfile, query: Query
) -> JobResult:
    """Run a positioned query as a map-only job on the cluster."""
    return cluster.run_map_only_job(query_scan_tasks(profile, query))


@dataclass(frozen=True)
class RoutedQueryResult:
    """A simulated query execution after cost-based replica routing."""

    query: Query
    replica_name: str
    estimated_seconds: float
    job: JobResult


def simulate_routed_query(
    cluster: SimulatedCluster,
    profiles: list[ReplicaProfile],
    cost_model: CostModel,
    query: Query,
) -> RoutedQueryResult:
    """Route ``query`` to the cheapest replica by estimated cost, then
    actually execute it on the simulated cluster — the end-to-end path of
    Figure 2."""
    if not profiles:
        raise ValueError("need at least one replica profile")
    best, best_cost = None, float("inf")
    for profile in profiles:
        cost = cost_model.query_cost(query, profile)
        if cost < best_cost:
            best, best_cost = profile, cost
    assert best is not None
    job = simulate_query(cluster, best, query)
    return RoutedQueryResult(
        query=query, replica_name=best.name, estimated_seconds=best_cost, job=job,
    )


def calibrate_environment(
    cluster: SimulatedCluster,
    encoding_names: list[str],
    sizes: tuple[int, ...] | None = None,
    partitions_per_set: int | None = None,
) -> dict[str, CalibrationResult]:
    """Calibrate every encoding on a simulated cluster (paper Section V-B:
    "7 x 2 = 14 measurements").  Returns per-encoding fits; feed
    ``{name: fit.params}`` into :class:`~repro.costmodel.CostModel`."""
    kwargs: dict = {}
    if sizes is not None:
        kwargs["sizes"] = sizes
    if partitions_per_set is not None:
        kwargs["partitions_per_set"] = partitions_per_set
    backend = cluster.measurement_backend()
    return {
        name: calibrate_encoding(name, backend, **kwargs)
        for name in encoding_names
    }


def cost_model_for(
    cluster: SimulatedCluster,
    encoding_names: list[str],
    sizes: tuple[int, ...] | None = None,
) -> CostModel:
    """Convenience: calibrate and wrap into a :class:`CostModel`."""
    fits = calibrate_environment(cluster, encoding_names, sizes=sizes)
    return CostModel({name: fit.params for name, fit in fits.items()})

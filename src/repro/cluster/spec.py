"""Hardware/framework specification of a simulated execution environment.

The paper evaluates in two environments (Amazon S3 + EMR, and a local
Hadoop cluster).  We cannot access either, so the cluster simulators are
parameterized by an :class:`EnvironmentSpec` describing where time goes
when one mapper scans one partition:

    task time = startup + unit lookup
              + compressed_bytes / effective_io_bandwidth
              + compressed_bytes * decompress_seconds_per_byte[codec]
              + n_records * parse_seconds_per_record[layout]
              + cleanup

``startup`` covers scheduling plus JVM/EMR task initialization (the bulk
of the paper's ExtraCost: ~30 s on EMR, ~4-5 s on the local cluster);
``effective_io_bandwidth`` is the per-mapper streaming rate *including*
framework per-byte overheads, which is why it is far below raw disk/S3
throughput.  The calibration procedure rediscovers ScanRate/ExtraTime
from the simulated measurements exactly as the paper does from real ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.encoding.rowbin import ROW_BYTES


@dataclass(frozen=True)
class EnvironmentSpec:
    """Ground-truth timing parameters of a simulated cluster."""

    name: str
    map_slots: int
    task_startup_seconds: float
    task_startup_jitter: float  # lognormal sigma applied to startup
    unit_lookup_seconds: float  # locating the S3 object / HDFS file
    effective_io_bandwidth: float  # bytes/second seen by one mapper
    parse_seconds_per_record: dict[str, float]  # layout ("ROW"/"COL") -> s
    decompress_seconds_per_byte: dict[str, float]  # codec name -> s
    cleanup_seconds: float = 0.1

    def __post_init__(self) -> None:
        if self.map_slots < 1:
            raise ValueError("map_slots must be >= 1")
        if self.effective_io_bandwidth <= 0:
            raise ValueError("effective_io_bandwidth must be positive")
        for layout in ("ROW", "COL"):
            if layout not in self.parse_seconds_per_record:
                raise ValueError(f"missing parse cost for layout {layout!r}")

    def decompress_cost(self, codec: str) -> float:
        try:
            return self.decompress_seconds_per_byte[codec]
        except KeyError:
            raise KeyError(
                f"environment {self.name!r} has no decompress cost for codec "
                f"{codec!r}"
            ) from None


#: Compression ratios relative to uncompressed row binary, used as the
#: simulators' ground truth for on-disk partition sizes.  These are the
#: paper's measured Table I values; pass your own (e.g. measured with
#: :func:`repro.costmodel.measure_encoding_ratios`) to override.
PAPER_TABLE1_RATIOS: dict[str, float] = {
    "ROW-PLAIN": 1.000,
    "COL-PLAIN": 0.557,
    "ROW-SNAPPY": 0.485,
    "COL-SNAPPY": 0.312,
    "ROW-GZIP": 0.283,
    "COL-GZIP": 0.179,
    "ROW-LZMA2": 0.213,
    "COL-LZMA2": 0.156,
}


def split_encoding_name(encoding_name: str) -> tuple[str, str]:
    """``"COL-GZIP" -> ("COL", "GZIP")``."""
    layout, _, codec = encoding_name.partition("-")
    if layout not in ("ROW", "COL") or not codec:
        raise ValueError(f"malformed encoding name {encoding_name!r}")
    return layout, codec


@dataclass(frozen=True)
class TaskTimeModel:
    """Deterministic per-task time composition for one environment, given
    the encoding ratios in force."""

    spec: EnvironmentSpec
    encoding_ratios: dict[str, float] = field(
        default_factory=lambda: dict(PAPER_TABLE1_RATIOS)
    )

    def bytes_for(self, encoding_name: str, n_records: float) -> float:
        """Stored bytes of a partition of ``n_records`` records."""
        try:
            ratio = self.encoding_ratios[encoding_name]
        except KeyError:
            raise KeyError(f"no compression ratio for {encoding_name!r}") from None
        return n_records * ROW_BYTES * ratio

    def scan_seconds(self, encoding_name: str, n_records: float) -> float:
        """Noise-free time for the IO + decompress + parse portion."""
        layout, codec = split_encoding_name(encoding_name)
        nbytes = self.bytes_for(encoding_name, n_records)
        io = nbytes / self.spec.effective_io_bandwidth
        decompress = nbytes * self.spec.decompress_cost(codec)
        parse = n_records * self.spec.parse_seconds_per_record[layout]
        return io + decompress + parse

    def extra_seconds(self) -> float:
        """Noise-free per-task constant portion (the model's ExtraTime)."""
        return (
            self.spec.task_startup_seconds
            + self.spec.unit_lookup_seconds
            + self.spec.cleanup_seconds
        )

    def task_seconds(
        self, encoding_name: str, n_records: float, rng: np.random.Generator
    ) -> float:
        """One mapper's end-to-end time, with startup jitter."""
        startup = self.spec.task_startup_seconds
        if self.spec.task_startup_jitter > 0:
            startup *= float(
                rng.lognormal(mean=0.0, sigma=self.spec.task_startup_jitter)
            )
        return (
            startup
            + self.spec.unit_lookup_seconds
            + self.scan_seconds(encoding_name, n_records)
            + self.spec.cleanup_seconds
        )

"""Distributed placement of storage units and node-failure recovery.

In the paper's deployments a replica's storage units live on cluster
nodes (HDFS blocks) or in an object store.  With *diverse* replicas the
interesting placement question is anti-affinity: units of different
replicas that cover overlapping spatio-temporal regions should land on
different nodes, so that one node failure never takes out a region in
every replica at once — the precondition for the paper's "diverse
replicas can recover each other" property to survive real failures.

This module provides:

- :class:`ClusterPlacement` — assigns every unit of every registered
  replica to one of ``n_nodes`` nodes (``spread``, ``random`` or
  ``anti-affinity`` policies) and can *fail* a node, deleting its units
  from the backing stores;
- :meth:`ClusterPlacement.plan_recovery` — for each lost unit, pick a
  surviving diverse replica able to answer the unit's box;
- :meth:`ClusterPlacement.execute_recovery` — run the plan through
  :func:`repro.storage.recovery.repair_partition`;
- :class:`ShardAssignment` / :func:`assign_shards` — the serving tier's
  static unit-to-shard map: every ``(replica, partition)`` unit is owned
  by exactly one shard worker, by stable hash (load spreading) or by
  spatial runs balanced on record counts (query co-location, after
  Kumar et al.'s affinity-aware placement).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field, replace as dataclasses_replace

import numpy as np

from repro.geometry import Box3, boxes_intersect_mask
from repro.storage.recovery import repair_partition
from repro.storage.replica import StoredReplica

PLACEMENT_POLICIES = ("spread", "random", "anti-affinity")

SHARDING_MODES = ("hash", "spatial")


@dataclass(frozen=True)
class LostUnit:
    """One storage unit destroyed by a node failure."""

    replica_name: str
    partition_id: int
    key: str


@dataclass(frozen=True)
class FailureReport:
    """Everything a node failure destroyed."""

    node_id: int
    lost: tuple[LostUnit, ...]

    def lost_by_replica(self) -> dict[str, list[int]]:
        out: dict[str, list[int]] = {}
        for unit in self.lost:
            out.setdefault(unit.replica_name, []).append(unit.partition_id)
        return out


@dataclass(frozen=True)
class RecoveryStep:
    """Repair one partition of one replica from a diverse source."""

    replica_name: str
    partition_id: int
    source_name: str


@dataclass(frozen=True)
class RecoveryPlan:
    """Ordered repair steps plus anything that cannot be recovered."""

    steps: tuple[RecoveryStep, ...]
    unrecoverable: tuple[LostUnit, ...]

    @property
    def is_complete(self) -> bool:
        return not self.unrecoverable


@dataclass
class _PlacedUnit:
    replica_name: str
    partition_id: int
    key: str
    box: Box3
    node_id: int
    alive: bool = True


class ClusterPlacement:
    """Unit-to-node assignment for the diverse replicas of one dataset."""

    def __init__(self, n_nodes: int, rng: np.random.Generator | None = None):
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        self.n_nodes = n_nodes
        self._rng = rng or np.random.default_rng(0)
        self._replicas: dict[str, StoredReplica] = {}
        self._units: dict[str, _PlacedUnit] = {}  # key -> placement
        self._load = np.zeros(n_nodes, dtype=np.int64)
        self._failed: set[int] = set()
        self._allowed: dict[str, list[int]] = {}  # replica -> node subset

    # -- registration -----------------------------------------------------

    def add_replica(
        self,
        replica: StoredReplica,
        policy: str = "spread",
        nodes: list[int] | None = None,
    ) -> None:
        """Place every unit of ``replica`` onto nodes.

        ``nodes`` restricts placement to a node subset (rack/zone-style
        isolation: putting different replicas on disjoint node groups
        guarantees a single node failure never hits overlapping regions
        of two replicas at once).
        """
        if policy not in PLACEMENT_POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; have {PLACEMENT_POLICIES}")
        if replica.name in self._replicas:
            raise ValueError(f"replica {replica.name!r} already placed")
        allowed = list(range(self.n_nodes)) if nodes is None else list(nodes)
        if not allowed or any(not 0 <= n < self.n_nodes for n in allowed):
            raise ValueError(f"invalid node subset {nodes!r}")
        self._replicas[replica.name] = replica
        self._allowed[replica.name] = allowed
        offset = int(self._rng.integers(len(allowed)))
        placed = 0
        for pid, key in enumerate(replica.unit_keys):
            if key is None:
                continue
            box = Box3(*replica.partitioning.box_array[pid])
            if policy == "spread":
                node = allowed[(offset + placed) % len(allowed)]
            elif policy == "random":
                node = allowed[int(self._rng.integers(len(allowed)))]
            else:
                node = self._anti_affinity_node(replica.name, box, allowed)
            self._units[key] = _PlacedUnit(replica.name, pid, key, box, node)
            self._load[node] += 1
            placed += 1

    def _anti_affinity_node(
        self, replica_name: str, box: Box3, allowed: list[int]
    ) -> int:
        """Allowed node with the fewest overlapping units of *other*
        replicas, ties broken by load."""
        overlap = np.zeros(self.n_nodes, dtype=np.int64)
        for unit in self._units.values():
            if unit.replica_name != replica_name and unit.box.intersects(box):
                overlap[unit.node_id] += 1
        score = overlap * (self._load.max() + 1) + self._load
        best = min(allowed, key=lambda n: score[n])
        return int(best)

    # -- introspection ------------------------------------------------------

    def replica(self, name: str) -> StoredReplica:
        return self._replicas[name]

    def node_of(self, key: str) -> int:
        return self._units[key].node_id

    def units_on(self, node_id: int) -> list[LostUnit]:
        return [
            LostUnit(u.replica_name, u.partition_id, u.key)
            for u in self._units.values()
            if u.node_id == node_id and u.alive
        ]

    def load(self) -> np.ndarray:
        """Units per node."""
        return self._load.copy()

    def region_copies(self, box: Box3) -> dict[str, int]:
        """How many *alive* units per replica intersect ``box`` — the
        redundancy the region currently enjoys."""
        out: dict[str, int] = {name: 0 for name in self._replicas}
        for unit in self._units.values():
            if unit.alive and unit.box.intersects(box):
                out[unit.replica_name] += 1
        return out

    # -- failure & recovery -------------------------------------------------

    def fail_node(self, node_id: int) -> FailureReport:
        """Destroy a node: delete its units from the backing stores."""
        if not 0 <= node_id < self.n_nodes:
            raise ValueError(f"node {node_id} out of range")
        if node_id in self._failed:
            raise ValueError(f"node {node_id} already failed")
        self._failed.add(node_id)
        lost = []
        for unit in self._units.values():
            if unit.node_id == node_id and unit.alive:
                unit.alive = False
                replica = self._replicas[unit.replica_name]
                replica.store.delete(unit.key)
                lost.append(LostUnit(unit.replica_name, unit.partition_id,
                                     unit.key))
        return FailureReport(node_id=node_id, lost=tuple(lost))

    def _source_candidates(self, damaged_name: str, box: Box3) -> list[str]:
        """Replicas whose units covering ``box`` are all alive."""
        out = []
        for name, replica in self._replicas.items():
            if name == damaged_name:
                continue
            involved = replica.involved_partitions(box)
            ok = True
            for pid in involved:
                key = replica.unit_keys[int(pid)]
                if key is None:
                    continue
                unit = self._units.get(key)
                if unit is None or not unit.alive:
                    ok = False
                    break
            if ok:
                out.append(name)
        return out

    def plan_recovery(self, report: FailureReport) -> RecoveryPlan:
        """Choose a surviving diverse source for every lost unit."""
        steps = []
        unrecoverable = []
        for lost in report.lost:
            replica = self._replicas[lost.replica_name]
            box = Box3(*replica.partitioning.box_array[lost.partition_id])
            sources = self._source_candidates(lost.replica_name, box)
            if sources:
                steps.append(RecoveryStep(
                    lost.replica_name, lost.partition_id, sources[0]))
            else:
                unrecoverable.append(lost)
        return RecoveryPlan(steps=tuple(steps),
                            unrecoverable=tuple(unrecoverable))

    def execute_recovery(
        self, plan: RecoveryPlan, target_node: int | None = None
    ) -> int:
        """Run the plan; repaired units are re-placed on ``target_node``
        (default: the least-loaded surviving node).  Returns records
        restored."""
        survivors = [n for n in range(self.n_nodes) if n not in self._failed]
        if not survivors:
            raise RuntimeError("no surviving nodes to place repaired units on")
        restored = 0
        for step in plan.steps:
            damaged = self._replicas[step.replica_name]
            source = self._replicas[step.source_name]
            restored += repair_partition(damaged, step.partition_id, source)
            key = damaged.unit_keys[step.partition_id]
            assert key is not None
            node = target_node
            if node is None:
                # Stay inside the replica's node subset (zone isolation
                # must survive recovery); fall back to any survivor only
                # when the whole zone is down.
                zone = [n for n in self._allowed[step.replica_name]
                        if n not in self._failed]
                pool = zone or survivors
                node = min(pool, key=lambda n: int(self._load[n]))
            unit = self._units[key]
            self._load[unit.node_id] -= 1
            unit.node_id = node
            unit.alive = True
            self._load[node] += 1
        return restored

    def recover_all(self, report: FailureReport) -> tuple[int, RecoveryPlan]:
        """Iterate plan/execute to a fixed point.

        Units whose source regions were damaged too become recoverable
        once those regions are repaired in earlier rounds; units lost in
        *every* replica stay unrecoverable (with two replicas that is real
        data loss — the scenario node-subset or anti-affinity placement
        exists to prevent).  Returns ``(records_restored, final_plan)``
        where the final plan holds only the truly unrecoverable units.
        """
        restored = 0
        pending = report
        while True:
            plan = self.plan_recovery(pending)
            if not plan.steps:
                return restored, plan
            restored += self.execute_recovery(plan)
            if plan.is_complete:
                return restored, plan
            pending = FailureReport(pending.node_id, plan.unrecoverable)


# -- serving-tier sharding ---------------------------------------------------


@dataclass(frozen=True)
class ShardAssignment:
    """A static map of every ``(replica, partition)`` unit to one shard.

    Plain picklable data: the serving tier ships one assignment to every
    ``spawn``-started worker, and each worker masks the unit keys it
    does not own (:meth:`mask_replica`) so the engine's scan simply never
    touches another shard's partitions.  Because the owners cover each
    replica exactly once, the per-shard partial results of one query —
    all served from the *same* replica — union to precisely the
    single-process result.

    ``owners[replica_name][pid]`` is the owning shard id.
    """

    n_shards: int
    mode: str
    owners: dict[str, tuple[int, ...]]

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if self.mode not in SHARDING_MODES:
            raise ValueError(
                f"unknown sharding mode {self.mode!r}; have {SHARDING_MODES}")
        for name, shards in self.owners.items():
            bad = [s for s in shards if not 0 <= s < self.n_shards]
            if bad:
                raise ValueError(
                    f"replica {name!r} assigns partitions to shards {bad} "
                    f"outside [0, {self.n_shards})"
                )

    @property
    def replica_names(self) -> tuple[str, ...]:
        return tuple(sorted(self.owners))

    def shard_of(self, replica_name: str, partition_id: int) -> int:
        return self.owners[replica_name][partition_id]

    def partitions_for(self, shard_id: int, replica_name: str) -> tuple[int, ...]:
        """The partition ids of one replica owned by ``shard_id``."""
        return tuple(
            pid for pid, s in enumerate(self.owners[replica_name])
            if s == shard_id
        )

    def unit_counts(self) -> list[int]:
        """Owned units per shard, over all replicas (balance check)."""
        counts = [0] * self.n_shards
        for shards in self.owners.values():
            for s in shards:
                counts[s] += 1
        return counts

    def mask_replica(self, replica: StoredReplica, shard_id: int) -> StoredReplica:
        """``replica`` as seen by one shard: unit keys this shard does
        not own are masked to ``None``, which the engine's scan paths
        treat as partitions that simply contribute no records."""
        owners = self.owners[replica.name]
        masked = tuple(
            key if owners[pid] == shard_id else None
            for pid, key in enumerate(replica.unit_keys)
        )
        return dataclasses_replace(replica, unit_keys=masked)


def _hash_shard(replica_name: str, partition_id: int, n_shards: int) -> int:
    # crc32, not hash(): stable across processes regardless of
    # PYTHONHASHSEED, so parent and spawned workers agree on ownership.
    token = f"{replica_name}:{partition_id}".encode()
    return zlib.crc32(token) % n_shards


def _spatial_shards(replica: StoredReplica, n_shards: int) -> tuple[int, ...]:
    """Contiguous centroid-ordered runs of partitions, balanced so each
    shard owns roughly equal record counts — spatially close partitions
    co-locate, so a tight query's work lands on few shards."""
    boxes = replica.partitioning.box_array
    counts = np.asarray(replica.partitioning.counts, dtype=np.float64)
    centroids = np.stack([
        (boxes[:, 0] + boxes[:, 1]) / 2,
        (boxes[:, 2] + boxes[:, 3]) / 2,
        (boxes[:, 4] + boxes[:, 5]) / 2,
    ], axis=1)
    order = np.lexsort((centroids[:, 2], centroids[:, 1], centroids[:, 0]))
    total = counts.sum()
    shards = [0] * len(order)
    if total <= 0:
        for i, pid in enumerate(order):
            shards[pid] = i * n_shards // max(len(order), 1)
        return tuple(shards)
    per_shard = total / n_shards
    cum = 0.0
    for pid in order:
        # Assign by the run's record midpoint so one oversized partition
        # does not push every later run into the last shard.
        shard = min(int((cum + counts[pid] / 2) / per_shard), n_shards - 1)
        shards[pid] = shard
        cum += counts[pid]
    return tuple(shards)


def assign_shards(
    replicas, n_shards: int, mode: str = "hash"
) -> ShardAssignment:
    """Build the unit-to-shard map for a replica set.

    ``mode="hash"`` spreads units by a stable crc32 of
    ``replica:partition`` (uniform load, no locality); ``"spatial"``
    gives each shard contiguous centroid-ordered runs balanced by record
    counts (query co-location at the cost of hot-region skew).
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    if mode not in SHARDING_MODES:
        raise ValueError(
            f"unknown sharding mode {mode!r}; have {SHARDING_MODES}")
    owners: dict[str, tuple[int, ...]] = {}
    for replica in replicas:
        if replica.name in owners:
            raise ValueError(f"duplicate replica {replica.name!r}")
        if mode == "hash":
            owners[replica.name] = tuple(
                _hash_shard(replica.name, pid, n_shards)
                for pid in range(replica.partitioning.n_partitions)
            )
        else:
            owners[replica.name] = _spatial_shards(replica, n_shards)
    return ShardAssignment(n_shards=n_shards, mode=mode, owners=owners)

"""Distributed placement of storage units and node-failure recovery.

In the paper's deployments a replica's storage units live on cluster
nodes (HDFS blocks) or in an object store.  With *diverse* replicas the
interesting placement question is anti-affinity: units of different
replicas that cover overlapping spatio-temporal regions should land on
different nodes, so that one node failure never takes out a region in
every replica at once — the precondition for the paper's "diverse
replicas can recover each other" property to survive real failures.

This module provides:

- :class:`ClusterPlacement` — assigns every unit of every registered
  replica to one of ``n_nodes`` nodes (``spread``, ``random`` or
  ``anti-affinity`` policies) and can *fail* a node, deleting its units
  from the backing stores;
- :meth:`ClusterPlacement.plan_recovery` — for each lost unit, pick a
  surviving diverse replica able to answer the unit's box;
- :meth:`ClusterPlacement.execute_recovery` — run the plan through
  :func:`repro.storage.recovery.repair_partition`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry import Box3, boxes_intersect_mask
from repro.storage.recovery import repair_partition
from repro.storage.replica import StoredReplica

PLACEMENT_POLICIES = ("spread", "random", "anti-affinity")


@dataclass(frozen=True)
class LostUnit:
    """One storage unit destroyed by a node failure."""

    replica_name: str
    partition_id: int
    key: str


@dataclass(frozen=True)
class FailureReport:
    """Everything a node failure destroyed."""

    node_id: int
    lost: tuple[LostUnit, ...]

    def lost_by_replica(self) -> dict[str, list[int]]:
        out: dict[str, list[int]] = {}
        for unit in self.lost:
            out.setdefault(unit.replica_name, []).append(unit.partition_id)
        return out


@dataclass(frozen=True)
class RecoveryStep:
    """Repair one partition of one replica from a diverse source."""

    replica_name: str
    partition_id: int
    source_name: str


@dataclass(frozen=True)
class RecoveryPlan:
    """Ordered repair steps plus anything that cannot be recovered."""

    steps: tuple[RecoveryStep, ...]
    unrecoverable: tuple[LostUnit, ...]

    @property
    def is_complete(self) -> bool:
        return not self.unrecoverable


@dataclass
class _PlacedUnit:
    replica_name: str
    partition_id: int
    key: str
    box: Box3
    node_id: int
    alive: bool = True


class ClusterPlacement:
    """Unit-to-node assignment for the diverse replicas of one dataset."""

    def __init__(self, n_nodes: int, rng: np.random.Generator | None = None):
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        self.n_nodes = n_nodes
        self._rng = rng or np.random.default_rng(0)
        self._replicas: dict[str, StoredReplica] = {}
        self._units: dict[str, _PlacedUnit] = {}  # key -> placement
        self._load = np.zeros(n_nodes, dtype=np.int64)
        self._failed: set[int] = set()
        self._allowed: dict[str, list[int]] = {}  # replica -> node subset

    # -- registration -----------------------------------------------------

    def add_replica(
        self,
        replica: StoredReplica,
        policy: str = "spread",
        nodes: list[int] | None = None,
    ) -> None:
        """Place every unit of ``replica`` onto nodes.

        ``nodes`` restricts placement to a node subset (rack/zone-style
        isolation: putting different replicas on disjoint node groups
        guarantees a single node failure never hits overlapping regions
        of two replicas at once).
        """
        if policy not in PLACEMENT_POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; have {PLACEMENT_POLICIES}")
        if replica.name in self._replicas:
            raise ValueError(f"replica {replica.name!r} already placed")
        allowed = list(range(self.n_nodes)) if nodes is None else list(nodes)
        if not allowed or any(not 0 <= n < self.n_nodes for n in allowed):
            raise ValueError(f"invalid node subset {nodes!r}")
        self._replicas[replica.name] = replica
        self._allowed[replica.name] = allowed
        offset = int(self._rng.integers(len(allowed)))
        placed = 0
        for pid, key in enumerate(replica.unit_keys):
            if key is None:
                continue
            box = Box3(*replica.partitioning.box_array[pid])
            if policy == "spread":
                node = allowed[(offset + placed) % len(allowed)]
            elif policy == "random":
                node = allowed[int(self._rng.integers(len(allowed)))]
            else:
                node = self._anti_affinity_node(replica.name, box, allowed)
            self._units[key] = _PlacedUnit(replica.name, pid, key, box, node)
            self._load[node] += 1
            placed += 1

    def _anti_affinity_node(
        self, replica_name: str, box: Box3, allowed: list[int]
    ) -> int:
        """Allowed node with the fewest overlapping units of *other*
        replicas, ties broken by load."""
        overlap = np.zeros(self.n_nodes, dtype=np.int64)
        for unit in self._units.values():
            if unit.replica_name != replica_name and unit.box.intersects(box):
                overlap[unit.node_id] += 1
        score = overlap * (self._load.max() + 1) + self._load
        best = min(allowed, key=lambda n: score[n])
        return int(best)

    # -- introspection ------------------------------------------------------

    def replica(self, name: str) -> StoredReplica:
        return self._replicas[name]

    def node_of(self, key: str) -> int:
        return self._units[key].node_id

    def units_on(self, node_id: int) -> list[LostUnit]:
        return [
            LostUnit(u.replica_name, u.partition_id, u.key)
            for u in self._units.values()
            if u.node_id == node_id and u.alive
        ]

    def load(self) -> np.ndarray:
        """Units per node."""
        return self._load.copy()

    def region_copies(self, box: Box3) -> dict[str, int]:
        """How many *alive* units per replica intersect ``box`` — the
        redundancy the region currently enjoys."""
        out: dict[str, int] = {name: 0 for name in self._replicas}
        for unit in self._units.values():
            if unit.alive and unit.box.intersects(box):
                out[unit.replica_name] += 1
        return out

    # -- failure & recovery -------------------------------------------------

    def fail_node(self, node_id: int) -> FailureReport:
        """Destroy a node: delete its units from the backing stores."""
        if not 0 <= node_id < self.n_nodes:
            raise ValueError(f"node {node_id} out of range")
        if node_id in self._failed:
            raise ValueError(f"node {node_id} already failed")
        self._failed.add(node_id)
        lost = []
        for unit in self._units.values():
            if unit.node_id == node_id and unit.alive:
                unit.alive = False
                replica = self._replicas[unit.replica_name]
                replica.store.delete(unit.key)
                lost.append(LostUnit(unit.replica_name, unit.partition_id,
                                     unit.key))
        return FailureReport(node_id=node_id, lost=tuple(lost))

    def _source_candidates(self, damaged_name: str, box: Box3) -> list[str]:
        """Replicas whose units covering ``box`` are all alive."""
        out = []
        for name, replica in self._replicas.items():
            if name == damaged_name:
                continue
            involved = replica.involved_partitions(box)
            ok = True
            for pid in involved:
                key = replica.unit_keys[int(pid)]
                if key is None:
                    continue
                unit = self._units.get(key)
                if unit is None or not unit.alive:
                    ok = False
                    break
            if ok:
                out.append(name)
        return out

    def plan_recovery(self, report: FailureReport) -> RecoveryPlan:
        """Choose a surviving diverse source for every lost unit."""
        steps = []
        unrecoverable = []
        for lost in report.lost:
            replica = self._replicas[lost.replica_name]
            box = Box3(*replica.partitioning.box_array[lost.partition_id])
            sources = self._source_candidates(lost.replica_name, box)
            if sources:
                steps.append(RecoveryStep(
                    lost.replica_name, lost.partition_id, sources[0]))
            else:
                unrecoverable.append(lost)
        return RecoveryPlan(steps=tuple(steps),
                            unrecoverable=tuple(unrecoverable))

    def execute_recovery(
        self, plan: RecoveryPlan, target_node: int | None = None
    ) -> int:
        """Run the plan; repaired units are re-placed on ``target_node``
        (default: the least-loaded surviving node).  Returns records
        restored."""
        survivors = [n for n in range(self.n_nodes) if n not in self._failed]
        if not survivors:
            raise RuntimeError("no surviving nodes to place repaired units on")
        restored = 0
        for step in plan.steps:
            damaged = self._replicas[step.replica_name]
            source = self._replicas[step.source_name]
            restored += repair_partition(damaged, step.partition_id, source)
            key = damaged.unit_keys[step.partition_id]
            assert key is not None
            node = target_node
            if node is None:
                # Stay inside the replica's node subset (zone isolation
                # must survive recovery); fall back to any survivor only
                # when the whole zone is down.
                zone = [n for n in self._allowed[step.replica_name]
                        if n not in self._failed]
                pool = zone or survivors
                node = min(pool, key=lambda n: int(self._load[n]))
            unit = self._units[key]
            self._load[unit.node_id] -= 1
            unit.node_id = node
            unit.alive = True
            self._load[node] += 1
        return restored

    def recover_all(self, report: FailureReport) -> tuple[int, RecoveryPlan]:
        """Iterate plan/execute to a fixed point.

        Units whose source regions were damaged too become recoverable
        once those regions are repaired in earlier rounds; units lost in
        *every* replica stay unrecoverable (with two replicas that is real
        data loss — the scenario node-subset or anti-affinity placement
        exists to prevent).  Returns ``(records_restored, final_plan)``
        where the final plan holds only the truly unrecoverable units.
        """
        restored = 0
        pending = report
        while True:
            plan = self.plan_recovery(pending)
            if not plan.steps:
                return restored, plan
            restored += self.execute_recovery(plan)
            if plan.is_complete:
                return restored, plan
            pending = FailureReport(pending.node_id, plan.unrecoverable)

"""Locality-aware scheduling of distributed scan jobs.

The paper's map-only jobs run "with each mapper scanning exactly one of
the involved partitions"; on a real cluster each partition's storage unit
lives on a specific node (see :mod:`repro.cluster.placement`), so the
scheduler prefers running a task where its data is and pays a network
transfer when it cannot (standard Hadoop delay-scheduling territory).

:class:`LocalityScheduler` performs deterministic greedy list scheduling
over per-node slot pools: each task is placed on the node that finishes
it earliest, where remote nodes add ``unit_bytes / network_bandwidth``
to the task duration.  Outputs makespan plus the data-local fraction —
the quantities that distinguish good from bad unit placement.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.cluster.placement import ClusterPlacement
from repro.cluster.spec import EnvironmentSpec, TaskTimeModel
from repro.geometry import Box3
from repro.storage.replica import StoredReplica
from repro.workload.query import Query


@dataclass(frozen=True)
class PlacedTask:
    """One scheduled scan task."""

    partition_id: int
    home_node: int
    run_node: int
    start: float
    end: float

    @property
    def data_local(self) -> bool:
        return self.home_node == self.run_node

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class PlacedJobResult:
    """Outcome of a locality-scheduled query job."""

    tasks: tuple[PlacedTask, ...]
    makespan: float

    @property
    def locality_fraction(self) -> float:
        if not self.tasks:
            return 1.0
        return sum(t.data_local for t in self.tasks) / len(self.tasks)

    @property
    def total_task_seconds(self) -> float:
        return sum(t.duration for t in self.tasks)


class LocalityScheduler:
    """Greedy earliest-finish scheduling with per-node slots."""

    def __init__(
        self,
        spec: EnvironmentSpec,
        placement: ClusterPlacement,
        slots_per_node: int = 2,
        network_bandwidth: float = 50e6,  # bytes/second across the fabric
        encoding_ratios: dict[str, float] | None = None,
    ):
        if slots_per_node < 1:
            raise ValueError("slots_per_node must be >= 1")
        if network_bandwidth <= 0:
            raise ValueError("network_bandwidth must be positive")
        self.spec = spec
        self.placement = placement
        self.slots_per_node = slots_per_node
        self.network_bandwidth = network_bandwidth
        self.time_model = (
            TaskTimeModel(spec, dict(encoding_ratios))
            if encoding_ratios is not None else TaskTimeModel(spec)
        )

    def run_query(self, replica_name: str, query: Query) -> PlacedJobResult:
        """Schedule a positioned query's scan tasks over the cluster."""
        replica = self.placement.replica(replica_name)
        box = query.box()
        involved = [int(p) for p in replica.involved_partitions(box)
                    if replica.unit_keys[int(p)] is not None]
        # Per-node slot pools: min-heaps of slot-available times.
        slots: dict[int, list[float]] = {
            node: [0.0] * self.slots_per_node
            for node in range(self.placement.n_nodes)
        }
        for pool in slots.values():
            heapq.heapify(pool)
        tasks: list[PlacedTask] = []
        # Longest-processing-time order improves greedy makespan.
        involved.sort(
            key=lambda pid: -int(replica.partitioning.counts[pid]))
        for pid in involved:
            key = replica.unit_keys[pid]
            home = self.placement.node_of(key)
            n_records = float(replica.partitioning.counts[pid])
            nbytes = replica.store.size(key)
            base = (
                self.time_model.extra_seconds()
                + self.time_model.scan_seconds(
                    replica.encoding_for(pid).name, n_records)
            )
            best: tuple[float, float, int, float] | None = None
            for node, pool in slots.items():
                duration = base
                if node != home:
                    duration += nbytes / self.network_bandwidth
                start = pool[0]
                finish = start + duration
                # Earliest finish; prefer the home node on ties.
                rank = (finish, 0.0 if node == home else 1.0)
                if best is None or rank < (best[0], best[3]):
                    best = (finish, start, node, 0.0 if node == home else 1.0)
            assert best is not None
            finish, start, node, _ = best
            heapq.heapreplace(slots[node], finish)
            tasks.append(PlacedTask(
                partition_id=pid, home_node=home, run_node=node,
                start=start, end=finish,
            ))
        makespan = max((t.end for t in tasks), default=0.0)
        return PlacedJobResult(tasks=tuple(tasks), makespan=makespan)


def estimate_recovery_seconds(
    placement: ClusterPlacement,
    plan,
    spec: EnvironmentSpec,
    network_bandwidth: float = 50e6,
    encoding_ratios: dict[str, float] | None = None,
) -> float:
    """Estimate the wall time of a recovery plan on the environment.

    Each repair step reads the source units covering the lost box (scan
    cost by the source encoding), transfers them across the network and
    re-encodes one unit; steps for different lost units run sequentially
    per source node but the dominant term — total source scan work — is
    what this estimate captures.
    """
    model = (TaskTimeModel(spec, dict(encoding_ratios))
             if encoding_ratios is not None else TaskTimeModel(spec))
    total = 0.0
    for step in plan.steps:
        damaged = placement.replica(step.replica_name)
        source = placement.replica(step.source_name)
        box = Box3(*damaged.partitioning.box_array[step.partition_id])
        for pid in source.involved_partitions(box):
            key = source.unit_keys[int(pid)]
            if key is None:
                continue
            n_records = float(source.partitioning.counts[int(pid)])
            total += model.scan_seconds(
                source.encoding_for(int(pid)).name, n_records)
            total += source.store.size(key) / network_bandwidth
        total += model.spec.unit_lookup_seconds
    return total

"""Simulated execution environments for BLOT systems.

Discrete-event simulators of the paper's two deployments — Amazon S3 +
EMR and a local Hadoop cluster — executing map-only partition-scan jobs
with per-environment startup, lookup, IO and decode costs.  See
DESIGN.md §2 for why simulation substitutes for the real clusters.
"""

from repro.cluster.cluster import (
    JobResult,
    MapTask,
    SimulatedCluster,
    StragglerModel,
    TaskRecord,
)
from repro.cluster.des import Simulator
from repro.cluster.environments import EMR_S3, ENVIRONMENTS, LOCAL_HADOOP, make_cluster
from repro.cluster.locality import (
    LocalityScheduler,
    PlacedJobResult,
    PlacedTask,
    estimate_recovery_seconds,
)
from repro.cluster.placement import (
    ClusterPlacement,
    FailureReport,
    LostUnit,
    PLACEMENT_POLICIES,
    RecoveryPlan,
    RecoveryStep,
    SHARDING_MODES,
    ShardAssignment,
    assign_shards,
)
from repro.cluster.jobs import (
    RoutedQueryResult,
    calibrate_environment,
    cost_model_for,
    position_query,
    query_scan_tasks,
    simulate_query,
    simulate_routed_query,
)
from repro.cluster.spec import (
    EnvironmentSpec,
    PAPER_TABLE1_RATIOS,
    TaskTimeModel,
    split_encoding_name,
)

__all__ = [
    "ClusterPlacement",
    "EMR_S3",
    "ENVIRONMENTS",
    "EnvironmentSpec",
    "FailureReport",
    "JobResult",
    "LOCAL_HADOOP",
    "LocalityScheduler",
    "LostUnit",
    "MapTask",
    "PlacedJobResult",
    "PlacedTask",
    "PLACEMENT_POLICIES",
    "RecoveryPlan",
    "RecoveryStep",
    "SHARDING_MODES",
    "ShardAssignment",
    "assign_shards",
    "PAPER_TABLE1_RATIOS",
    "RoutedQueryResult",
    "SimulatedCluster",
    "StragglerModel",
    "Simulator",
    "TaskRecord",
    "TaskTimeModel",
    "calibrate_environment",
    "cost_model_for",
    "estimate_recovery_seconds",
    "make_cluster",
    "position_query",
    "query_scan_tasks",
    "simulate_query",
    "simulate_routed_query",
    "split_encoding_name",
]

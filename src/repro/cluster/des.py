"""A small discrete-event simulation engine.

Drives the cluster simulators: events are ``(time, seq, callback)``
triples in a heap; callbacks may schedule further events.  ``seq`` breaks
ties deterministically so simulations are reproducible event-for-event.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable


class Simulator:
    """Event loop with a monotonically advancing clock."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` seconds from the current time."""
        if delay < 0:
            raise ValueError(f"cannot schedule {delay}s in the past")
        heapq.heappush(self._heap, (self._now + delay, next(self._seq), callback))

    def schedule_at(self, when: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute simulated time ``when``."""
        if when < self._now:
            raise ValueError(f"cannot schedule at {when} < now {self._now}")
        heapq.heappush(self._heap, (when, next(self._seq), callback))

    def run(self, until: float | None = None) -> float:
        """Process events (optionally only up to time ``until``).

        Returns the final clock value.  Events scheduled during processing
        are handled in the same run.
        """
        while self._heap:
            when, _, callback = self._heap[0]
            if until is not None and when > until:
                self._now = until
                return self._now
            heapq.heappop(self._heap)
            self._now = when
            self._processed += 1
            callback()
        return self._now

"""The two evaluation environments (paper Section V-A), as simulator specs.

Constants are tuned so the *calibrated* parameters land in the regimes of
the paper's Table II:

- **Amazon S3 + EMR** — per-task ExtraCost around 30 s (EMR task init +
  S3 object lookup dominate) and per-record scan costs of tens of
  microseconds, with S3 streaming so slow per mapper that heavier
  compression *speeds scans up* (LZMA2 beats uncompressed).
- **Local Hadoop cluster** — ExtraCost around 5 s and per-record costs of
  hundreds of microseconds, dominated by per-byte disk/framework
  overhead, so uncompressed row is the slowest scan and compressed
  columnar the fastest.

Nothing downstream depends on the absolute values: the experiments
calibrate ScanRate/ExtraTime from simulated measurements exactly as the
paper does from real clusters, and the cost model consumes only the
calibrated values.
"""

from __future__ import annotations

from repro.cluster.cluster import SimulatedCluster
from repro.cluster.spec import EnvironmentSpec

#: Amazon S3 + Elastic MapReduce, circa the paper's 2014 measurements.
EMR_S3 = EnvironmentSpec(
    name="amazon-s3-emr",
    map_slots=20,
    task_startup_seconds=29.5,
    task_startup_jitter=0.05,
    unit_lookup_seconds=0.4,
    effective_io_bandwidth=585_000.0,  # bytes/s per mapper, S3 streaming
    parse_seconds_per_record={"ROW": 15e-6, "COL": 8e-6},
    decompress_seconds_per_byte={
        "PLAIN": 0.0,
        "SNAPPY": 2.1e-6,
        "GZIP": 4.8e-6,
        "LZMA2": 2.8e-6,
    },
    cleanup_seconds=0.1,
)

#: Small on-premise Hadoop cluster with HDFS-resident partitions.
LOCAL_HADOOP = EnvironmentSpec(
    name="local-hadoop",
    map_slots=8,
    task_startup_seconds=4.6,
    task_startup_jitter=0.08,
    unit_lookup_seconds=0.25,
    effective_io_bandwidth=82_000.0,  # bytes/s per mapper incl. contention
    parse_seconds_per_record={"ROW": 100e-6, "COL": 35e-6},
    decompress_seconds_per_byte={
        "PLAIN": 0.0,
        "SNAPPY": 5.0e-6,
        "GZIP": 7.2e-6,
        "LZMA2": 7.3e-6,
    },
    cleanup_seconds=0.15,
)

ENVIRONMENTS: dict[str, EnvironmentSpec] = {
    EMR_S3.name: EMR_S3,
    LOCAL_HADOOP.name: LOCAL_HADOOP,
}


def make_cluster(
    environment: str | EnvironmentSpec,
    encoding_ratios: dict[str, float] | None = None,
    seed: int = 1234,
) -> SimulatedCluster:
    """Construct a simulated cluster for a named or explicit environment."""
    if isinstance(environment, str):
        try:
            environment = ENVIRONMENTS[environment]
        except KeyError:
            raise KeyError(
                f"unknown environment {environment!r}; have {sorted(ENVIRONMENTS)}"
            ) from None
    return SimulatedCluster(environment, encoding_ratios=encoding_ratios, seed=seed)

"""Discrete-event simulated cluster running map-only scan jobs.

The paper processes a query by launching "a map-only MapReduce job ...
with each mapper scanning exactly one of the involved partitions"
(Section V-A).  :class:`SimulatedCluster` reproduces that execution
shape: tasks wait for free map slots, run for a duration given by the
environment's :class:`~repro.cluster.spec.TaskTimeModel`, and the job
finishes when the last mapper does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.des import Simulator
from repro.cluster.spec import EnvironmentSpec, TaskTimeModel


@dataclass(frozen=True, slots=True)
class MapTask:
    """One mapper's work: scan a partition of ``n_records`` records stored
    under ``encoding_name``."""

    encoding_name: str
    n_records: float

    def __post_init__(self) -> None:
        if self.n_records < 0:
            raise ValueError("n_records must be non-negative")


@dataclass(frozen=True)
class TaskRecord:
    """Simulated execution record of one task."""

    task: MapTask
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class StragglerModel:
    """Heavy-tail task behaviour: with ``probability`` a task's duration
    is multiplied by a uniform draw from ``slowdown`` — the classic
    MapReduce straggler (bad disk, hot neighbour, swapping JVM)."""

    probability: float = 0.05
    slowdown: tuple[float, float] = (3.0, 8.0)

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        lo, hi = self.slowdown
        if not 1.0 <= lo <= hi:
            raise ValueError("slowdown must satisfy 1 <= lo <= hi")

    def factor(self, rng: np.random.Generator) -> float:
        if rng.random() < self.probability:
            return float(rng.uniform(*self.slowdown))
        return 1.0


@dataclass(frozen=True)
class JobResult:
    """Outcome of one map-only job."""

    tasks: tuple[TaskRecord, ...]
    makespan: float
    backups_launched: int = 0
    backups_won: int = 0

    @property
    def total_task_seconds(self) -> float:
        """Sum of task durations — the sequential-work measure matching the
        cost model's ``Cost(q, r)`` (Eq. 7 sums over partitions)."""
        return sum(t.duration for t in self.tasks)

    @property
    def mean_task_seconds(self) -> float:
        if not self.tasks:
            return 0.0
        return self.total_task_seconds / len(self.tasks)


class SimulatedCluster:
    """A fixed pool of map slots executing scan tasks.

    Deterministic given the construction seed: each job draws its noise
    from a child generator, so job outcomes do not depend on how many
    events earlier jobs processed.
    """

    def __init__(
        self,
        spec: EnvironmentSpec,
        encoding_ratios: dict[str, float] | None = None,
        seed: int = 1234,
        straggler: StragglerModel | None = None,
        speculative_execution: bool = False,
        speculation_threshold: float = 1.5,
    ):
        """``straggler`` injects heavy-tail task durations;
        ``speculative_execution`` launches a backup attempt for a task
        whose elapsed time exceeds ``speculation_threshold`` times the
        median completed duration while slots sit idle (Hadoop-style
        speculation; first attempt to finish wins, the other is killed).
        """
        if speculation_threshold <= 1.0:
            raise ValueError("speculation_threshold must be > 1")
        self.spec = spec
        self.time_model = (
            TaskTimeModel(spec, dict(encoding_ratios))
            if encoding_ratios is not None
            else TaskTimeModel(spec)
        )
        self.straggler = straggler
        self.speculative_execution = speculative_execution
        self.speculation_threshold = speculation_threshold
        self._seed_sequence = np.random.SeedSequence(seed)
        self._jobs_run = 0

    def _next_rng(self) -> np.random.Generator:
        rng = np.random.default_rng(self._seed_sequence.spawn(1)[0])
        self._jobs_run += 1
        return rng

    def run_map_only_job(self, tasks: list[MapTask]) -> JobResult:
        """Execute ``tasks`` over the cluster's map slots."""
        if not tasks:
            return JobResult(tasks=(), makespan=0.0)
        rng = self._next_rng()
        sim = Simulator()
        pending = list(enumerate(tasks))
        pending.reverse()  # pop() yields original order
        records: list[TaskRecord | None] = [None] * len(tasks)
        free_slots = self.spec.map_slots
        # Per-task attempt bookkeeping for speculation.
        attempts: dict[int, list[dict]] = {i: [] for i in range(len(tasks))}
        completed_durations: list[float] = []
        backups_launched = 0
        backups_won = 0

        def sample_duration(task: MapTask) -> float:
            duration = self.time_model.task_seconds(
                task.encoding_name, task.n_records, rng)
            if self.straggler is not None:
                duration *= self.straggler.factor(rng)
            return duration

        def launch(idx: int, task: MapTask, backup: bool) -> None:
            nonlocal free_slots, backups_launched
            free_slots -= 1
            duration = sample_duration(task)
            attempt = {
                "start": sim.now,
                "end": sim.now + duration,
                "cancelled": False,
                "backup": backup,
            }
            attempts[idx].append(attempt)
            if backup:
                backups_launched += 1

            def complete() -> None:
                nonlocal free_slots, backups_won
                if attempt["cancelled"]:
                    return  # slot was already reclaimed at kill time
                free_slots += 1
                if records[idx] is not None:
                    try_dispatch()
                    return
                records[idx] = TaskRecord(task, attempt["start"], sim.now)
                completed_durations.append(sim.now - attempt["start"])
                if attempt["backup"]:
                    backups_won += 1
                # Kill the sibling attempt, reclaiming its slot now.
                for other in attempts[idx]:
                    if other is not attempt and not other["cancelled"] \
                            and records[idx] is not None and other["end"] > sim.now:
                        other["cancelled"] = True
                        free_slots += 1
                try_dispatch()

            sim.schedule(duration, complete)

        def maybe_speculate() -> None:
            """With idle slots and an empty queue, back up the slowest
            over-threshold running task that has no backup yet."""
            if not self.speculative_execution or not completed_durations:
                return
            median = float(np.median(completed_durations))
            candidates = []
            for idx, task_attempts in attempts.items():
                if records[idx] is not None or not task_attempts:
                    continue
                live = [a for a in task_attempts if not a["cancelled"]]
                if len(live) != 1:
                    continue
                elapsed = sim.now - live[0]["start"]
                if elapsed > self.speculation_threshold * median:
                    candidates.append((elapsed, idx))
            if candidates:
                _, idx = max(candidates)
                launch(idx, tasks[idx], backup=True)

        def try_dispatch() -> None:
            while free_slots > 0 and pending:
                idx, task = pending.pop()
                launch(idx, task, backup=False)
            while free_slots > 0 and not pending:
                before = free_slots
                maybe_speculate()
                if free_slots == before:
                    break

        sim.schedule(0.0, try_dispatch)
        makespan_end = 0.0
        sim.run()
        done = tuple(r for r in records if r is not None)
        assert len(done) == len(tasks), "simulation lost tasks"
        makespan_end = max(t.end for t in done)
        return JobResult(
            tasks=done,
            makespan=makespan_end,
            backups_launched=backups_launched,
            backups_won=backups_won,
        )

    # -- calibration backend -------------------------------------------------

    def measurement_backend(self):
        """A callable for :func:`repro.costmodel.calibrate_encoding`:
        ``backend(encoding_name, partition_records, partitions_per_set)``
        launches one job with that many mappers and returns the average
        task time — exactly the paper's Section V-B procedure."""

        def measure(encoding_name: str, partition_records: int,
                    partitions_per_set: int) -> float:
            job = self.run_map_only_job(
                [MapTask(encoding_name, partition_records)] * partitions_per_set
            )
            return job.mean_task_seconds

        return measure

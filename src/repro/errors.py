"""The consolidated exception surface of the repro package.

Every structured failure the engine and the serving tier can raise
lives here, dependency-free, so any layer (storage, cluster, serve,
CLI) can catch them without import cycles:

- :class:`InjectedFault` — a fault fired by a
  :class:`~repro.storage.faults.FaultInjector` on a storage read;
- :class:`PartitionReadError` — one partition read stayed failed after
  the configured retries (injected or real damage);
- :class:`DegradedReadError` — a query exhausted every replica and
  repair could not restore a readable copy;
- :class:`ReplicaExists` — registering a replica under a taken name;
- :class:`OverloadError` — the serving tier shed a query at admission
  (load shedding is explicit, never silent truncation);
- :class:`QuotaExceededError` — a tenant ran out of request budget;
- :class:`DeadlineExceededError` — a request's propagated deadline
  expired before (or while) a shard served it;
- :class:`SnapshotMergeError` — two per-process metric snapshots could
  not be merged (mismatched histogram bounds or sketch resolution).

The historical homes (``repro.storage.faults``, ``repro.storage.engine``)
re-export their classes from here, so existing ``except`` clauses keep
working unchanged.
"""

from __future__ import annotations


class InjectedFault(RuntimeError):
    """A fault fired by a :class:`~repro.storage.faults.FaultInjector`
    on a storage read.

    ``scope`` is ``"replica"`` when the whole replica is down (retry and
    repair are pointless — the node is gone) or ``"partition"`` when a
    single storage unit is unreadable (repair from a diverse replica can
    restore it).
    """

    def __init__(self, replica_name: str, partition_id: int | None = None,
                 scope: str = "partition"):
        self.replica_name = replica_name
        self.partition_id = partition_id
        self.scope = scope
        where = (f"replica {replica_name!r}" if scope == "replica"
                 else f"partition {partition_id} of replica {replica_name!r}")
        super().__init__(f"injected fault: {where} is failed")


class PartitionReadError(RuntimeError):
    """A partition read that stayed failed after the configured retries.

    Wraps the last underlying error (an :class:`InjectedFault`, a
    :class:`~repro.storage.unit.UnitNotFound`, a decoder error on
    corrupt bytes, ...) so callers can tell injected faults from real
    damage, and whole-replica outages from single-unit ones.
    """

    def __init__(self, replica_name: str, partition_id: int | None,
                 cause: BaseException, attempts: int = 1):
        self.replica_name = replica_name
        self.partition_id = partition_id
        self.cause = cause
        self.attempts = attempts
        super().__init__(
            f"replica {replica_name!r} partition {partition_id}: read failed "
            f"after {attempts} attempt(s): {cause}"
        )

    @property
    def replica_failed(self) -> bool:
        """True when the failure is a whole-replica outage."""
        return (isinstance(self.cause, InjectedFault)
                and self.cause.scope == "replica")


class DegradedReadError(RuntimeError):
    """Every replica able to serve a query failed, and repair could not
    restore a readable copy.

    ``attempts`` records ``(replica_name, error)`` per replica tried, in
    fallback-ranking order, so operators see exactly which copies were
    consulted and why each one failed.
    """

    def __init__(self, message: str,
                 attempts: tuple[tuple[str, Exception], ...] = ()):
        self.attempts = tuple(attempts)
        detail = "; ".join(f"{name}: {err}" for name, err in self.attempts)
        super().__init__(message + (f" [{detail}]" if detail else ""))


class ReplicaExists(ValueError):
    """Raised when adding a replica under a name already in use."""


class OverloadError(RuntimeError):
    """The serving tier refused a query at admission: the in-flight
    limit was reached and the query was shed rather than queued without
    bound.  Shedding is always this structured signal — a shed query
    never silently returns a truncated result.

    ``inflight``/``limit`` report the pressure at rejection time so
    clients can back off proportionally.
    """

    def __init__(self, inflight: int, limit: int):
        self.inflight = inflight
        self.limit = limit
        super().__init__(
            f"serving tier overloaded: {inflight} queries in flight "
            f"(admission limit {limit})"
        )


class QuotaExceededError(RuntimeError):
    """A tenant exhausted its request budget and the query was rejected
    before admission.  ``retry_after_seconds`` is the token-bucket
    refill horizon — the earliest time a retry can succeed."""

    def __init__(self, tenant: str, retry_after_seconds: float = 0.0):
        self.tenant = tenant
        self.retry_after_seconds = float(retry_after_seconds)
        super().__init__(
            f"tenant {tenant!r} exceeded its query quota"
            + (f" (retry in {retry_after_seconds:.2f}s)"
               if retry_after_seconds > 0 else "")
        )


class DeadlineExceededError(RuntimeError):
    """A request's propagated deadline (absolute wall-clock seconds,
    carried by :class:`~repro.obs.distributed.TraceContext`) expired
    before the work completed.  The front door raises it instead of
    dispatching; a shard worker reports it as the task failure when the
    frame arrives already expired."""

    def __init__(self, deadline: float, now: float):
        self.deadline = float(deadline)
        self.now = float(now)
        super().__init__(
            f"deadline exceeded: {now - deadline:.3f}s past the deadline"
        )


class SnapshotMergeError(ValueError):
    """Two per-process metric snapshots disagree on an instrument's
    shape — histogram bucket bounds or quantile-sketch resolution — so
    a bucket-wise merge would silently misbin observations.  Carries
    the metric identity and both shapes for diagnosis."""

    def __init__(self, name: str, labels: dict, reason: str,
                 ours=None, theirs=None):
        self.name = name
        self.labels = dict(labels)
        self.reason = reason
        self.ours = ours
        self.theirs = theirs
        detail = f" (ours={ours!r}, theirs={theirs!r})" \
            if ours is not None or theirs is not None else ""
        super().__init__(
            f"cannot merge metric {name!r} {self.labels!r}: {reason}{detail}"
        )


__all__ = [
    "DeadlineExceededError",
    "DegradedReadError",
    "InjectedFault",
    "OverloadError",
    "PartitionReadError",
    "QuotaExceededError",
    "ReplicaExists",
    "SnapshotMergeError",
]

"""Always-on continuous ingestion on top of immutable replicas.

Location tracking data arrives as a live feed (taxis report every
~30 s), while BLOT replicas are bulk-organized immutable structures.
Following the standard log-structured pattern (TrajStore buffers
inserts the same way), :class:`IngestingBlotStore` keeps

- a set of **base replicas** over the active time window,
- an in-memory **delta buffer** of everything appended since the last
  compaction, made durable by a per-store
  :class:`~repro.storage.wal.WriteAheadLog` (crash → :meth:`open`
  replays the buffer with zero loss), and
- a list of **sealed windows**: read-only, on-disk,
  :class:`~repro.storage.StoreConfig`-describable replica sets over old
  time windows, rolled out of the active set at compaction and swept by
  the :meth:`anti_entropy` CRC + majority-vote check on a schedule.

Queries merge base-replica scans, sealed-window scans and a brute-force
filter of the buffer (the buffer is small by construction); the buffer
filter's time and bytes are accounted *separately*
(``QueryStats.buffer_seconds`` / ``buffer_bytes_scanned``) so Eq. 7
calibration only ever sees replica scan time.

:meth:`compact` folds the buffer into fresh replicas — the moment at
which the replica advisor may also be re-consulted (see
:mod:`repro.core.adaptive`).  With ``background_compaction=True`` the
fold runs on a worker thread: replicas are rebuilt *off to the side*
and the serving set is swapped atomically under a read/write lock, so
``append()`` and ``query()`` never block on a rebuild, and a failed
rebuild leaves the serving set untouched (the frozen batches return to
the buffer).  Compaction's durability protocol is the WAL's
rotate → fold → snapshot cycle: the segment seal at compaction start
bounds exactly the batches being folded, and the single
``snapshot.json`` replace commits the folded dataset, the sealed-window
index and the segment GC together.
"""

from __future__ import annotations

import math
import os
import shutil
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from repro.costmodel.model import CostModel
from repro.data.dataset import Dataset
from repro.encoding.base import EncodingScheme
from repro.geometry import Box3
from repro.partition.base import PartitioningScheme
from repro.storage.engine import (
    BlotStore,
    QueryResult,
    QueryStats,
    WorkloadResult,
    WorkloadStats,
)
from repro.storage.options import ExecOptions
from repro.storage.unit import InMemoryStore
from repro.storage.wal import WriteAheadLog, wal_state_exists
from repro.workload.query import Query

try:
    from repro.obs import NULL_RECORDER
except ImportError:  # pragma: no cover - obs is a hard sibling in-tree
    NULL_RECORDER = None

_WINDOW_DIR = "windows"
_WINDOW_PREFIX = "window-"


@dataclass(frozen=True)
class ReplicaSpec:
    """Recipe for one diverse replica, re-applied at every compaction."""

    scheme: PartitioningScheme
    encoding: EncodingScheme
    name: str | None = None


@dataclass
class SealedWindow:
    """One read-only time window, materialized on disk.

    ``[t_lo, t_hi)`` is the window's half-open time span; late-arriving
    records for an already-sealed span produce an *additional* window
    over the same span (windows are append-only, never rewritten), so
    spans may repeat — queries merge every intersecting window.
    """

    t_lo: float
    t_hi: float
    root: str
    records: int
    config: "StoreConfig"  # noqa: F821 - imported lazily to avoid a cycle
    store: BlotStore

    def intersects(self, box: Box3) -> bool:
        return box.t_max >= self.t_lo and box.t_min < self.t_hi


class ReadWriteLock:
    """A writer-preferring shared/exclusive lock.

    Readers (query paths snapshotting the serving state) may hold it
    concurrently; writers (append bookkeeping + WAL write, and the
    compaction swap) are exclusive.  Writer preference keeps a steady
    query stream from starving the swap."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    @contextmanager
    def read_lock(self):
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def write_lock(self):
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
                self._writer = True
            finally:
                self._writers_waiting -= 1
        try:
            yield
        finally:
            with self._cond:
                self._writer = False
                self._cond.notify_all()


class IngestingBlotStore:
    """A BLOT store that accepts appends between compactions.

    The default configuration matches the original synchronous store:
    in-memory only, ``compact()`` inline on the appending thread.  The
    always-on upgrades are opt-in keywords:

    - ``wal_dir``: write-ahead logging — every appended batch is
      CRC-framed on disk before it is visible, and
      :meth:`IngestingBlotStore.open` recovers the exact acknowledged
      state after a crash;
    - ``background_compaction``: fold the buffer on a worker thread and
      swap the serving replicas atomically, so appends/queries never
      stall on a rebuild;
    - ``window_seconds``: time-windowed rollover — at compaction,
      records older than the open window are sealed into read-only
      on-disk replica sets (:class:`SealedWindow`), keeping the active
      rebuild bounded and giving the anti-entropy sweep (and future
      re-encoding advisors) immutable units to work over;
    - ``anti_entropy_interval``: run :meth:`anti_entropy` —
      ``verify_store``'s CRC + majority-vote sweep over every sealed
      window — whenever the (injectable) clock says it is due.
    """

    def __init__(
        self,
        initial: Dataset,
        replica_specs: list[ReplicaSpec],
        cost_model: CostModel | None = None,
        auto_compact_at: int | None = None,
        *,
        wal_dir: str | None = None,
        fsync_wal: bool = False,
        background_compaction: bool = False,
        window_seconds: float | None = None,
        anti_entropy_interval: float | None = None,
        observability=None,
        clock=time.monotonic,
        _resume: tuple | None = None,
    ):
        """``auto_compact_at`` triggers :meth:`compact` automatically once
        the live buffer holds that many records (None disables)."""
        if not replica_specs:
            raise ValueError("need at least one replica spec")
        if auto_compact_at is not None and auto_compact_at < 1:
            raise ValueError("auto_compact_at must be >= 1")
        if window_seconds is not None:
            if window_seconds <= 0:
                raise ValueError("window_seconds must be positive")
            if wal_dir is None and _resume is None:
                raise ValueError(
                    "window_seconds needs wal_dir (sealed windows are "
                    "materialized on disk under it)")
        if anti_entropy_interval is not None and anti_entropy_interval < 0:
            raise ValueError("anti_entropy_interval must be >= 0")
        self._specs = list(replica_specs)
        if cost_model is None and len(self._specs) > 1:
            # Multi-replica routing needs Eq. 7 constants; an always-on
            # store should not fail its first query for lack of them.
            cost_model = _default_cost_model(self._specs)
        self._cost_model = cost_model
        self._auto_compact_at = auto_compact_at
        self._background = bool(background_compaction)
        self._window_seconds = window_seconds
        self._anti_entropy_interval = anti_entropy_interval
        self._obs = observability
        self._metrics = observability.metrics if observability else None
        self._tracer = (observability.tracer
                        if observability is not None else NULL_RECORDER)
        self._clock = clock
        self._last_anti_entropy: float | None = None

        self._rw = ReadWriteLock()
        self._compact_lock = threading.Lock()
        self._bg_guard = threading.Lock()
        self._bg_thread: threading.Thread | None = None
        self._buffer: list[Dataset] = []
        self._compacting: list[Dataset] = []
        self._windows: list[SealedWindow] = []
        self._compactions = 0
        self._compaction_failures = 0
        self._last_compaction_error: str | None = None
        self._seal_seq = 0
        self._wal: WriteAheadLog | None = None

        if _resume is not None:
            wal, base_dataset, replayed, windows, seal_seq = _resume
            self._wal = wal
            self._windows = list(windows)
            self._buffer = list(replayed)
            self._seal_seq = seal_seq
            self._base = self._build_base(base_dataset)
            return

        if wal_dir is not None:
            if wal_state_exists(wal_dir):
                raise ValueError(
                    f"{wal_dir!r} already holds WAL state; resume it with "
                    "IngestingBlotStore.open() instead of constructing over it"
                )
            self._wal = WriteAheadLog(wal_dir, fsync=fsync_wal,
                                      metrics=self._metrics)
        self._base = self._build_base(initial)
        if self._wal is not None:
            # Make the initial load durable immediately: open() after a
            # crash must never need the caller to re-supply it.
            self._wal.snapshot(initial, through_segment=0,
                               extra=self._snapshot_extra([]))

    # -- crash recovery ----------------------------------------------------

    @classmethod
    def open(
        cls,
        wal_dir: str,
        replica_specs: list[ReplicaSpec],
        cost_model: CostModel | None = None,
        auto_compact_at: int | None = None,
        *,
        fsync_wal: bool = False,
        background_compaction: bool = False,
        window_seconds: float | None = None,
        anti_entropy_interval: float | None = None,
        observability=None,
        clock=time.monotonic,
    ) -> "IngestingBlotStore":
        """Recover a store from its WAL directory after a restart/crash.

        Rebuilds the base replicas from the committed compaction
        snapshot, rehydrates the sealed-window index, and replays every
        acknowledged post-snapshot batch back into the delta buffer —
        sealing any torn final frame the crash left behind.  The result
        answers every query exactly as the pre-crash store did.
        """
        metrics = observability.metrics if observability else None
        wal = WriteAheadLog(wal_dir, fsync=fsync_wal, metrics=metrics)
        base_dataset, _, extra = wal.snapshot_meta()
        if base_dataset is None:
            raise ValueError(
                f"no committed snapshot under {wal_dir!r}; create the store "
                "with IngestingBlotStore(initial, ..., wal_dir=...) first"
            )
        replayed = wal.replay()
        if metrics is not None:
            metrics.counter("repro_wal_replayed_records_total").inc(
                sum(len(b) for b in replayed))
        windows = [cls._hydrate_window(d) for d in extra.get("windows", [])]
        seal_seq = max((w_seq for w_seq in
                        (_window_seq(w.root) for w in windows)
                        if w_seq is not None), default=0)
        _gc_orphan_windows(wal_dir, windows)
        return cls(
            base_dataset, replica_specs, cost_model, auto_compact_at,
            background_compaction=background_compaction,
            window_seconds=window_seconds,
            anti_entropy_interval=anti_entropy_interval,
            observability=observability, clock=clock,
            _resume=(wal, base_dataset, replayed, windows, seal_seq),
        )

    @staticmethod
    def _hydrate_window(descriptor: dict) -> SealedWindow:
        from repro.storage.config import hydrate_store, store_config_from_dict

        config = store_config_from_dict(descriptor["config"])
        return SealedWindow(
            t_lo=float(descriptor["t_lo"]),
            t_hi=float(descriptor["t_hi"]),
            root=descriptor["root"],
            records=int(descriptor["records"]),
            config=config,
            store=hydrate_store(config),
        )

    def _snapshot_extra(self, windows: list[SealedWindow]) -> dict:
        from repro.storage.config import store_config_to_dict

        return {"windows": [
            {"t_lo": w.t_lo, "t_hi": w.t_hi, "root": w.root,
             "records": w.records,
             "config": store_config_to_dict(w.config)}
            for w in windows
        ]}

    def _build_base(self, dataset: Dataset) -> BlotStore:
        store = BlotStore(dataset, cost_model=self._cost_model,
                          observability=self._obs)
        for spec in self._specs:
            store.add_replica(spec.scheme, spec.encoding, InMemoryStore(),
                              name=spec.name)
        return store

    # -- state ------------------------------------------------------------

    @property
    def base(self) -> BlotStore:
        """The replica set over the active window's compacted data."""
        return self._base

    @property
    def windows(self) -> tuple[SealedWindow, ...]:
        """Sealed read-only time windows, oldest first."""
        with self._rw.read_lock():
            return tuple(self._windows)

    @property
    def wal(self) -> WriteAheadLog | None:
        return self._wal

    @property
    def buffered_records(self) -> int:
        """Records appended but not yet folded into replicas (the live
        buffer plus any batches frozen by an in-flight compaction)."""
        with self._rw.read_lock():
            return self._delta_records_unlocked()

    def _delta_records_unlocked(self) -> int:
        return sum(len(d) for d in self._compacting) + \
            sum(len(d) for d in self._buffer)

    def dataset(self) -> Dataset:
        """The full logical dataset (sealed windows + base + buffer)."""
        with self._rw.read_lock():
            windows = list(self._windows)
            base = self._base
            delta = self._compacting + self._buffer
        return Dataset.concat(
            [w.store.dataset for w in windows] + [base.dataset] + delta)

    def __len__(self) -> int:
        with self._rw.read_lock():
            return (sum(w.records for w in self._windows)
                    + len(self._base.dataset)
                    + self._delta_records_unlocked())

    @property
    def compactions(self) -> int:
        """How many compactions have completed (manual + automatic)."""
        return self._compactions

    @property
    def compaction_failures(self) -> int:
        return self._compaction_failures

    @property
    def last_compaction_error(self) -> str | None:
        """The most recent failed rebuild's message (background mode
        records it here instead of raising on the worker thread)."""
        return self._last_compaction_error

    def close(self) -> None:
        """Wait out any in-flight background compaction and release the
        WAL handle and window stores."""
        self.wait_for_compaction()
        if self._wal is not None:
            self._wal.close()
        self._base.close()
        for w in self._windows:
            w.store.close()

    # -- writes ----------------------------------------------------------------

    def append(self, records: Dataset) -> None:
        """Ingest a batch of new records.

        The batch is WAL-logged (when a WAL is attached) before becoming
        visible to queries, so an acknowledged append survives a crash;
        it may trigger a compaction — inline here, or on the background
        worker when ``background_compaction`` is on."""
        if not len(records):
            return
        t0 = time.perf_counter()
        with self._rw.write_lock():
            if self._wal is not None:
                self._wal.append(records)
            self._buffer.append(records)
            live = sum(len(d) for d in self._buffer)
            total = self._delta_records_unlocked()
        if self._metrics is not None:
            self._metrics.counter("repro_ingest_appends_total").inc()
            self._metrics.counter("repro_ingest_records_total").inc(
                len(records))
            self._metrics.histogram("repro_ingest_append_seconds").observe(
                time.perf_counter() - t0)
            self._metrics.gauge("repro_ingest_buffer_records").set(total)
        if self._auto_compact_at is not None and live >= self._auto_compact_at:
            if self._background:
                self._start_background()
            else:
                self.compact()
        self.maybe_anti_entropy()

    # -- compaction -------------------------------------------------------------

    def compact(self) -> None:
        """Fold the buffer into fresh base replicas, synchronously.

        All replica specs are rebuilt over the merged active dataset;
        the universe grows if buffered records fell outside the previous
        bounding box.  With ``window_seconds`` set, records older than
        the open time window are sealed into read-only on-disk windows
        instead of rejoining the active set.  If an in-flight background
        compaction holds the lock, this waits for it and then folds
        whatever is left.  A failing rebuild raises and loses nothing:
        the frozen batches return to the buffer.
        """
        with self._compact_lock:
            self._compact_once("sync")

    def wait_for_compaction(self, timeout: float | None = None) -> None:
        """Block until the background worker (if any) finishes."""
        thread = self._bg_thread
        if thread is not None and thread.is_alive():
            thread.join(timeout)

    def _start_background(self) -> None:
        with self._bg_guard:
            if self._bg_thread is not None and self._bg_thread.is_alive():
                return
            thread = threading.Thread(target=self._background_loop,
                                      name="repro-ingest-compaction",
                                      daemon=True)
            self._bg_thread = thread
            thread.start()

    def _background_loop(self) -> None:
        """Fold until the live buffer is back under the threshold.  A
        failed rebuild is recorded (counter + ``last_compaction_error``)
        and ends the loop; the serving set is untouched and the next
        threshold crossing tries again."""
        while True:
            try:
                with self._compact_lock:
                    did = self._compact_once("background")
            except Exception:
                return
            if not did:
                return
            with self._rw.read_lock():
                live = sum(len(d) for d in self._buffer)
            if self._auto_compact_at is None or live < self._auto_compact_at:
                return

    def _compact_once(self, mode: str) -> bool:
        """One rotate → fold → snapshot → swap cycle.  Caller holds
        ``_compact_lock`` (compactions are single-flight)."""
        with self._rw.write_lock():
            if not self._buffer and not self._compacting:
                return False
            # Seal the WAL segment *in the same critical section* that
            # freezes the buffer: the sealed segments then hold exactly
            # the frozen batches, which is what makes the snapshot's
            # through_segment GC safe.
            sealed_segment = self._wal.rotate() if self._wal else None
            self._compacting = self._compacting + self._buffer
            self._buffer = []
            base = self._base
            frozen = list(self._compacting)
        t0 = time.perf_counter()
        try:
            with self._tracer.start("compact", kind="compact",
                                    mode=mode) as root:
                merged = Dataset.concat(
                    [base.dataset, *frozen]).sorted_by_time()
                new_windows: list[SealedWindow] = []
                active = merged
                if self._window_seconds is not None:
                    with self._tracer.start("seal-windows", parent=root):
                        active, new_windows = self._seal_windows(merged)
                with self._tracer.start("rebuild", parent=root,
                                        records=len(active)):
                    new_base = self._build_base(active)
                if self._wal is not None:
                    with self._tracer.start("snapshot", parent=root):
                        self._wal.snapshot(
                            active, through_segment=sealed_segment,
                            extra=self._snapshot_extra(
                                self._windows + new_windows))
                with self._rw.write_lock():
                    self._base = new_base
                    self._windows.extend(new_windows)
                    self._compacting = []
                    self._compactions += 1
                    buffered = self._delta_records_unlocked()
        except BaseException as exc:
            # Rebuild failed off to the side: the serving set was never
            # touched; return the frozen batches to the head of the
            # buffer (their WAL segments are still on disk — the
            # snapshot that would have GC'd them never committed).
            with self._rw.write_lock():
                self._compacting = []
                self._buffer = frozen + self._buffer
            self._compaction_failures += 1
            self._last_compaction_error = f"{type(exc).__name__}: {exc}"
            if self._metrics is not None:
                self._metrics.counter(
                    "repro_ingest_compaction_failures_total",
                    labels={"mode": mode}).inc()
            raise
        if self._metrics is not None:
            self._metrics.counter("repro_ingest_compactions_total",
                                  labels={"mode": mode}).inc()
            self._metrics.histogram(
                "repro_ingest_compaction_seconds").observe(
                time.perf_counter() - t0)
            if new_windows:
                self._metrics.counter(
                    "repro_ingest_windows_sealed_total").inc(len(new_windows))
            self._metrics.gauge("repro_ingest_windows").set(
                len(self._windows))
            self._metrics.gauge("repro_ingest_buffer_records").set(buffered)
        self.maybe_anti_entropy()
        return True

    def _seal_windows(
        self, merged: Dataset
    ) -> tuple[Dataset, list[SealedWindow]]:
        """Split ``merged`` into the active (open-window) dataset and
        newly sealed on-disk windows for everything older."""
        window = float(self._window_seconds)
        t = merged.column("t")
        open_start = math.floor(float(t.max()) / window) * window
        seal_mask = t < open_start
        if not seal_mask.any():
            return merged, []
        active = merged.take(~seal_mask)
        sealed = merged.take(seal_mask)
        buckets = np.floor(sealed.column("t") / window).astype(np.int64)
        windows = []
        for bucket in np.unique(buckets):
            part = sealed.take(buckets == bucket)
            windows.append(self._materialize_window(
                part, float(bucket) * window, float(bucket + 1) * window))
        return active, windows

    def _materialize_window(self, dataset: Dataset, t_lo: float,
                            t_hi: float) -> SealedWindow:
        from repro.storage.config import hydrate_store, materialize_store

        self._seal_seq += 1
        root = os.path.join(self._wal.dir, _WINDOW_DIR,
                            f"{_WINDOW_PREFIX}{self._seal_seq:06d}")
        cost_params = None
        if self._cost_model is not None:
            cost_params = tuple(
                (name, self._cost_model.params_for(name).scan_rate,
                 self._cost_model.params_for(name).extra_time)
                for name in self._cost_model.encoding_names)
        config = materialize_store(
            dataset,
            [(spec.scheme, spec.encoding, spec.name) for spec in self._specs],
            root, cost_params=cost_params)
        return SealedWindow(t_lo=t_lo, t_hi=t_hi, root=root,
                            records=len(dataset), config=config,
                            store=hydrate_store(config))

    # -- anti-entropy -----------------------------------------------------------

    def maybe_anti_entropy(self, force: bool = False):
        """Run :meth:`anti_entropy` when the schedule says it is due
        (``anti_entropy_interval`` seconds on the injectable clock), or
        always with ``force=True``; returns the sweep reports or None."""
        if self._anti_entropy_interval is None and not force:
            return None
        now = self._clock()
        if not force and self._last_anti_entropy is not None and \
                now - self._last_anti_entropy < self._anti_entropy_interval:
            return None
        self._last_anti_entropy = now
        return self.anti_entropy()

    def anti_entropy(self, n_queries: int = 4, seed: int = 7) -> list:
        """CRC + majority-vote sweep over every sealed window.

        Each window's on-disk units are verified with
        :func:`repro.verify.verify_store`: per-unit CRCs against the
        manifests, cross-replica majority vote on the recovered content,
        and a small differential query sweep.  Returns one
        :class:`~repro.verify.StoreVerification` per window and
        publishes ``repro_antientropy_*`` counters.
        """
        from repro.storage.unit import DirectoryStore
        from repro.verify.diskcheck import verify_store

        with self._rw.read_lock():
            windows = list(self._windows)
        self._last_anti_entropy = self._clock()
        reports = []
        all_ok = True
        with self._tracer.start("anti-entropy", kind="anti-entropy",
                                windows=len(windows)):
            for w in windows:
                verification = verify_store(
                    DirectoryStore(w.config.replicas[0].store_root),
                    [ref.manifest_path for ref in w.config.replicas],
                    n_queries=n_queries, seed=seed)
                reports.append(verification)
                if self._metrics is not None:
                    self._metrics.counter(
                        "repro_antientropy_windows_total").inc()
                    if not verification.ok:
                        self._metrics.counter(
                            "repro_antientropy_failures_total").inc()
                all_ok = all_ok and verification.ok
        if self._metrics is not None:
            self._metrics.counter("repro_antientropy_sweeps_total").inc()
            self._metrics.gauge("repro_antientropy_ok").set(
                1.0 if all_ok else 0.0)
        return reports

    # -- reads ----------------------------------------------------------------

    def _read_state(self):
        with self._rw.read_lock():
            return (self._base, list(self._windows),
                    self._compacting + self._buffer)

    @staticmethod
    def _merge_query_stats(parts: list[QueryStats], *, records_returned: int,
                           total_records: int, buffer_seconds: float,
                           buffer_bytes: int,
                           buffer_records: int) -> QueryStats:
        head = parts[0]
        return QueryStats(
            replica_name=head.replica_name,
            partitions_involved=sum(p.partitions_involved for p in parts),
            records_scanned=sum(p.records_scanned for p in parts)
            + buffer_records,
            records_returned=records_returned,
            bytes_read=sum(p.bytes_read for p in parts),
            seconds=sum(p.seconds for p in parts),
            total_records=total_records,
            retries=sum(p.retries for p in parts),
            failovers=sum(p.failovers for p in parts),
            buffer_seconds=buffer_seconds,
            buffer_bytes_scanned=buffer_bytes,
        )

    def query(self, query: Query | Box3, replica: str | None = None,
              options: ExecOptions | None = None) -> QueryResult:
        """Range query over sealed windows, base replicas and the delta
        buffer.

        A raw :class:`Box3` is matched against its exact bounds in every
        layer (no centered round-trip).  Result order is sealed windows
        (oldest first), then base, then buffer; stats sum the replica
        scans, with the buffer filter accounted separately in
        ``buffer_seconds`` / ``buffer_bytes_scanned``.
        """
        box = query if isinstance(query, Box3) else query.box()
        base, windows, delta = self._read_state()
        base_result = base.query(query, replica=replica, options=options)
        stats_parts = []
        record_parts = []
        for w in windows:
            if not w.intersects(box):
                continue
            w_result = w.store.query(query, replica=replica, options=options)
            record_parts.append(w_result.records)
            stats_parts.append(w_result.stats)
        record_parts.append(base_result.records)
        stats_parts.append(base_result.stats)
        buffer_seconds = 0.0
        buffer_bytes = 0
        buffer_records = 0
        if delta:
            # The buffer filter is engine work too: give it a span that
            # joins the caller's trace (remote context included), so a
            # stitched request tree shows time spent in the unindexed
            # delta alongside the replica scans.
            tracer = self._tracer if (options is not None
                                      and options.trace) else NULL_RECORDER
            ctx = options.trace_context if options is not None else None
            with tracer.start("buffer_scan", context=ctx,
                              batches=len(delta)) as bspan:
                t0 = time.perf_counter()
                record_parts.extend(d.filter_box(box) for d in delta)
                buffer_seconds = time.perf_counter() - t0
                buffer_bytes = sum(d.binary_size_bytes() for d in delta)
                buffer_records = sum(len(d) for d in delta)
                bspan.annotate(records=buffer_records, bytes=buffer_bytes)
        if len(record_parts) == 1 and not delta:
            merged = base_result.records
        else:
            merged = Dataset.concat(record_parts)
        # Keep the base stats object (replica_name = base's serving
        # replica) and fold the other layers in.
        stats_parts = [base_result.stats] + \
            [s for s in stats_parts if s is not base_result.stats]
        stats = self._merge_query_stats(
            stats_parts, records_returned=len(merged),
            total_records=len(self), buffer_seconds=buffer_seconds,
            buffer_bytes=buffer_bytes, buffer_records=buffer_records)
        return QueryResult(records=merged, stats=stats)

    def count(self, query: Query | Box3, replica: str | None = None,
              options: ExecOptions | None = None) -> tuple[int, QueryStats]:
        """Count records in a range across every layer — the buffer-aware
        twin of :meth:`BlotStore.count`, so callers never silently miss
        buffered (or sealed) records by falling through to ``base``."""
        box = query if isinstance(query, Box3) else query.box()
        base, windows, delta = self._read_state()
        total, base_stats = base.count(query, replica=replica,
                                       options=options)
        stats_parts = [base_stats]
        for w in windows:
            if not w.intersects(box):
                continue
            w_total, w_stats = w.store.count(query, replica=replica,
                                             options=options)
            total += w_total
            stats_parts.append(w_stats)
        buffer_seconds = 0.0
        buffer_bytes = 0
        buffer_records = 0
        if delta:
            t0 = time.perf_counter()
            total += sum(d.count_in_box(box) for d in delta)
            buffer_seconds = time.perf_counter() - t0
            buffer_bytes = sum(d.binary_size_bytes() for d in delta)
            buffer_records = sum(len(d) for d in delta)
        stats = self._merge_query_stats(
            stats_parts, records_returned=total, total_records=len(self),
            buffer_seconds=buffer_seconds, buffer_bytes=buffer_bytes,
            buffer_records=buffer_records)
        return total, stats

    def execute_workload(self, workload, plan=None,
                         options: ExecOptions | None = None) -> WorkloadResult:
        """Execute a batch of positioned queries across every layer.

        The base store runs the batch path (union scans, shared
        decodes); each sealed window whose time span intersects any
        query runs it too; the delta buffer is brute-force filtered per
        query.  Every per-query result is the multiset union of the
        layers (window records first, then base, then buffer), so
        results agree with per-query :meth:`query` up to record order.
        """
        base, windows, delta = self._read_state()
        queries = [q for q, _ in workload]
        boxes = [q.box() if isinstance(q, Query) else q for q in queries]
        base_result = base.execute_workload(workload, plan=plan,
                                            options=options)
        window_results = []
        for w in windows:
            if not any(w.intersects(box) for box in boxes):
                continue
            window_results.append(w.store.execute_workload(workload,
                                                           options=options))
        buffer_seconds = 0.0
        buffer_bytes = 0
        buffer_records = 0
        buffer_matches: list[list[Dataset]] = [[] for _ in boxes]
        if delta:
            t0 = time.perf_counter()
            for i, box in enumerate(boxes):
                buffer_matches[i] = [d.filter_box(box) for d in delta]
            buffer_seconds = time.perf_counter() - t0
            buffer_bytes = len(boxes) * sum(d.binary_size_bytes()
                                            for d in delta)
            buffer_records = len(boxes) * sum(len(d) for d in delta)
        total_records = len(self)

        merged_results = []
        for i, base_qr in enumerate(base_result.results):
            parts = [wr.results[i].records for wr in window_results]
            parts.append(base_qr.records)
            parts.extend(buffer_matches[i])
            if len(parts) == 1:
                records = base_qr.records
            else:
                records = Dataset.concat(parts)
            stats_parts = [base_qr.stats] + [wr.results[i].stats
                                             for wr in window_results]
            merged_results.append(QueryResult(
                records=records,
                stats=self._merge_query_stats(
                    stats_parts, records_returned=len(records),
                    total_records=total_records,
                    buffer_seconds=0.0, buffer_bytes=0,
                    buffer_records=sum(len(d) for d in delta)),
            ))

        all_stats = [base_result.stats] + [wr.stats for wr in window_results]
        per_replica: dict[str, int] = {}
        for s in all_stats:
            for name, n in s.per_replica_queries.items():
                per_replica[name] = per_replica.get(name, 0) + n
        failed = tuple(dict.fromkeys(
            name for s in all_stats for name in s.failed_replicas))
        stats = WorkloadStats(
            n_queries=base_result.stats.n_queries,
            seconds=sum(s.seconds for s in all_stats),
            bytes_read=sum(s.bytes_read for s in all_stats),
            records_scanned=sum(s.records_scanned for s in all_stats)
            + buffer_records,
            records_returned=sum(len(r.records) for r in merged_results),
            partitions_decoded=sum(s.partitions_decoded for s in all_stats),
            cache_hits=sum(s.cache_hits for s in all_stats),
            cache_misses=sum(s.cache_misses for s in all_stats),
            per_replica_queries=per_replica,
            retries=sum(s.retries for s in all_stats),
            failovers=sum(s.failovers for s in all_stats),
            repairs=sum(s.repairs for s in all_stats),
            degraded_cost_delta=sum(s.degraded_cost_delta
                                    for s in all_stats),
            failed_replicas=failed,
            buffer_seconds=buffer_seconds,
            buffer_bytes_scanned=buffer_bytes,
        )
        return WorkloadResult(results=tuple(merged_results),
                              plan=base_result.plan, stats=stats)


def _default_cost_model(specs: list[ReplicaSpec]) -> CostModel | None:
    """Calibration-table fallback for multi-replica stores built without
    an explicit cost model; ``None`` when an encoding has no default
    entry (the caller must then pin queries with ``replica=``)."""
    from repro.costmodel.model import EncodingCostParams
    from repro.storage.config import DEFAULT_COST_PARAMS

    defaults = {name: (rate, extra)
                for name, rate, extra in DEFAULT_COST_PARAMS}
    needed = {spec.encoding.name for spec in specs}
    if not needed <= set(defaults):
        return None
    return CostModel({
        name: EncodingCostParams(scan_rate=defaults[name][0],
                                 extra_time=defaults[name][1])
        for name in needed
    })


def _window_seq(root: str) -> int | None:
    name = os.path.basename(root.rstrip("/"))
    if name.startswith(_WINDOW_PREFIX):
        try:
            return int(name[len(_WINDOW_PREFIX):])
        except ValueError:
            return None
    return None


def _gc_orphan_windows(wal_dir: str, committed: list[SealedWindow]) -> None:
    """Delete window directories a crashed compaction wrote but never
    committed (the snapshot.json replace is the commit point)."""
    windows_root = os.path.join(wal_dir, _WINDOW_DIR)
    keep = {os.path.abspath(w.root) for w in committed}
    try:
        names = os.listdir(windows_root)
    except FileNotFoundError:
        return
    for name in names:
        path = os.path.join(windows_root, name)
        if (name.startswith(_WINDOW_PREFIX)
                and os.path.abspath(path) not in keep):
            shutil.rmtree(path, ignore_errors=True)

"""Continuous ingestion on top of immutable replicas.

Location tracking data arrives as a live feed (taxis report every ~30 s),
while BLOT replicas are bulk-organized immutable structures.  Following
the standard log-structured pattern (TrajStore buffers inserts the same
way), :class:`IngestingBlotStore` keeps

- a set of **base replicas** over the data at the last compaction, and
- an in-memory **delta buffer** of everything appended since.

Queries merge base-replica scans with a brute-force filter of the buffer
(the buffer is small by construction); :meth:`compact` folds the buffer
into fresh replicas — the moment at which the replica advisor may also
be re-consulted (see :mod:`repro.core.adaptive`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.model import CostModel
from repro.data.dataset import Dataset
from repro.encoding.base import EncodingScheme
from repro.geometry import Box3
from repro.partition.base import PartitioningScheme
from repro.storage.engine import BlotStore, QueryResult, QueryStats
from repro.storage.unit import InMemoryStore
from repro.workload.query import Query


@dataclass(frozen=True)
class ReplicaSpec:
    """Recipe for one diverse replica, re-applied at every compaction."""

    scheme: PartitioningScheme
    encoding: EncodingScheme
    name: str | None = None


class IngestingBlotStore:
    """A BLOT store that accepts appends between compactions."""

    def __init__(
        self,
        initial: Dataset,
        replica_specs: list[ReplicaSpec],
        cost_model: CostModel | None = None,
        auto_compact_at: int | None = None,
    ):
        """``auto_compact_at`` triggers :meth:`compact` automatically once
        the buffer holds that many records (None disables)."""
        if not replica_specs:
            raise ValueError("need at least one replica spec")
        if auto_compact_at is not None and auto_compact_at < 1:
            raise ValueError("auto_compact_at must be >= 1")
        self._specs = list(replica_specs)
        self._cost_model = cost_model
        self._auto_compact_at = auto_compact_at
        self._buffer: list[Dataset] = []
        self._compactions = 0
        self._base = self._build_base(initial)

    def _build_base(self, dataset: Dataset) -> BlotStore:
        store = BlotStore(dataset, cost_model=self._cost_model)
        for spec in self._specs:
            store.add_replica(spec.scheme, spec.encoding, InMemoryStore(),
                              name=spec.name)
        return store

    # -- state ------------------------------------------------------------

    @property
    def base(self) -> BlotStore:
        """The immutable replica set over data up to the last compaction."""
        return self._base

    @property
    def buffered_records(self) -> int:
        return sum(len(d) for d in self._buffer)

    def dataset(self) -> Dataset:
        """The full logical dataset (base + buffer)."""
        return Dataset.concat([self._base.dataset, *self._buffer])

    def __len__(self) -> int:
        return len(self._base.dataset) + self.buffered_records

    # -- writes ----------------------------------------------------------------

    @property
    def compactions(self) -> int:
        """How many compactions have run (manual + automatic)."""
        return self._compactions

    def append(self, records: Dataset) -> None:
        """Ingest a batch of new records (visible to queries immediately);
        may trigger an automatic compaction."""
        if len(records):
            self._buffer.append(records)
            if (self._auto_compact_at is not None
                    and self.buffered_records >= self._auto_compact_at):
                self.compact()

    def compact(self) -> None:
        """Fold the buffer into fresh base replicas.

        All replica specs are rebuilt over the merged dataset; the
        universe grows if buffered records fell outside the previous
        bounding box.
        """
        if not self._buffer:
            return
        merged = self.dataset().sorted_by_time()
        # Rebuild before dropping the buffer: if a replica build raises,
        # the store must keep serving base + buffer with no records lost.
        self._base = self._build_base(merged)
        self._buffer.clear()
        self._compactions += 1

    # -- reads ----------------------------------------------------------------

    def query(self, query: Query | Box3, replica: str | None = None) -> QueryResult:
        """Range query over base replicas plus the delta buffer.

        A raw :class:`Box3` is matched against its exact bounds in both
        the base scan and the buffer filter (no centered round-trip).
        """
        box = query if isinstance(query, Box3) else query.box()
        base_result = self._base.query(query, replica=replica)
        if not self._buffer:
            return base_result
        extra_scanned = self.buffered_records
        matches = [d.filter_box(box) for d in self._buffer]
        merged = Dataset.concat([base_result.records, *matches])
        stats = base_result.stats
        return QueryResult(
            records=merged,
            stats=QueryStats(
                replica_name=stats.replica_name,
                partitions_involved=stats.partitions_involved,
                records_scanned=stats.records_scanned + extra_scanned,
                records_returned=len(merged),
                bytes_read=stats.bytes_read,
                seconds=stats.seconds,
                total_records=len(self),
            ),
        )

"""Process-safe store configuration: the picklable twin of ``BlotStore``.

A :class:`BlotStore` entangles live handles — mmap views over storage
units, a persistent scan thread pool, telemetry recorders — none of
which can cross a process boundary.  The serving tier
(:mod:`repro.serve`) needs every ``spawn``-started shard worker to open
*the same* store the parent routes against, so this module splits the
store into the two halves the paper's architecture implies:

- durable state on disk (the dataset file, each replica's manifest and
  storage units), described by plain-data references; and
- a recipe for the live handles (cache budget, cost-model constants,
  fault schedule, observability), described by plain-data settings.

:class:`StoreConfig` is that description: a frozen dataclass of paths
and scalars that pickles in a few hundred bytes.  ``open_store(config)``
(or :func:`hydrate_store`) rebuilds a fully functional store from it in
any process.  Two stores hydrated from one config answer every query
bit-identically: the dataset round-trips losslessly (``.npz``; CSV is
accepted for pre-existing data), replicas reopen from manifests with
CRC-checked units, and the fault schedule is seed-deterministic.

:func:`materialize_store` is the write-side: given a dataset and replica
specs it lays everything out under one root directory and returns the
config — the one-call path the CLI, tests and CI use to stage a store
that workers can rehydrate.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.costmodel.model import CostModel, EncodingCostParams
from repro.data.dataset import Dataset
from repro.obs import Observability
from repro.storage.faults import FaultInjector


@dataclass(frozen=True, slots=True)
class ReplicaRef:
    """A durable reference to one stored replica.

    ``manifest_path`` names the replica's JSON manifest;
    ``store_root`` the location of its storage units — a directory
    (:class:`~repro.storage.unit.DirectoryStore`) or, with
    ``store_kind="segment"``, a single segment file
    (:class:`~repro.storage.unit.SegmentFileStore`).
    """

    manifest_path: str
    store_root: str
    store_kind: str = "directory"

    def __post_init__(self) -> None:
        if self.store_kind not in ("directory", "segment"):
            raise ValueError(
                f"store_kind must be 'directory' or 'segment', "
                f"got {self.store_kind!r}"
            )


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """A deterministic fault schedule as plain data.

    Hydration builds a :class:`~repro.storage.faults.FaultInjector`
    from it, so every process hydrating the same config injects the
    exact same faults — the property the serving tier's bit-equality
    guarantee under failure rests on.
    """

    seed: int = 0
    partition_fail_rate: float = 0.0
    slow_seconds: float = 0.0
    fail_replicas: tuple[str, ...] = ()
    #: Explicit persistent single-unit failures: (replica_name, pid).
    fail_partitions: tuple[tuple[str, int], ...] = ()

    def build(self) -> FaultInjector:
        injector = FaultInjector(
            seed=self.seed,
            partition_fail_rate=self.partition_fail_rate,
            slow_seconds=self.slow_seconds,
        )
        for name in self.fail_replicas:
            injector.fail_replica(name)
        for name, pid in self.fail_partitions:
            injector.fail_partition(name, pid)
        return injector


@dataclass(frozen=True, slots=True)
class StoreConfig:
    """Everything needed to open one BLOT store, as picklable plain data.

    - ``dataset_path``: the source records — ``.npz`` (lossless, the
      preferred interchange written by :func:`materialize_store`) or
      ``.csv``.
    - ``replicas``: one :class:`ReplicaRef` per stored replica.
    - ``cost_params``: Eq. 6 constants per encoding name as
      ``(name, scan_rate, extra_time)`` triples; empty means no cost
      model (single-replica stores, or callers that always pin).
    - ``cache_bytes``: decoded-partition cache budget (None disables).
    - ``faults``: a :class:`FaultSpec`, or None for a healthy store.
    - ``observability``: attach a fresh telemetry bundle on hydration.
    """

    dataset_path: str
    replicas: tuple[ReplicaRef, ...] = ()
    csv_has_header: bool = False
    cost_params: tuple[tuple[str, float, float], ...] = ()
    cache_bytes: int | None = None
    faults: FaultSpec | None = None
    observability: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "replicas", tuple(self.replicas))
        object.__setattr__(self, "cost_params", tuple(self.cost_params))
        if self.cache_bytes is not None and self.cache_bytes <= 0:
            raise ValueError("cache_bytes must be positive (or None)")

    # -- hydration ---------------------------------------------------------

    def load_dataset(self) -> Dataset:
        """Load the dataset file (format chosen by extension)."""
        if self.dataset_path.endswith(".npz"):
            return Dataset.from_npz(self.dataset_path)
        from repro.data.csvio import dataset_from_csv

        return dataset_from_csv(self.dataset_path, header=self.csv_has_header)

    def build_cost_model(self) -> CostModel | None:
        if not self.cost_params:
            return None
        return CostModel({
            name: EncodingCostParams(scan_rate=rate, extra_time=extra)
            for name, rate, extra in self.cost_params
        })


def _open_unit_store(ref: ReplicaRef):
    from repro.storage.unit import DirectoryStore, SegmentFileStore

    if ref.store_kind == "segment":
        # SegmentFileStore.__init__ truncates its backing file and the
        # offset table lives only in memory; reopening one from disk
        # needs a durable offset table we do not persist yet.
        raise NotImplementedError(
            "segment-backed replicas cannot be reopened from a ReplicaRef "
            "yet; use store_kind='directory'"
        )
    return DirectoryStore(ref.store_root)


def hydrate_store(config: StoreConfig, replica_transform=None):
    """Open a fully live :class:`~repro.storage.BlotStore` from a config.

    Safe to call in any process; this is what ``open_store(config)``
    and every serving-tier shard worker run after ``spawn``.

    ``replica_transform``, when given, maps each reopened
    :class:`~repro.storage.replica.StoredReplica` before registration —
    the hook shard workers use to mask the unit keys they do not own
    (:meth:`repro.cluster.ShardAssignment.mask_replica`).
    """
    from repro.storage.engine import BlotStore
    from repro.storage.manifest import load_replica

    dataset = config.load_dataset()
    store = BlotStore(
        dataset,
        cost_model=config.build_cost_model(),
        cache_bytes=config.cache_bytes,
        fault_injector=config.faults.build() if config.faults else None,
        observability=Observability.create() if config.observability else None,
    )
    for ref in config.replicas:
        replica = load_replica(ref.manifest_path, _open_unit_store(ref))
        if replica_transform is not None:
            replica = replica_transform(replica)
        store.register_replica(replica)
    return store


#: Default Eq. 6 constants per encoding scheme, used by
#: :func:`materialize_store` when the caller supplies none.  Fixed
#: plausible values (heavier compression scans slower, costs more setup
#: per partition) rather than a calibration run: every process hydrates
#: the identical model, deterministically, with zero startup cost.
DEFAULT_COST_PARAMS = (
    ("ROW-PLAIN", 5.0e6, 0.0020),
    ("ROW-SNAPPY", 4.0e6, 0.0022),
    ("ROW-GZIP", 2.2e6, 0.0030),
    ("ROW-LZMA2", 1.2e6, 0.0045),
    ("COL-PLAIN", 6.0e6, 0.0020),
    ("COL-SNAPPY", 4.5e6, 0.0022),
    ("COL-GZIP", 2.5e6, 0.0030),
    ("COL-LZMA2", 1.4e6, 0.0045),
)


def materialize_store(
    dataset: Dataset,
    replica_specs,
    root: str,
    *,
    cost_params: tuple[tuple[str, float, float], ...] | None = None,
    cache_bytes: int | None = None,
    faults: FaultSpec | None = None,
    observability: bool = False,
) -> StoreConfig:
    """Write a dataset + replica set under ``root`` and return the
    :class:`StoreConfig` describing it.

    ``replica_specs`` is an iterable of ``(scheme, encoding)`` or
    ``(scheme, encoding, name)`` tuples; each replica is built into a
    :class:`~repro.storage.unit.DirectoryStore` under
    ``root/units/<name>`` with its manifest at
    ``root/manifests/<name>.json``.  ``cost_params`` defaults to entries
    of :data:`DEFAULT_COST_PARAMS` covering the encodings actually used
    (plus any per-partition encodings recorded in the manifests).
    """
    from repro.storage.manifest import save_manifest
    from repro.storage.replica import build_replica
    from repro.storage.unit import DirectoryStore

    os.makedirs(root, exist_ok=True)
    manifest_dir = os.path.join(root, "manifests")
    os.makedirs(manifest_dir, exist_ok=True)
    dataset_path = os.path.join(root, "dataset.npz")
    dataset.to_npz(dataset_path)

    universe = dataset.bounding_box()
    refs = []
    encodings_used: set[str] = set()
    for spec in replica_specs:
        scheme, encoding, *rest = spec
        name = rest[0] if rest else None
        store_root = os.path.join(root, "units")
        store = DirectoryStore(store_root)
        replica = build_replica(dataset, scheme, encoding, store,
                                name=name, universe=universe)
        manifest_path = os.path.join(manifest_dir, f"{replica.name}.json")
        manifest = save_manifest(replica, manifest_path)
        for unit in manifest["units"]:
            if unit is not None:
                encodings_used.add(unit["encoding"])
        encodings_used.add(manifest["encoding"])
        refs.append(ReplicaRef(manifest_path=manifest_path,
                               store_root=store_root))

    if cost_params is None:
        defaults = {name: (rate, extra)
                    for name, rate, extra in DEFAULT_COST_PARAMS}
        missing = encodings_used - set(defaults)
        if missing:
            raise ValueError(
                f"no default cost params for encodings {sorted(missing)}; "
                "pass cost_params= explicitly"
            )
        cost_params = tuple(
            (name, *defaults[name]) for name in sorted(encodings_used))

    return StoreConfig(
        dataset_path=dataset_path,
        replicas=tuple(refs),
        cost_params=cost_params,
        cache_bytes=cache_bytes,
        faults=faults,
        observability=observability,
    )


# -- JSON interchange -------------------------------------------------------


def store_config_to_dict(config: StoreConfig) -> dict:
    """A :class:`StoreConfig` as JSON-serializable plain data.

    The ingest store persists its sealed-window configs inside the WAL's
    ``snapshot.json`` commit record with this; :func:`store_config_from_dict`
    round-trips it exactly.
    """
    return {
        "dataset_path": config.dataset_path,
        "replicas": [
            {"manifest_path": r.manifest_path, "store_root": r.store_root,
             "store_kind": r.store_kind}
            for r in config.replicas
        ],
        "csv_has_header": config.csv_has_header,
        "cost_params": [list(t) for t in config.cost_params],
        "cache_bytes": config.cache_bytes,
        "faults": None if config.faults is None else {
            "seed": config.faults.seed,
            "partition_fail_rate": config.faults.partition_fail_rate,
            "slow_seconds": config.faults.slow_seconds,
            "fail_replicas": list(config.faults.fail_replicas),
            "fail_partitions": [list(p) for p in config.faults.fail_partitions],
        },
        "observability": config.observability,
    }


def store_config_from_dict(data: dict) -> StoreConfig:
    """Rebuild a :class:`StoreConfig` from :func:`store_config_to_dict`."""
    faults = data.get("faults")
    return StoreConfig(
        dataset_path=data["dataset_path"],
        replicas=tuple(ReplicaRef(**r) for r in data["replicas"]),
        csv_has_header=bool(data.get("csv_has_header", False)),
        cost_params=tuple(
            (str(n), float(a), float(b)) for n, a, b in data["cost_params"]),
        cache_bytes=data.get("cache_bytes"),
        faults=None if faults is None else FaultSpec(
            seed=int(faults["seed"]),
            partition_fail_rate=float(faults["partition_fail_rate"]),
            slow_seconds=float(faults["slow_seconds"]),
            fail_replicas=tuple(faults["fail_replicas"]),
            fail_partitions=tuple(
                (str(name), int(pid)) for name, pid in faults["fail_partitions"]),
        ),
        observability=bool(data.get("observability", False)),
    )


# -- ingesting-store hydration ----------------------------------------------


def parse_scheme_spec(spec: str):
    """Parse a plain-string partitioning recipe into a scheme object.

    Grammar (the picklable description :class:`IngestConfig` carries)::

        grid:<nx>x<ny>            uniform spatial grid
        kd:<leaves>               equal-count k-d tree
        <spatial>/t:<slices>      composite: spatial cells x equi-depth
                                  temporal slices, e.g. ``kd:16/t:4``
    """
    from repro.partition import (
        CompositeScheme,
        GridPartitioner,
        KdTreePartitioner,
    )

    spatial_spec, _, time_spec = spec.partition("/")
    kind, _, arg = spatial_spec.partition(":")
    if kind == "grid":
        nx, _, ny = arg.partition("x")
        spatial = GridPartitioner(int(nx), int(ny or nx))
    elif kind == "kd":
        spatial = KdTreePartitioner(int(arg))
    else:
        raise ValueError(
            f"unknown partitioning spec {spec!r} (want 'grid:<nx>x<ny>' or "
            f"'kd:<leaves>', optionally '/t:<slices>')"
        )
    if time_spec:
        prefix, _, slices = time_spec.partition(":")
        if prefix != "t":
            raise ValueError(f"bad temporal suffix in {spec!r}")
        return CompositeScheme(spatial, int(slices))
    return spatial


@dataclass(frozen=True, slots=True)
class IngestConfig:
    """Everything needed to host one always-on ingesting store, as
    picklable plain data — the :class:`StoreConfig` analogue for the
    write path, so the serve tier (or any other process) can hydrate an
    :class:`~repro.storage.ingest.IngestingBlotStore` over a shared WAL
    directory.

    ``replica_specs`` are ``(scheme_spec, encoding_name, name)`` triples
    where ``scheme_spec`` follows :func:`parse_scheme_spec`'s grammar;
    ``cost_params`` mirror :class:`StoreConfig`.  Durable state lives
    under ``wal_dir`` (WAL segments, the compaction snapshot, sealed
    windows); :func:`hydrate_ingest_store` resumes from it when present.
    """

    wal_dir: str
    replica_specs: tuple[tuple[str, str, str | None], ...]
    cost_params: tuple[tuple[str, float, float], ...] = ()
    auto_compact_at: int | None = None
    background_compaction: bool = True
    window_seconds: float | None = None
    anti_entropy_interval: float | None = None
    fsync_wal: bool = False
    observability: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "replica_specs",
                           tuple(tuple(s) for s in self.replica_specs))
        object.__setattr__(self, "cost_params", tuple(self.cost_params))
        if not self.replica_specs:
            raise ValueError("need at least one replica spec")

    def build_specs(self) -> list:
        from repro.encoding import encoding_scheme_by_name
        from repro.storage.ingest import ReplicaSpec

        return [
            ReplicaSpec(parse_scheme_spec(scheme),
                        encoding_scheme_by_name(encoding), name=name)
            for scheme, encoding, name in self.replica_specs
        ]

    def build_cost_model(self) -> CostModel | None:
        if not self.cost_params:
            return None
        return CostModel({
            name: EncodingCostParams(scan_rate=rate, extra_time=extra)
            for name, rate, extra in self.cost_params
        })


def hydrate_ingest_store(config: IngestConfig, initial: Dataset | None = None):
    """Open a live :class:`~repro.storage.ingest.IngestingBlotStore`
    from plain data.

    When ``config.wal_dir`` already holds WAL state (a snapshot or
    segments from an earlier process), the store is recovered from it —
    crash-safe resume, ``initial`` ignored.  Otherwise a fresh store is
    created, which requires ``initial`` records.
    """
    from repro.storage.ingest import IngestingBlotStore
    from repro.storage.wal import wal_state_exists

    kwargs = dict(
        cost_model=config.build_cost_model(),
        auto_compact_at=config.auto_compact_at,
        wal_dir=config.wal_dir,
        fsync_wal=config.fsync_wal,
        background_compaction=config.background_compaction,
        window_seconds=config.window_seconds,
        anti_entropy_interval=config.anti_entropy_interval,
        observability=Observability.create() if config.observability else None,
    )
    specs = config.build_specs()
    if wal_state_exists(config.wal_dir):
        return IngestingBlotStore.open(config.wal_dir, specs, **{
            k: v for k, v in kwargs.items() if k != "wal_dir"})
    if initial is None:
        raise ValueError(
            f"{config.wal_dir!r} holds no WAL state and no initial dataset "
            "was supplied; pass initial= for the first open"
        )
    return IngestingBlotStore(initial, specs, **kwargs)

"""Deterministic fault injection for the storage engine.

The paper's fault-tolerance argument (Sections I–III) treats replica
loss as a first-class state: a replica set must survive node failures
while staying inside the storage budget, and diverse replicas recover
each other because they share one logical view of the data.  This
module provides the failure side of that story for testing and drills:
a :class:`FaultInjector` that the engine consults before every storage
unit read and that can

- fail a whole replica (the node hosting it is down),
- fail single partitions, persistently or for the next *k* reads
  (a transient fault that a retry survives),
- fail a deterministic pseudo-random subset of partitions
  (``partition_fail_rate``, keyed by ``seed``), and
- slow reads down (an injected latency per storage access).

Everything is deterministic given the seed and the explicit schedule:
a partition that fails once keeps failing on every retry (unless the
fault was registered as transient), so drills are reproducible.

The exceptions forming the failure vocabulary of the engine —
:class:`InjectedFault` for a fault fired by the injector,
:class:`PartitionReadError` for any partition read that stayed failed
after retries (injected or real — missing unit, corrupt bytes), and
:class:`DegradedReadError` when a query exhausted every replica and
repair could not restore a readable copy — are defined in
:mod:`repro.errors` and re-exported here for back-compat.
"""

from __future__ import annotations

import threading
import time
import zlib
from dataclasses import dataclass

from repro.errors import (  # noqa: F401  (re-exported: historical home)
    DegradedReadError,
    InjectedFault,
    PartitionReadError,
)


@dataclass(frozen=True, slots=True)
class FaultStats:
    """Lifetime counters of one :class:`FaultInjector`."""

    reads_checked: int
    faults_injected: int
    reads_slowed: int
    failed_replicas: tuple[str, ...]
    failed_partitions: int


def _hash_unit(seed: int, replica_name: str, partition_id: int) -> float:
    """A stable uniform draw in [0, 1) per (seed, replica, partition)."""
    token = f"{seed}:{replica_name}:{partition_id}".encode()
    return zlib.crc32(token) / 2 ** 32


class FaultInjector:
    """Seedable, deterministic failure schedule for storage unit reads.

    The engine calls :meth:`on_read` before fetching a unit; the
    injector raises :class:`InjectedFault` (or sleeps, for slowdowns)
    according to the schedule.  All mutators are thread-safe — partition
    scans run on the engine's thread pool.

    ``partition_fail_rate`` fails a pseudo-random fraction of all
    ``(replica, partition)`` units, keyed by ``seed``: the same seed
    always fails the same units, and a failed unit keeps failing on
    every retry.  :meth:`heal_partition` (called by the engine after a
    successful repair) overrides both explicit and rate-based faults for
    that unit.
    """

    def __init__(self, seed: int = 0, partition_fail_rate: float = 0.0,
                 slow_seconds: float = 0.0, metrics=None):
        if not 0.0 <= partition_fail_rate <= 1.0:
            raise ValueError("partition_fail_rate must be in [0, 1]")
        if slow_seconds < 0:
            raise ValueError("slow_seconds must be non-negative")
        self._seed = int(seed)
        self._rate = float(partition_fail_rate)
        self._slow_default = float(slow_seconds)
        self._slow_by_replica: dict[str, float] = {}
        self._failed_replicas: set[str] = set()
        #: (replica, pid) -> remaining failures (None = persistent).
        self._failed_partitions: dict[tuple[str, int], int | None] = {}
        self._healed: set[tuple[str, int]] = set()
        self._reads_checked = 0
        self._faults_injected = 0
        self._reads_slowed = 0
        self._lock = threading.Lock()
        self._m_checked = self._m_injected = self._m_slowed = None
        if metrics is not None:
            self.bind_metrics(metrics)

    def bind_metrics(self, metrics) -> None:
        """Mirror the lifetime counters into a
        :class:`~repro.obs.MetricsRegistry` from now on (counts so far
        are copied in, so a late bind still reconciles)."""
        self._m_checked = metrics.counter("repro_fault_reads_checked_total")
        self._m_injected = metrics.counter("repro_faults_injected_total")
        self._m_slowed = metrics.counter("repro_fault_reads_slowed_total")
        with self._lock:
            self._m_checked.inc(self._reads_checked - self._m_checked.value)
            self._m_injected.inc(self._faults_injected - self._m_injected.value)
            self._m_slowed.inc(self._reads_slowed - self._m_slowed.value)

    # -- schedule mutators -------------------------------------------------

    def fail_replica(self, replica_name: str) -> None:
        """Mark a whole replica as down (its node is unreachable)."""
        with self._lock:
            self._failed_replicas.add(replica_name)

    def heal_replica(self, replica_name: str) -> None:
        """Bring a failed replica back."""
        with self._lock:
            self._failed_replicas.discard(replica_name)

    def fail_partition(self, replica_name: str, partition_id: int,
                       times: int | None = None) -> None:
        """Fail one storage unit: persistently (``times=None``) or for
        the next ``times`` reads only (a transient fault that retries
        can ride out)."""
        if times is not None and times < 1:
            raise ValueError("times must be >= 1 (or None for persistent)")
        key = (replica_name, int(partition_id))
        with self._lock:
            self._healed.discard(key)
            self._failed_partitions[key] = times

    def heal_partition(self, replica_name: str, partition_id: int) -> None:
        """Mark one unit healthy again, overriding explicit and
        rate-based faults (the engine calls this after a repair
        rewrites the unit)."""
        key = (replica_name, int(partition_id))
        with self._lock:
            self._failed_partitions.pop(key, None)
            self._healed.add(key)

    def slow_replica(self, replica_name: str, seconds: float) -> None:
        """Add an injected latency to every read of one replica."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        with self._lock:
            self._slow_by_replica[replica_name] = float(seconds)

    def clear(self) -> None:
        """Drop the whole schedule (counters are preserved)."""
        with self._lock:
            self._failed_replicas.clear()
            self._failed_partitions.clear()
            self._healed.clear()
            self._slow_by_replica.clear()

    # -- queries -----------------------------------------------------------

    def replica_failed(self, replica_name: str) -> bool:
        with self._lock:
            return replica_name in self._failed_replicas

    def partition_failed(self, replica_name: str, partition_id: int) -> bool:
        """Would a read of this unit fail right now?  (Does not consume
        transient failure budgets.)"""
        key = (replica_name, int(partition_id))
        with self._lock:
            if replica_name in self._failed_replicas:
                return True
            if key in self._healed:
                return False
            if key in self._failed_partitions:
                return True
            return self._rate > 0 and \
                _hash_unit(self._seed, replica_name, int(partition_id)) < self._rate

    def failed_units(self, replica_name: str, n_partitions: int) -> list[int]:
        """All partition ids of one replica that would currently fail."""
        return [pid for pid in range(n_partitions)
                if self.partition_failed(replica_name, pid)]

    # -- the engine hook ---------------------------------------------------

    def on_read(self, replica_name: str, partition_id: int) -> None:
        """Called by the engine before each storage unit read; raises
        :class:`InjectedFault` or sleeps per the schedule."""
        key = (replica_name, int(partition_id))
        delay = 0.0
        with self._lock:
            self._reads_checked += 1
            if self._m_checked is not None:
                self._m_checked.inc()
            if replica_name in self._failed_replicas:
                self._faults_injected += 1
                if self._m_injected is not None:
                    self._m_injected.inc()
                raise InjectedFault(replica_name, int(partition_id),
                                    scope="replica")
            fault = False
            if key not in self._healed:
                if key in self._failed_partitions:
                    remaining = self._failed_partitions[key]
                    if remaining is None:
                        fault = True
                    else:  # transient: consume one failure
                        fault = True
                        if remaining <= 1:
                            del self._failed_partitions[key]
                        else:
                            self._failed_partitions[key] = remaining - 1
                elif self._rate > 0 and _hash_unit(
                        self._seed, replica_name, int(partition_id)) < self._rate:
                    fault = True
            if fault:
                self._faults_injected += 1
                if self._m_injected is not None:
                    self._m_injected.inc()
                raise InjectedFault(replica_name, int(partition_id),
                                    scope="partition")
            delay = self._slow_by_replica.get(replica_name, self._slow_default)
            if delay > 0:
                self._reads_slowed += 1
                if self._m_slowed is not None:
                    self._m_slowed.inc()
        if delay > 0:
            time.sleep(delay)

    def stats(self) -> FaultStats:
        with self._lock:
            return FaultStats(
                reads_checked=self._reads_checked,
                faults_injected=self._faults_injected,
                reads_slowed=self._reads_slowed,
                failed_replicas=tuple(sorted(self._failed_replicas)),
                failed_partitions=len(self._failed_partitions),
            )

"""A byte-budgeted LRU cache of decoded partitions.

Range queries over a workload overlap heavily — consecutive queries often
touch the same hot partitions — yet the three-step query mechanism
(Section II-D) re-reads and re-decodes every involved partition from its
storage unit each time.  :class:`PartitionCache` keeps recently decoded
partitions in memory, keyed by ``(replica_name, partition_id)`` and
bounded by the *decoded* size of the cached records, so an overlapping
workload decodes each hot partition once.

The cache is shared by :meth:`repro.storage.BlotStore.query`,
:meth:`~repro.storage.BlotStore.count` and
:meth:`~repro.storage.BlotStore.execute_workload`, and is thread-safe so
parallel partition scans can consult it concurrently.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.data.dataset import Dataset

#: Cache key: ``(replica_name, partition_id)``.
CacheKey = tuple[str, int]


@dataclass(frozen=True, slots=True)
class CacheStats:
    """Hit/miss/eviction counters plus the current byte footprint."""

    hits: int
    misses: int
    evictions: int
    current_bytes: int
    capacity_bytes: int
    entries: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class PartitionCache:
    """Thread-safe LRU over decoded partitions with a byte budget.

    ``capacity_bytes`` bounds the sum of the cached datasets' decoded
    (in-memory binary) sizes; inserting past the budget evicts the least
    recently used entries.  A single partition larger than the whole
    budget is never cached.
    """

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self._capacity = int(capacity_bytes)
        self._entries: OrderedDict[CacheKey, tuple[Dataset, int]] = OrderedDict()
        self._current_bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._lock = threading.Lock()

    @property
    def capacity_bytes(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: CacheKey) -> Dataset | None:
        """The decoded partition for ``key``, or None on a miss.

        A hit refreshes the entry's recency.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry[0]

    def put(self, key: CacheKey, records: Dataset) -> None:
        """Insert a decoded partition, evicting LRU entries to stay within
        the byte budget.  Re-inserting an existing key refreshes it."""
        nbytes = records.binary_size_bytes()
        with self._lock:
            if nbytes > self._capacity:
                return
            old = self._entries.pop(key, None)
            if old is not None:
                self._current_bytes -= old[1]
            self._entries[key] = (records, nbytes)
            self._current_bytes += nbytes
            while self._current_bytes > self._capacity:
                _, (_, evicted_bytes) = self._entries.popitem(last=False)
                self._current_bytes -= evicted_bytes
                self._evictions += 1

    def invalidate(self, key: CacheKey) -> bool:
        """Drop one cached partition (e.g. after its unit failed a read
        or was repaired); returns True when an entry was removed."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return False
            self._current_bytes -= entry[1]
            return True

    def invalidate_replica(self, replica_name: str) -> int:
        """Drop every cached partition of one replica (e.g. after repair);
        returns the number of entries removed."""
        with self._lock:
            stale = [k for k in self._entries if k[0] == replica_name]
            for key in stale:
                _, nbytes = self._entries.pop(key)
                self._current_bytes -= nbytes
            return len(stale)

    def clear(self) -> None:
        """Drop all entries (counters are preserved)."""
        with self._lock:
            self._entries.clear()
            self._current_bytes = 0

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                current_bytes=self._current_bytes,
                capacity_bytes=self._capacity,
                entries=len(self._entries),
            )

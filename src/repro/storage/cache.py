"""A byte-budgeted LRU cache of decoded partitions.

Range queries over a workload overlap heavily — consecutive queries often
touch the same hot partitions — yet the three-step query mechanism
(Section II-D) re-reads and re-decodes every involved partition from its
storage unit each time.  :class:`PartitionCache` keeps recently decoded
partitions in memory, keyed by ``(replica_name, partition_id)`` and
bounded by the *decoded* size of the cached records, so an overlapping
workload decodes each hot partition once.

The cache is shared by :meth:`repro.storage.BlotStore.query`,
:meth:`~repro.storage.BlotStore.count` and
:meth:`~repro.storage.BlotStore.execute_workload`, and is thread-safe so
parallel partition scans can consult it concurrently.

Accounting invariant: every entry that ever entered the cache left it
through exactly one of eviction (budget pressure), invalidation
(explicit drop — a failed read, a repair, ``clear()``) or is still
resident, so

    entries == inserts - evictions - invalidations

holds at all times (asserted in the cache tests).  ``inserts`` counts
*new* keys only — re-inserting a resident key refreshes it in place.

When a :class:`~repro.obs.MetricsRegistry` is attached the cache also
publishes its counters (``repro_cache_*``) and the resident-bytes gauge
into it on every operation.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.data.dataset import Dataset

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.obs.metrics import MetricsRegistry

#: Cache key: ``(replica_name, partition_id)``.
CacheKey = tuple[str, int]


@dataclass(frozen=True, slots=True)
class CacheStats:
    """Hit/miss/eviction/invalidation counters plus the byte footprint.

    ``inserts`` counts distinct-key insertions; refreshing a resident
    key is not an insert.  ``invalidations`` counts entries dropped by
    :meth:`PartitionCache.invalidate`, ``invalidate_replica`` and
    ``clear`` — so ``entries`` always reconciles:
    ``entries == inserts - evictions - invalidations``.
    """

    hits: int
    misses: int
    evictions: int
    current_bytes: int
    capacity_bytes: int
    entries: int
    inserts: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class PartitionCache:
    """Thread-safe LRU over decoded partitions with a byte budget.

    ``capacity_bytes`` bounds the sum of the cached datasets' decoded
    (in-memory binary) sizes; inserting past the budget evicts the least
    recently used entries.  A single partition larger than the whole
    budget is never cached.  ``metrics`` optionally mirrors the counters
    into a :class:`~repro.obs.MetricsRegistry`.
    """

    def __init__(self, capacity_bytes: int,
                 metrics: "MetricsRegistry | None" = None):
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self._capacity = int(capacity_bytes)
        self._entries: OrderedDict[CacheKey, tuple[Dataset, int]] = OrderedDict()
        self._current_bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._inserts = 0
        self._invalidations = 0
        self._lock = threading.Lock()
        self._m_hits = self._m_misses = self._m_evictions = None
        self._m_inserts = self._m_invalidations = self._m_bytes = None
        if metrics is not None:
            self.bind_metrics(metrics)

    def bind_metrics(self, metrics: "MetricsRegistry") -> None:
        """Publish this cache's counters into ``metrics`` from now on
        (lifetime-so-far totals are copied in, so registry and
        :meth:`stats` agree even when bound late)."""
        self._m_hits = metrics.counter("repro_cache_hits_total")
        self._m_misses = metrics.counter("repro_cache_misses_total")
        self._m_evictions = metrics.counter("repro_cache_evictions_total")
        self._m_inserts = metrics.counter("repro_cache_inserts_total")
        self._m_invalidations = metrics.counter(
            "repro_cache_invalidations_total")
        self._m_bytes = metrics.gauge("repro_cache_resident_bytes")
        with self._lock:
            self._m_hits.inc(self._hits - self._m_hits.value)
            self._m_misses.inc(self._misses - self._m_misses.value)
            self._m_evictions.inc(self._evictions - self._m_evictions.value)
            self._m_inserts.inc(self._inserts - self._m_inserts.value)
            self._m_invalidations.inc(
                self._invalidations - self._m_invalidations.value)
            self._m_bytes.set(self._current_bytes)

    @property
    def capacity_bytes(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: CacheKey) -> Dataset | None:
        """The decoded partition for ``key``, or None on a miss.

        A hit refreshes the entry's recency.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                if self._m_misses is not None:
                    self._m_misses.inc()
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            if self._m_hits is not None:
                self._m_hits.inc()
            return entry[0]

    def put(self, key: CacheKey, records: Dataset) -> None:
        """Insert a decoded partition, evicting LRU entries to stay within
        the byte budget.  Re-inserting an existing key refreshes it."""
        nbytes = records.binary_size_bytes()
        with self._lock:
            if nbytes > self._capacity:
                return
            old = self._entries.pop(key, None)
            if old is not None:
                self._current_bytes -= old[1]
            else:
                self._inserts += 1
                if self._m_inserts is not None:
                    self._m_inserts.inc()
            self._entries[key] = (records, nbytes)
            self._current_bytes += nbytes
            while self._current_bytes > self._capacity:
                _, (_, evicted_bytes) = self._entries.popitem(last=False)
                self._current_bytes -= evicted_bytes
                self._evictions += 1
                if self._m_evictions is not None:
                    self._m_evictions.inc()
            if self._m_bytes is not None:
                self._m_bytes.set(self._current_bytes)

    def invalidate(self, key: CacheKey) -> bool:
        """Drop one cached partition (e.g. after its unit failed a read
        or was repaired); returns True when an entry was removed."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return False
            self._current_bytes -= entry[1]
            self._invalidations += 1
            if self._m_invalidations is not None:
                self._m_invalidations.inc()
            if self._m_bytes is not None:
                self._m_bytes.set(self._current_bytes)
            return True

    def invalidate_replica(self, replica_name: str) -> int:
        """Drop every cached partition of one replica (e.g. after repair);
        returns the number of entries removed."""
        with self._lock:
            stale = [k for k in self._entries if k[0] == replica_name]
            for key in stale:
                _, nbytes = self._entries.pop(key)
                self._current_bytes -= nbytes
            self._invalidations += len(stale)
            if self._m_invalidations is not None and stale:
                self._m_invalidations.inc(len(stale))
            if self._m_bytes is not None:
                self._m_bytes.set(self._current_bytes)
            return len(stale)

    def clear(self) -> None:
        """Drop all entries.  Counters are preserved; the dropped entries
        are accounted as invalidations so the conservation invariant
        (``entries == inserts - evictions - invalidations``) holds."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._current_bytes = 0
            self._invalidations += dropped
            if self._m_invalidations is not None and dropped:
                self._m_invalidations.inc(dropped)
            if self._m_bytes is not None:
                self._m_bytes.set(0)

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                current_bytes=self._current_bytes,
                capacity_bytes=self._capacity,
                entries=len(self._entries),
                inserts=self._inserts,
                invalidations=self._invalidations,
            )

"""Building and reading stored replicas.

A replica ``r = <D, P, E>`` (paper Definition 4) physically materialized:
every data partition of ``P`` is encoded by ``E`` and written to one
storage unit.  Records inside a partition are stored time-sorted, the
order the columnar delta encodings exploit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.costmodel.model import ReplicaProfile
from repro.data.dataset import Dataset
from repro.encoding.base import EncodingScheme
from repro.geometry import Box3
from repro.partition.base import Partitioning, PartitioningScheme
from repro.partition.index import PartitionIndex
from repro.storage.unit import UnitStore


@dataclass(frozen=True)
class StoredReplica:
    """A materialized replica: partition geometry + encoded storage units.

    ``unit_keys[i]`` addresses the storage unit holding data partition
    ``i``; partitions with zero records have no unit (key ``None``).

    ``partition_encodings``, when set, gives each partition its own
    encoding scheme — the generalization the paper notes under
    Definition 4 ("BLOT systems that allow a separate encoding scheme for
    each partition"); ``encoding`` then serves as the default/majority
    scheme for cost-model purposes.
    """

    name: str
    partitioning: Partitioning
    encoding: EncodingScheme
    store: UnitStore
    unit_keys: tuple[str | None, ...]
    partition_encodings: tuple[EncodingScheme, ...] | None = None
    index: PartitionIndex = field(init=False)

    def __post_init__(self) -> None:
        if len(self.unit_keys) != self.partitioning.n_partitions:
            raise ValueError(
                f"{len(self.unit_keys)} unit keys for "
                f"{self.partitioning.n_partitions} partitions"
            )
        if self.partition_encodings is not None and \
                len(self.partition_encodings) != self.partitioning.n_partitions:
            raise ValueError(
                f"{len(self.partition_encodings)} partition encodings for "
                f"{self.partitioning.n_partitions} partitions"
            )
        object.__setattr__(
            self,
            "index",
            PartitionIndex(self.partitioning.box_array, self.partitioning.universe),
        )
        object.__setattr__(self, "_profile_cache", {})
        object.__setattr__(self, "fault_injector", None)

    @property
    def n_partitions(self) -> int:
        return self.partitioning.n_partitions

    @property
    def is_mixed_encoding(self) -> bool:
        return self.partition_encodings is not None

    def encoding_for(self, partition_id: int) -> EncodingScheme:
        """The encoding scheme of one partition."""
        if self.partition_encodings is not None:
            return self.partition_encodings[partition_id]
        return self.encoding

    def storage_bytes(self) -> int:
        """``Storage(r)``: total bytes of all encoded partitions."""
        return sum(self.store.size(k) for k in self.unit_keys if k is not None)

    def attach_fault_injector(self, injector) -> None:
        """Route this replica's unit reads through a
        :class:`~repro.storage.faults.FaultInjector` (None detaches).
        :meth:`repro.storage.BlotStore.register_replica` attaches the
        store's injector automatically, so recovery flows that read a
        replica directly see the same failure schedule as queries."""
        object.__setattr__(self, "fault_injector", injector)

    def read_partition(self, partition_id: int) -> Dataset:
        """Decode the records of one data partition.

        Raises :class:`~repro.storage.faults.InjectedFault` when an
        attached fault injector marks this unit (or the whole replica)
        as failed.
        """
        key = self.unit_keys[partition_id]
        if key is None:
            return Dataset.empty()
        injector = self.fault_injector  # type: ignore[attr-defined]
        if injector is not None:
            injector.on_read(self.name, partition_id)
        return self.encoding_for(partition_id).decode(self.store.get(key))

    def involved_partitions(self, query_box: Box3) -> np.ndarray:
        """Partitions whose range intersects the query range."""
        return self.index.involved(query_box)

    def profile(self, n_records: float | None = None,
                storage_bytes: float | None = None) -> ReplicaProfile:
        """The cost-model view of this replica.  ``n_records`` and
        ``storage_bytes`` default to the materialized values; pass scaled
        values to model a larger dataset with the same organization.

        Profiles are immutable and derived from immutable state, so they
        are memoized per argument pair — per-query routing builds one per
        replica instead of re-summing counts and store sizes every call.
        """
        memo: dict = self._profile_cache  # type: ignore[attr-defined]
        cache_key = (n_records, storage_bytes)
        cached = memo.get(cache_key)
        if cached is not None:
            return cached
        records = float(n_records if n_records is not None
                        else self.partitioning.counts.sum())
        built = ReplicaProfile(
            name=self.name,
            partitioning_name=self.partitioning.scheme_name,
            encoding_name=self.encoding.name,
            box_array=self.partitioning.box_array,
            universe=self.partitioning.universe,
            n_records=records,
            storage_bytes=float(storage_bytes if storage_bytes is not None
                                else self.storage_bytes()),
        )
        memo[cache_key] = built
        return built


def build_replica(
    dataset: Dataset,
    scheme: PartitioningScheme,
    encoding: EncodingScheme,
    store: UnitStore,
    name: str | None = None,
    universe: Box3 | None = None,
) -> StoredReplica:
    """Partition ``dataset`` by ``scheme``, encode each partition with
    ``encoding`` and persist the units into ``store``.

    Records inside each partition are sorted by (t, oid) before encoding.
    Unit keys are ``<replica-name>/part-<id>``.
    """
    partitioning = scheme.build(dataset, universe)
    replica_name = name or f"{scheme.name}/{encoding.name}"
    keys = _write_partitions(
        dataset, partitioning, store, replica_name,
        lambda pid, part: encoding,
    )
    return StoredReplica(
        name=replica_name,
        partitioning=partitioning,
        encoding=encoding,
        store=store,
        unit_keys=keys,
    )


def build_mixed_replica(
    dataset: Dataset,
    scheme: PartitioningScheme,
    policy,
    store: UnitStore,
    name: str | None = None,
    universe: Box3 | None = None,
) -> StoredReplica:
    """Build a replica whose partitions choose their own encoding.

    ``policy(partition_id, box, n_records) -> EncodingScheme`` picks the
    scheme per partition — e.g. :func:`temperature_policy` keeps hot
    (large) partitions in a fast codec and cold ones heavily compressed.
    The replica's default ``encoding`` is the policy's majority choice.
    """
    partitioning = scheme.build(dataset, universe)
    chosen: list[EncodingScheme] = []
    for pid in range(partitioning.n_partitions):
        box = Box3(*partitioning.box_array[pid])
        chosen.append(policy(pid, box, int(partitioning.counts[pid])))
    majority = max(
        {s.name: s for s in chosen}.values(),
        key=lambda s: sum(1 for c in chosen if c.name == s.name),
    )
    replica_name = name or f"{scheme.name}/mixed"
    keys = _write_partitions(
        dataset, partitioning, store, replica_name,
        lambda pid, part: chosen[pid],
    )
    return StoredReplica(
        name=replica_name,
        partitioning=partitioning,
        encoding=majority,
        store=store,
        unit_keys=keys,
        partition_encodings=tuple(chosen),
    )


def temperature_policy(
    partitioning_counts,
    hot_encoding: EncodingScheme,
    cold_encoding: EncodingScheme,
    hot_fraction: float = 0.25,
):
    """A per-partition encoding policy: the ``hot_fraction`` most
    populated partitions get ``hot_encoding`` (fast scans where the data
    concentrates), the rest get ``cold_encoding`` (dense storage)."""
    import numpy as np

    counts = np.asarray(partitioning_counts)
    if not 0.0 <= hot_fraction <= 1.0:
        raise ValueError("hot_fraction must be in [0, 1]")
    n_hot = int(round(len(counts) * hot_fraction))
    hot_ids = set(np.argsort(counts)[::-1][:n_hot].tolist())

    def policy(pid: int, box: Box3, n_records: int) -> EncodingScheme:
        return hot_encoding if pid in hot_ids else cold_encoding

    return policy


def _write_partitions(dataset, partitioning, store, replica_name, encoding_of):
    keys: list[str | None] = []
    for pid in range(partitioning.n_partitions):
        part = partitioning.records_of(dataset, pid)
        if len(part) == 0:
            keys.append(None)
            continue
        key = f"{replica_name}/part-{pid:06d}"
        store.put(key, encoding_of(pid, part).encode(part.sorted_by_time()))
        keys.append(key)
    return tuple(keys)

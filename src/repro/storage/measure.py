"""Local wall-clock scan measurement (the in-process calibration backend).

The paper measures ``Cost(q, p)`` by timing mappers that each scan one
partition.  This backend does the single-node equivalent: encode
partitions of controlled sizes, then time decode + filter end-to-end.
The fitted slope/intercept capture the *real* per-record decode rate and
per-partition setup overhead of each encoding on this machine.

For the cluster-shaped numbers of Table II use the simulated environments
in :mod:`repro.cluster` instead.
"""

from __future__ import annotations

import time

import numpy as np

from repro.data.dataset import Dataset
from repro.encoding.base import EncodingScheme, encoding_scheme_by_name


class LocalScanMeasurer:
    """Callable backend for :func:`repro.costmodel.calibrate_encoding`.

    ``measurer(encoding_name, partition_records, partitions_per_set)``
    returns the average wall seconds to scan one partition of the given
    size, averaged over ``partitions_per_set`` distinct partitions.
    """

    def __init__(self, dataset: Dataset, repeats: int = 1):
        if len(dataset) == 0:
            raise ValueError("measurement dataset must be non-empty")
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        self._dataset = dataset.sorted_by_time()
        self._repeats = repeats

    def _partitions(self, partition_records: int, count: int) -> list[Dataset]:
        """``count`` consecutive chunks of ``partition_records`` records,
        cycling through the dataset when it is shorter than needed."""
        n = len(self._dataset)
        if partition_records < 1:
            raise ValueError("partition_records must be >= 1")
        if partition_records > n:
            raise ValueError(
                f"partition of {partition_records} records exceeds dataset size {n}"
            )
        parts = []
        start = 0
        for _ in range(count):
            if start + partition_records > n:
                start = 0
            parts.append(self._dataset.take(np.arange(start, start + partition_records)))
            start += partition_records
        return parts

    def __call__(
        self, encoding_name: str, partition_records: int, partitions_per_set: int
    ) -> float:
        scheme: EncodingScheme = encoding_scheme_by_name(encoding_name)
        parts = self._partitions(partition_records, partitions_per_set)
        blobs = [scheme.encode(p) for p in parts]
        bb = self._dataset.bounding_box()
        total = 0.0
        for _ in range(self._repeats):
            start = time.perf_counter()
            for blob in blobs:
                records = scheme.decode(blob)
                # Filter by the full range: every record matches, like the
                # paper's measurement queries that cover whole partitions.
                records.filter_box(bb)
            total += time.perf_counter() - start
        return total / (self._repeats * len(blobs))

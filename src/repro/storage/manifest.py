"""Replica manifests: persistence and integrity metadata.

A manifest is the small JSON descriptor a BLOT system keeps next to a
replica's storage units (the durable sibling of the in-memory
partitioning index): partition geometry, per-unit keys, record counts
and CRC-32 checksums.  It lets a replica be reopened without the source
dataset and lets damage (missing units, flipped bits) be detected before
queries return wrong answers.
"""

from __future__ import annotations

import json
import zlib

import numpy as np

from repro.encoding.base import encoding_scheme_by_name
from repro.geometry import Box3
from repro.partition.base import Partitioning
from repro.storage.replica import StoredReplica
from repro.storage.unit import UnitNotFound, UnitStore

_FORMAT_VERSION = 1


def build_manifest(replica: StoredReplica) -> dict:
    """The JSON-serializable manifest of a stored replica."""
    units = []
    for pid, key in enumerate(replica.unit_keys):
        if key is None:
            units.append(None)
            continue
        blob = replica.store.get(key)
        units.append({
            "key": key,
            "bytes": len(blob),
            "crc32": zlib.crc32(blob) & 0xFFFFFFFF,
            "records": int(replica.partitioning.counts[pid]),
            "encoding": replica.encoding_for(pid).name,
        })
    return {
        "format_version": _FORMAT_VERSION,
        "name": replica.name,
        "scheme_name": replica.partitioning.scheme_name,
        "encoding": replica.encoding.name,
        "universe": list(replica.partitioning.universe.as_tuple()),
        "boxes": replica.partitioning.box_array.tolist(),
        "counts": replica.partitioning.counts.tolist(),
        "units": units,
    }


def save_manifest(replica: StoredReplica, path: str) -> dict:
    """Write the manifest JSON to ``path``; returns the manifest dict."""
    manifest = build_manifest(replica)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(manifest, f)
    return manifest


def load_replica(manifest: dict | str, store: UnitStore) -> StoredReplica:
    """Reopen a replica from its manifest (dict or JSON file path) and the
    store holding its units.  No data is decoded; integrity is checked
    separately with :func:`verify_replica`."""
    if isinstance(manifest, str):
        with open(manifest, "r", encoding="utf-8") as f:
            manifest = json.load(f)
    if manifest.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported manifest version {manifest.get('format_version')!r}"
        )
    partitioning = Partitioning.from_boxes(
        scheme_name=manifest["scheme_name"],
        universe=Box3(*manifest["universe"]),
        box_array=np.array(manifest["boxes"], dtype=np.float64),
        counts=np.array(manifest["counts"], dtype=np.int64),
    )
    unit_keys = tuple(
        None if unit is None else unit["key"] for unit in manifest["units"]
    )
    default = encoding_scheme_by_name(manifest["encoding"])
    per_unit_names = [
        default.name if unit is None else unit.get("encoding", default.name)
        for unit in manifest["units"]
    ]
    partition_encodings = None
    if any(name != default.name for name in per_unit_names):
        partition_encodings = tuple(
            encoding_scheme_by_name(name) for name in per_unit_names
        )
    return StoredReplica(
        name=manifest["name"],
        partitioning=partitioning,
        encoding=default,
        store=store,
        unit_keys=unit_keys,
        partition_encodings=partition_encodings,
    )


def verify_replica(replica: StoredReplica, manifest: dict) -> list[int]:
    """Return the partition ids whose storage units are damaged.

    A unit is damaged when it is missing from the store, its CRC-32 does
    not match the manifest, or its size changed.  Decoding is *not*
    attempted — CRC covers bit flips far more cheaply.  The sweep reads
    through :meth:`UnitStore.get_view` when the store provides it, so
    file-backed stores checksum straight out of the page cache instead of
    copying every blob onto the heap.
    """
    if manifest["name"] != replica.name:
        raise ValueError(
            f"manifest is for {manifest['name']!r}, replica is {replica.name!r}"
        )
    read = getattr(replica.store, "get_view", replica.store.get)
    damaged = []
    for pid, unit in enumerate(manifest["units"]):
        if unit is None:
            continue
        try:
            blob = read(unit["key"])
        except UnitNotFound:
            damaged.append(pid)
            continue
        if len(blob) != unit["bytes"] or (zlib.crc32(blob) & 0xFFFFFFFF) != unit["crc32"]:
            damaged.append(pid)
    return damaged

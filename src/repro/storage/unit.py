"""Storage-unit backends.

A BLOT partition is stored in a *storage unit* "optimized for sequential
read: an object stored in Amazon S3, a file on HDFS, a segment of a file
on a local file system" (Section II-B).  This module provides the
key-value store abstraction and three backends mirroring those options:

- :class:`InMemoryStore`   — dict-backed, for tests and simulations;
- :class:`DirectoryStore`  — one file per unit in a local directory
  (the "file on HDFS" shape);
- :class:`SegmentFileStore`— all units appended to one large file with an
  offset table (the "segment of a file" shape).
"""

from __future__ import annotations

import os
from typing import Iterator, Protocol


class UnitStore(Protocol):
    """Write-once key-value storage for encoded partitions.

    ``delete`` exists for repair flows (a damaged unit is dropped and
    re-written); ordinary replica builds never overwrite.
    """

    def put(self, key: str, blob: bytes) -> None: ...

    def get(self, key: str) -> bytes: ...

    def size(self, key: str) -> int: ...

    def delete(self, key: str) -> None: ...

    def keys(self) -> Iterator[str]: ...

    def total_bytes(self) -> int: ...


class UnitNotFound(KeyError):
    """Raised when a storage unit key does not exist."""


class DuplicateUnit(ValueError):
    """Raised when a storage unit key is written twice."""


class InMemoryStore:
    """Dict-backed store used by tests and the cluster simulators."""

    def __init__(self) -> None:
        self._blobs: dict[str, bytes] = {}

    def put(self, key: str, blob: bytes) -> None:
        if key in self._blobs:
            raise DuplicateUnit(f"unit {key!r} already stored")
        self._blobs[key] = bytes(blob)

    def get(self, key: str) -> bytes:
        try:
            return self._blobs[key]
        except KeyError:
            raise UnitNotFound(key) from None

    def size(self, key: str) -> int:
        return len(self.get(key))

    def delete(self, key: str) -> None:
        if key not in self._blobs:
            raise UnitNotFound(key)
        del self._blobs[key]

    def keys(self) -> Iterator[str]:
        return iter(self._blobs)

    def total_bytes(self) -> int:
        return sum(len(b) for b in self._blobs.values())


class DirectoryStore:
    """One file per storage unit under ``root`` (keys become file names).

    Keys may contain ``/`` to create sub-directories, as replica builders
    do (``replica-name/part-000123``).
    """

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _path(self, key: str) -> str:
        path = os.path.normpath(os.path.join(self.root, key))
        if not path.startswith(os.path.normpath(self.root)):
            raise ValueError(f"key {key!r} escapes the store root")
        return path

    def put(self, key: str, blob: bytes) -> None:
        path = self._path(key)
        if os.path.exists(path):
            raise DuplicateUnit(f"unit {key!r} already stored")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as f:
            f.write(blob)

    def get(self, key: str) -> bytes:
        path = self._path(key)
        try:
            with open(path, "rb") as f:
                return f.read()
        except FileNotFoundError:
            raise UnitNotFound(key) from None

    def size(self, key: str) -> int:
        try:
            return os.path.getsize(self._path(key))
        except FileNotFoundError:
            raise UnitNotFound(key) from None

    def delete(self, key: str) -> None:
        try:
            os.remove(self._path(key))
        except FileNotFoundError:
            raise UnitNotFound(key) from None

    def keys(self) -> Iterator[str]:
        for dirpath, _, files in os.walk(self.root):
            for name in files:
                full = os.path.join(dirpath, name)
                yield os.path.relpath(full, self.root)

    def total_bytes(self) -> int:
        return sum(self.size(k) for k in self.keys())


class SegmentFileStore:
    """All units appended to a single file; an in-memory offset table maps
    keys to ``(offset, length)`` segments.

    Mirrors the local-filesystem deployment where a partition is "a
    segment of a file": sequential within a unit, one seek per unit.
    """

    def __init__(self, path: str):
        self.path = path
        self._segments: dict[str, tuple[int, int]] = {}
        # Truncate/create the backing file.
        with open(path, "wb"):
            pass
        self._end = 0
        self._live_bytes = 0

    def put(self, key: str, blob: bytes) -> None:
        if key in self._segments:
            raise DuplicateUnit(f"unit {key!r} already stored")
        with open(self.path, "ab") as f:
            f.write(blob)
        self._segments[key] = (self._end, len(blob))
        self._end += len(blob)
        self._live_bytes += len(blob)

    def get(self, key: str) -> bytes:
        try:
            offset, length = self._segments[key]
        except KeyError:
            raise UnitNotFound(key) from None
        with open(self.path, "rb") as f:
            f.seek(offset)
            return f.read(length)

    def size(self, key: str) -> int:
        try:
            return self._segments[key][1]
        except KeyError:
            raise UnitNotFound(key) from None

    def delete(self, key: str) -> None:
        """Drop the segment from the offset table.  The bytes stay in the
        backing file (log-structured; compaction is out of scope) but no
        longer count toward :meth:`total_bytes`."""
        try:
            _, length = self._segments.pop(key)
        except KeyError:
            raise UnitNotFound(key) from None
        self._live_bytes -= length

    def keys(self) -> Iterator[str]:
        return iter(self._segments)

    def total_bytes(self) -> int:
        return self._live_bytes

"""Storage-unit backends.

A BLOT partition is stored in a *storage unit* "optimized for sequential
read: an object stored in Amazon S3, a file on HDFS, a segment of a file
on a local file system" (Section II-B).  This module provides the
key-value store abstraction and three backends mirroring those options:

- :class:`InMemoryStore`   — dict-backed, for tests and simulations;
- :class:`DirectoryStore`  — one file per unit in a local directory
  (the "file on HDFS" shape);
- :class:`SegmentFileStore`— all units appended to one large file with an
  offset table (the "segment of a file" shape).

Every backend also serves **zero-copy reads**: :meth:`UnitStore.get_view`
returns a ``memoryview`` over the stored bytes — a view of the in-memory
blob, or an ``mmap`` of the backing file — so the decode pipeline never
copies a blob just to read it.  Views are read-only; callers must not
hold them across a ``delete`` of the same key (repair flows re-fetch).
"""

from __future__ import annotations

import mmap
import os
import threading
from typing import Iterator, Protocol


class UnitStore(Protocol):
    """Write-once key-value storage for encoded partitions.

    ``delete`` exists for repair flows (a damaged unit is dropped and
    re-written); ordinary replica builds never overwrite.
    """

    def put(self, key: str, blob: bytes) -> None: ...

    def get(self, key: str) -> bytes: ...

    def get_view(self, key: str) -> memoryview: ...

    def size(self, key: str) -> int: ...

    def delete(self, key: str) -> None: ...

    def keys(self) -> Iterator[str]: ...

    def total_bytes(self) -> int: ...


class UnitNotFound(KeyError):
    """Raised when a storage unit key does not exist."""


class DuplicateUnit(ValueError):
    """Raised when a storage unit key is written twice."""


class InMemoryStore:
    """Dict-backed store used by tests and the cluster simulators."""

    def __init__(self) -> None:
        self._blobs: dict[str, bytes] = {}
        self._total = 0

    def put(self, key: str, blob: bytes) -> None:
        if key in self._blobs:
            raise DuplicateUnit(f"unit {key!r} already stored")
        data = bytes(blob)
        self._blobs[key] = data
        self._total += len(data)

    def get(self, key: str) -> bytes:
        try:
            return self._blobs[key]
        except KeyError:
            raise UnitNotFound(key) from None

    def get_view(self, key: str) -> memoryview:
        return memoryview(self.get(key))

    def size(self, key: str) -> int:
        return len(self.get(key))

    def delete(self, key: str) -> None:
        if key not in self._blobs:
            raise UnitNotFound(key)
        self._total -= len(self._blobs.pop(key))

    def keys(self) -> Iterator[str]:
        return iter(self._blobs)

    def total_bytes(self) -> int:
        # Maintained incrementally: this sits on the storage-budget check
        # path, which runs per replica-selection round over stores with
        # many thousands of units.
        return self._total


class DirectoryStore:
    """One file per storage unit under ``root`` (keys become file names).

    Keys may contain ``/`` to create sub-directories, as replica builders
    do (``replica-name/part-000123``).
    """

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)
        self._maps: dict[str, mmap.mmap] = {}
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        # mmap views and locks cannot cross a process boundary; a worker
        # that unpickles this store re-maps lazily on first get_view.
        return {"root": self.root}

    def __setstate__(self, state: dict) -> None:
        self.root = state["root"]
        self._maps = {}
        self._lock = threading.Lock()

    def _path(self, key: str) -> str:
        path = os.path.normpath(os.path.join(self.root, key))
        if not path.startswith(os.path.normpath(self.root)):
            raise ValueError(f"key {key!r} escapes the store root")
        return path

    def put(self, key: str, blob: bytes) -> None:
        path = self._path(key)
        if os.path.exists(path):
            raise DuplicateUnit(f"unit {key!r} already stored")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as f:
            f.write(blob)

    def get(self, key: str) -> bytes:
        path = self._path(key)
        try:
            with open(path, "rb") as f:
                return f.read()
        except FileNotFoundError:
            raise UnitNotFound(key) from None

    def get_view(self, key: str) -> memoryview:
        """Zero-copy read: a ``memoryview`` over a cached read-only mmap
        of the unit's file (empty units fall back to an empty view —
        mmap cannot map zero bytes)."""
        with self._lock:
            m = self._maps.get(key)
            if m is not None:
                return memoryview(m)
            path = self._path(key)
            try:
                with open(path, "rb") as f:
                    if os.fstat(f.fileno()).st_size == 0:
                        return memoryview(b"")
                    m = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ)
            except FileNotFoundError:
                raise UnitNotFound(key) from None
            self._maps[key] = m
            return memoryview(m)

    def size(self, key: str) -> int:
        try:
            return os.path.getsize(self._path(key))
        except FileNotFoundError:
            raise UnitNotFound(key) from None

    def delete(self, key: str) -> None:
        with self._lock:
            m = self._maps.pop(key, None)
            if m is not None:
                try:
                    m.close()
                except BufferError:
                    # A caller still holds a view; the map stays alive
                    # until that view is released, the file is unlinked
                    # regardless.
                    pass
        try:
            os.remove(self._path(key))
        except FileNotFoundError:
            raise UnitNotFound(key) from None

    def keys(self) -> Iterator[str]:
        for dirpath, _, files in os.walk(self.root):
            for name in files:
                full = os.path.join(dirpath, name)
                yield os.path.relpath(full, self.root)

    def total_bytes(self) -> int:
        return sum(self.size(k) for k in self.keys())


class SegmentFileStore:
    """All units appended to a single file; an in-memory offset table maps
    keys to ``(offset, length)`` segments.

    Mirrors the local-filesystem deployment where a partition is "a
    segment of a file": sequential within a unit, one seek per unit.
    """

    def __init__(self, path: str):
        self.path = path
        self._segments: dict[str, tuple[int, int]] = {}
        # Truncate/create the backing file.
        with open(path, "wb"):
            pass
        self._end = 0
        self._live_bytes = 0
        self._map: mmap.mmap | None = None
        self._map_size = 0
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        # The offset table is plain data; the mmap and its lock are live
        # handles that the unpickling process rebuilds lazily.
        return {"path": self.path, "segments": dict(self._segments),
                "end": self._end, "live_bytes": self._live_bytes}

    def __setstate__(self, state: dict) -> None:
        self.path = state["path"]
        self._segments = dict(state["segments"])
        self._end = state["end"]
        self._live_bytes = state["live_bytes"]
        self._map = None
        self._map_size = 0
        self._lock = threading.Lock()

    def put(self, key: str, blob: bytes) -> None:
        if key in self._segments:
            raise DuplicateUnit(f"unit {key!r} already stored")
        with open(self.path, "ab") as f:
            f.write(blob)
        self._segments[key] = (self._end, len(blob))
        self._end += len(blob)
        self._live_bytes += len(blob)

    def get(self, key: str) -> bytes:
        try:
            offset, length = self._segments[key]
        except KeyError:
            raise UnitNotFound(key) from None
        with open(self.path, "rb") as f:
            f.seek(offset)
            return f.read(length)

    def get_view(self, key: str) -> memoryview:
        """Zero-copy read: a slice of a whole-file read-only mmap.

        The map is remapped lazily when appends have grown the file past
        the mapped size; the superseded map object is simply dropped —
        any outstanding views keep it alive until released.
        """
        try:
            offset, length = self._segments[key]
        except KeyError:
            raise UnitNotFound(key) from None
        if length == 0:
            return memoryview(b"")
        with self._lock:
            if self._map is None or offset + length > self._map_size:
                with open(self.path, "rb") as f:
                    size = os.fstat(f.fileno()).st_size
                    if offset + length > size:
                        raise UnitNotFound(key)
                    self._map = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ)
                    self._map_size = size
            return memoryview(self._map)[offset:offset + length]

    def size(self, key: str) -> int:
        try:
            return self._segments[key][1]
        except KeyError:
            raise UnitNotFound(key) from None

    def delete(self, key: str) -> None:
        """Drop the segment from the offset table.  The bytes stay in the
        backing file (log-structured; compaction is out of scope) but no
        longer count toward :meth:`total_bytes`."""
        try:
            _, length = self._segments.pop(key)
        except KeyError:
            raise UnitNotFound(key) from None
        self._live_bytes -= length

    def keys(self) -> Iterator[str]:
        return iter(self._segments)

    def total_bytes(self) -> int:
        return self._live_bytes

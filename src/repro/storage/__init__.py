"""The BLOT storage engine: storage units, replicas, query processing."""

from repro.storage.cache import CacheStats, PartitionCache
from repro.storage.config import (
    DEFAULT_COST_PARAMS,
    FaultSpec,
    IngestConfig,
    ReplicaRef,
    StoreConfig,
    hydrate_ingest_store,
    hydrate_store,
    materialize_store,
    parse_scheme_spec,
    store_config_from_dict,
    store_config_to_dict,
)
from repro.storage.engine import (
    BlotStore,
    QueryResult,
    QueryStats,
    ReplicaExists,
    WorkloadResult,
    WorkloadStats,
    open_store,
)
from repro.storage.faults import (
    DegradedReadError,
    FaultInjector,
    FaultStats,
    InjectedFault,
    PartitionReadError,
)
from repro.storage.options import DEFAULT_EXEC_OPTIONS, ExecOptions
from repro.storage.manifest import (
    build_manifest,
    load_replica,
    save_manifest,
    verify_replica,
)
from repro.storage.measure import LocalScanMeasurer
from repro.storage.recovery import (
    RecoveryError,
    rebuild_replica,
    recover_dataset,
    repair_partition,
    repair_partition_any,
    repair_replica,
)
from repro.storage.ingest import (
    IngestingBlotStore,
    ReadWriteLock,
    ReplicaSpec,
    SealedWindow,
)
from repro.storage.replica import (
    StoredReplica,
    build_mixed_replica,
    build_replica,
    temperature_policy,
)
from repro.storage.wal import (
    WalError,
    WriteAheadLog,
    wal_state_exists,
)
from repro.storage.unit import (
    DirectoryStore,
    DuplicateUnit,
    InMemoryStore,
    SegmentFileStore,
    UnitNotFound,
    UnitStore,
)

__all__ = [
    "BlotStore",
    "CacheStats",
    "DEFAULT_COST_PARAMS",
    "DEFAULT_EXEC_OPTIONS",
    "DegradedReadError",
    "FaultSpec",
    "IngestConfig",
    "ReplicaRef",
    "StoreConfig",
    "hydrate_ingest_store",
    "hydrate_store",
    "materialize_store",
    "parse_scheme_spec",
    "store_config_from_dict",
    "store_config_to_dict",
    "DirectoryStore",
    "DuplicateUnit",
    "ExecOptions",
    "FaultInjector",
    "FaultStats",
    "InMemoryStore",
    "IngestingBlotStore",
    "InjectedFault",
    "LocalScanMeasurer",
    "PartitionCache",
    "PartitionReadError",
    "ReadWriteLock",
    "ReplicaSpec",
    "SealedWindow",
    "WalError",
    "WriteAheadLog",
    "wal_state_exists",
    "QueryResult",
    "QueryStats",
    "RecoveryError",
    "ReplicaExists",
    "SegmentFileStore",
    "StoredReplica",
    "UnitNotFound",
    "UnitStore",
    "WorkloadResult",
    "WorkloadStats",
    "build_manifest",
    "build_mixed_replica",
    "build_replica",
    "temperature_policy",
    "load_replica",
    "open_store",
    "rebuild_replica",
    "recover_dataset",
    "repair_partition",
    "repair_partition_any",
    "repair_replica",
    "save_manifest",
    "verify_replica",
]

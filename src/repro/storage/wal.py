"""Per-store write-ahead log: crash durability for the ingest path.

The paper's NerdTracker scenario is a continuous GPS feed; the delta
buffer of :class:`~repro.storage.ingest.IngestingBlotStore` lives in
memory, so before this module a crash lost every record appended since
the last compaction.  The WAL closes that window: every appended batch
is written — CRC-framed, length-prefixed — to an append-only segment
file *before* it becomes visible to queries, and ``replay()`` after a
restart reconstructs the buffer with zero loss.

The torn-tail discipline is the binary twin of
:class:`~repro.obs.timeseries.TimeseriesStore`'s JSONL sealing: a crash
mid-``write`` can tear at most the final frame.  On replay, the first
frame whose header is short, whose body is short, or whose CRC fails
marks the torn tail; everything before it is intact (length-prefixed
frames cannot be re-synchronized past a bad one), the file is truncated
back to the last intact frame boundary, and the next append starts
clean.  A CRC-intact frame whose payload fails to decode is *not* a
torn tail — that is real corruption and raises :class:`WalError`.

Layout under the WAL directory::

    wal-00000001.log   CRC-framed segments (appends since the snapshot)
    snapshot-<k>.npz   the folded dataset at the last compaction
    snapshot.json      commit point: which snapshot file is live, which
                       segments it covers, plus opaque owner metadata
                       (the ingest store keeps its sealed-window index
                       here so windows and snapshot commit atomically)

Segment rotation ties the log to compaction: the ingest store rotates
at compaction start, folds exactly the sealed segments' batches, then
commits ``snapshot.json`` naming the last sealed segment — one
``os.replace`` making snapshot + window index + segment GC atomic.
Segments at or below ``through_segment`` are deleted after the commit;
a crash between commit and GC merely leaves stale segments that replay
skips.

Frame format (little-endian)::

    [u32 body_len][u32 crc32(body)][body = 1 kind byte + payload]

Kind ``APPEND`` carries one :class:`~repro.data.dataset.Dataset` batch
as uncompressed ``.npz`` bytes — the same bit-exact interchange
:meth:`Dataset.to_npz` uses for :class:`~repro.storage.StoreConfig`.
"""

from __future__ import annotations

import io
import json
import os
import struct
import threading
import zlib
from typing import Any

import numpy as np

from repro.data.dataset import Dataset
from repro.data.record import FIELD_NAMES

__all__ = ["WriteAheadLog", "WalError", "KIND_APPEND", "wal_state_exists"]

_HEADER = struct.Struct("<II")
#: Sanity bound on one frame's body; a length field beyond it is treated
#: as a torn/garbage tail, not an attempt to allocate gigabytes.
_MAX_BODY = 1 << 31

KIND_APPEND = 1

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".log"
_SNAPSHOT_META = "snapshot.json"


def wal_state_exists(wal_dir: str) -> bool:
    """Whether ``wal_dir`` holds durable WAL state (a committed snapshot
    or any log segment) that :meth:`IngestingBlotStore.open` can resume
    from."""
    try:
        names = os.listdir(wal_dir)
    except (FileNotFoundError, NotADirectoryError):
        return False
    return any(
        name == _SNAPSHOT_META
        or (name.startswith(_SEGMENT_PREFIX)
            and name.endswith(_SEGMENT_SUFFIX))
        for name in names
    )


class WalError(RuntimeError):
    """Real WAL corruption: an intact-CRC frame that cannot be decoded,
    or snapshot metadata naming files that do not exist."""


def _encode_batch(dataset: Dataset) -> bytes:
    buf = io.BytesIO()
    np.savez(buf, **{name: dataset.column(name) for name in FIELD_NAMES})
    return buf.getvalue()


def _decode_batch(payload: bytes) -> Dataset:
    try:
        with np.load(io.BytesIO(payload)) as archive:
            return Dataset({name: archive[name] for name in FIELD_NAMES})
    except Exception as exc:
        raise WalError(f"CRC-intact WAL frame failed to decode: {exc}") from exc


class WriteAheadLog:
    """Append-only, CRC-framed, segment-rotated write-ahead log.

    Thread-safe; the ingest store calls :meth:`append` under its write
    lock anyway, but the internal lock keeps the WAL safe standalone.

    ``fsync=True`` adds an ``os.fsync`` after every append — full
    power-loss durability at a per-batch syscall cost; the default
    (flush only) survives process crashes, the failure mode the ingest
    tests exercise.

    ``metrics`` is an optional
    :class:`~repro.obs.MetricsRegistry`; when bound the WAL publishes
    ``repro_wal_appends_total``, ``repro_wal_bytes_total``,
    ``repro_wal_torn_tails_total``, ``repro_wal_replayed_batches_total``
    and ``repro_wal_snapshots_total``.
    """

    def __init__(self, wal_dir: str, *, fsync: bool = False, metrics=None):
        self.dir = str(wal_dir)
        self.fsync = bool(fsync)
        self._metrics = metrics
        self._lock = threading.Lock()
        self._fh: io.BufferedWriter | None = None
        os.makedirs(self.dir, exist_ok=True)
        # Resume appends into a fresh segment above everything on disk:
        # the previous process may have died mid-frame, and sealing
        # happens on replay — never append onto a possibly-torn tail.
        ids = self._segment_ids_unlocked()
        self._current = max(max(ids, default=0), self._through_segment()) + 1

    # -- paths -------------------------------------------------------------

    def _segment_path(self, segment_id: int) -> str:
        return os.path.join(
            self.dir, f"{_SEGMENT_PREFIX}{segment_id:08d}{_SEGMENT_SUFFIX}")

    def _meta_path(self) -> str:
        return os.path.join(self.dir, _SNAPSHOT_META)

    def _through_segment(self) -> int:
        """The committed snapshot's covered-segment id, without loading
        the snapshot payload; 0 when no snapshot exists."""
        try:
            with open(self._meta_path(), "r", encoding="utf-8") as f:
                return int(json.load(f)["through_segment"])
        except (FileNotFoundError, ValueError, KeyError, TypeError):
            return 0

    def _segment_ids_unlocked(self) -> list[int]:
        ids = []
        try:
            names = os.listdir(self.dir)
        except FileNotFoundError:
            return []
        for name in names:
            if (name.startswith(_SEGMENT_PREFIX)
                    and name.endswith(_SEGMENT_SUFFIX)):
                try:
                    ids.append(int(
                        name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]))
                except ValueError:
                    continue
        return sorted(ids)

    def segment_ids(self) -> list[int]:
        """Ids of the segment files currently on disk, ascending."""
        with self._lock:
            return self._segment_ids_unlocked()

    @property
    def current_segment(self) -> int:
        """The segment id new appends go to."""
        with self._lock:
            return self._current

    # -- metrics -----------------------------------------------------------

    def _bump(self, name: str, amount: float = 1.0) -> None:
        if self._metrics is not None:
            self._metrics.counter(name).inc(amount)

    # -- writing -----------------------------------------------------------

    def append(self, dataset: Dataset, kind: int = KIND_APPEND) -> int:
        """Durably log one batch; returns the frame's size in bytes.

        The frame is written and flushed before this returns, so a
        batch acknowledged to the caller is recoverable by
        :meth:`replay` after any process crash.
        """
        body = bytes([kind]) + _encode_batch(dataset)
        frame = _HEADER.pack(len(body), zlib.crc32(body)) + body
        with self._lock:
            if self._fh is None:
                self._fh = open(self._segment_path(self._current), "ab")
            self._fh.write(frame)
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())
        self._bump("repro_wal_appends_total")
        self._bump("repro_wal_bytes_total", len(frame))
        return len(frame)

    def rotate(self) -> int:
        """Seal the current segment and direct appends to a fresh one.

        Returns the sealed segment's id — the value a subsequent
        :meth:`snapshot` passes as ``through_segment`` once every batch
        up to the seal has been folded into the snapshot dataset.
        """
        with self._lock:
            sealed = self._current
            if self._fh is not None:
                self._fh.close()
                self._fh = None
            self._current = sealed + 1
            return sealed

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    # -- snapshot ----------------------------------------------------------

    def snapshot(self, dataset: Dataset, through_segment: int,
                 extra: dict[str, Any] | None = None) -> None:
        """Commit a folded snapshot covering segments <= ``through_segment``.

        The ``.npz`` payload is written first, then ``snapshot.json`` is
        replaced atomically — the single commit point for the snapshot,
        the owner's ``extra`` metadata, and the segment GC that follows.
        """
        with self._lock:
            payload = f"snapshot-{through_segment:08d}.npz"
            payload_path = os.path.join(self.dir, payload)
            tmp = payload_path + ".tmp"
            with open(tmp, "wb") as f:
                np.savez(f, **{name: dataset.column(name)
                               for name in FIELD_NAMES})
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, payload_path)

            meta = {
                "file": payload,
                "through_segment": int(through_segment),
                "records": len(dataset),
                "extra": extra or {},
            }
            meta_tmp = self._meta_path() + ".tmp"
            with open(meta_tmp, "w", encoding="utf-8") as f:
                json.dump(meta, f, sort_keys=True)
                f.flush()
                os.fsync(f.fileno())
            os.replace(meta_tmp, self._meta_path())

            # Post-commit GC: superseded snapshots and folded segments.
            # A crash in here only leaves stale files that replay skips.
            for name in os.listdir(self.dir):
                if (name.startswith("snapshot-") and name.endswith(".npz")
                        and name != payload):
                    self._remove_quietly(os.path.join(self.dir, name))
            for seg_id in self._segment_ids_unlocked():
                if seg_id <= through_segment:
                    self._remove_quietly(self._segment_path(seg_id))
        self._bump("repro_wal_snapshots_total")

    @staticmethod
    def _remove_quietly(path: str) -> None:
        try:
            os.remove(path)
        except OSError:
            pass

    def snapshot_meta(self) -> tuple[Dataset | None, int, dict[str, Any]]:
        """The committed snapshot: ``(dataset, through_segment, extra)``.

        ``(None, 0, {})`` when no snapshot has ever been committed.
        """
        try:
            with open(self._meta_path(), "r", encoding="utf-8") as f:
                meta = json.load(f)
        except FileNotFoundError:
            return None, 0, {}
        except ValueError as exc:
            raise WalError(f"snapshot.json is not valid JSON: {exc}") from exc
        payload_path = os.path.join(self.dir, meta["file"])
        if not os.path.exists(payload_path):
            raise WalError(
                f"snapshot.json names missing payload {meta['file']!r}")
        dataset = Dataset.from_npz(payload_path)
        return dataset, int(meta["through_segment"]), meta.get("extra", {})

    # -- replay ------------------------------------------------------------

    def _read_segment(self, path: str, seal: bool = True) -> list[Dataset]:
        """Decode one segment's intact frames; truncate any torn tail."""
        batches: list[Dataset] = []
        try:
            f = open(path, "r+b" if seal else "rb")
        except FileNotFoundError:
            return batches
        with f:
            good_end = 0
            torn = False
            while True:
                header = f.read(_HEADER.size)
                if len(header) < _HEADER.size:
                    torn = len(header) > 0
                    break
                length, crc = _HEADER.unpack(header)
                if length == 0 or length > _MAX_BODY:
                    torn = True
                    break
                body = f.read(length)
                if len(body) < length or zlib.crc32(body) != crc:
                    torn = True
                    break
                if body[0] == KIND_APPEND:
                    batches.append(_decode_batch(body[1:]))
                good_end = f.tell()
            if torn:
                self._bump("repro_wal_torn_tails_total")
                if seal:
                    f.truncate(good_end)
        return batches

    def replay(self) -> list[Dataset]:
        """Every batch appended after the committed snapshot, in order.

        Reads segments above the snapshot's ``through_segment``
        ascending, sealing torn tails in place.  The returned batches,
        appended onto the snapshot dataset, reconstruct exactly the
        acknowledged ingest state at the moment of the crash.
        """
        with self._lock:
            through = self._through_segment()
            batches: list[Dataset] = []
            for seg_id in self._segment_ids_unlocked():
                if seg_id <= through:
                    continue
                batches.extend(self._read_segment(self._segment_path(seg_id)))
        self._bump("repro_wal_replayed_batches_total", len(batches))
        return batches

"""Recovery of diverse replicas from each other.

The paper's fault-tolerance argument (Sections I and II-E): "in spite of
the diversity of physical data organizations, diverse replicas can
recover each other when failures occur because they share the same
logical view of the data."  This module makes that concrete:

- :func:`recover_dataset` — rebuild the logical dataset from any replica;
- :func:`rebuild_replica` — recreate a totally lost replica (new
  partitioning + encoding) from any surviving one;
- :func:`repair_partition` — the cheap path: a single damaged storage
  unit is restored by running *one range query* (the unit's box) against
  a surviving diverse replica, instead of re-reading everything.

Boundary discipline.  Partition boxes tile the universe but share
boundaries; a record sitting exactly on a shared boundary is stored in
exactly one partition yet geometrically belongs to several boxes.  All
partitioners in this repository place records with the *canonical
half-open* rule — a record belongs to the box where every coordinate
satisfies ``lo <= v < hi``, the upper face being closed only on the
universe boundary — so :func:`canonical_mask` recomputes a partition's
exact original contents from its box alone, and repairs need nothing
from (possibly also damaged) neighbour units.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.geometry import Box3, boxes_intersect_mask
from repro.partition.base import Partitioning, PartitioningScheme
from repro.storage.replica import StoredReplica, build_replica
from repro.storage.unit import UnitStore

_EDGE_EPS = 1e-12
#: A partition face is recognized as lying on the universe boundary when
#: it is within this many ulps of the stored universe bound.  Builders
#: that derive face positions arithmetically (``lo + i * step`` time
#: slicing) accumulate a few ulps of rounding, and on large-magnitude
#: axes (epoch-seconds t, where one ulp of 1.2e9 is ~2.4e-7) that gap
#: dwarfs any absolute epsilon — a fixed 1e-12 silently reopened the
#: face and dropped boundary records during repair.
_EDGE_EPS_ULPS = 64.0


def _universe_face_tolerance(u_bound: float) -> float:
    """How far below the universe's upper bound a face may sit and still
    count as the (closed) universe face: a few ulps of the bound itself,
    floored by the legacy absolute epsilon for tiny magnitudes."""
    return max(_EDGE_EPS, _EDGE_EPS_ULPS * float(np.spacing(abs(u_bound))))


def canonical_box_test(
    partitioning: Partitioning, dataset: Dataset, partition_id: int
) -> np.ndarray:
    """Mask of records passing ``partition_id``'s half-open box test.

    Per dimension ``lo <= v < hi``, except that a face lying on the
    universe's upper boundary is closed (``v <= hi``).  The face test
    compares against the *stored universe bound* with a relative
    (ulp-scaled) tolerance, so a face the builder computed a few ulps
    below the bound still seals the universe edge — and the closed test
    admits records sitting exactly on the bound even when the face
    itself rounded slightly below it.  On non-degenerate tilings the
    tests of different partitions are disjoint; fully degenerate
    partitions (identical boxes, produced when a node's records all
    share one coordinate) can pass together — ownership is then settled
    by :func:`canonical_mask`'s highest-id tie-break.
    """
    box = partitioning.box_array[partition_id]
    u = partitioning.universe
    u_hi = (u.x_max, u.y_max, u.t_max)
    mask = np.ones(len(dataset), dtype=bool)
    for dim, column in enumerate(("x", "y", "t")):
        values = dataset.column(column)
        lo, hi = box[2 * dim], box[2 * dim + 1]
        mask &= values >= lo
        u_bound = u_hi[dim]
        if hi >= u_bound - _universe_face_tolerance(u_bound):
            mask &= values <= max(hi, u_bound)
        else:
            mask &= values < hi
    return mask


def canonical_mask(
    partitioning: Partitioning, dataset: Dataset, partition_id: int
) -> np.ndarray:
    """Mask of ``dataset`` records canonically *owned* by ``partition_id``:
    the box test passes and no higher-id partition's test passes too (the
    tie-break every builder follows when degenerate splits collapse boxes
    onto each other)."""
    mask = canonical_box_test(partitioning, dataset, partition_id)
    if not mask.any():
        return mask
    box = Box3(*partitioning.box_array[partition_id])
    rivals = np.flatnonzero(boxes_intersect_mask(partitioning.box_array, box))
    for rival in rivals:
        if rival > partition_id:
            rival_pass = canonical_box_test(partitioning, dataset, int(rival))
            mask &= ~rival_pass
            if not mask.any():
                break
    return mask


class RecoveryError(RuntimeError):
    """Raised when recovered content contradicts the replica's metadata."""


def recover_dataset(replica: StoredReplica) -> Dataset:
    """The full logical dataset, decoded from one replica's units."""
    parts = [
        replica.read_partition(pid)
        for pid in range(replica.n_partitions)
        if replica.unit_keys[pid] is not None
    ]
    if not parts:
        return Dataset.empty()
    return Dataset.concat(parts).sorted_by_time()


def rebuild_replica(
    source: StoredReplica,
    scheme: PartitioningScheme,
    encoding,
    store: UnitStore,
    name: str | None = None,
) -> StoredReplica:
    """Recreate a lost replica from a surviving one (total-loss path).

    The new replica may use any partitioning/encoding — recovery and
    reorganization are the same operation under diverse replication.
    """
    dataset = recover_dataset(source)
    if len(dataset) == 0:
        raise RecoveryError("source replica holds no records")
    return build_replica(
        dataset, scheme, encoding, store, name=name,
        universe=source.partitioning.universe,
    )


def repair_partition(
    damaged: StoredReplica,
    partition_id: int,
    source: StoredReplica,
) -> int:
    """Restore one storage unit of ``damaged`` from ``source``.

    Runs the damaged partition's box as a range query against ``source``
    and keeps the records the canonical placement rule assigns to this
    partition.  Returns the number of records restored.  Raises
    :class:`RecoveryError` when the restored count contradicts the
    damaged replica's partition counts (metadata is authoritative).
    """
    if not (0 <= partition_id < damaged.n_partitions):
        raise ValueError(f"partition id {partition_id} out of range")
    box = Box3(*damaged.partitioning.box_array[partition_id])

    # One range query against the diverse source replica, filtered to the
    # canonically-owned records (boundary ties go to the upper neighbour).
    candidates = []
    for pid in source.involved_partitions(box):
        records = source.read_partition(int(pid)).filter_box(box)
        if len(records):
            candidates.append(records.take(
                canonical_mask(damaged.partitioning, records, partition_id)
            ))
    recovered = Dataset.concat(candidates) if candidates else Dataset.empty()

    expected = int(damaged.partitioning.counts[partition_id])
    if len(recovered) != expected:
        raise RecoveryError(
            f"partition {partition_id}: recovered {len(recovered)} records, "
            f"metadata says {expected}"
        )

    key = damaged.unit_keys[partition_id]
    if key is None:
        if expected != 0:
            raise RecoveryError(
                f"partition {partition_id} has no unit key but {expected} records"
            )
        return 0
    blob = damaged.encoding_for(partition_id).encode(recovered.sorted_by_time())
    try:
        damaged.store.delete(key)
    except KeyError:
        pass  # the unit may be missing entirely — that's the damage
    damaged.store.put(key, blob)
    return len(recovered)


def repair_partition_any(
    damaged: StoredReplica,
    partition_id: int,
    sources: list[StoredReplica],
) -> str:
    """Restore one unit from the first source replica able to serve it.

    Sources are tried in order; a source that fails mid-repair (its own
    units are damaged or fault-injected, or it disagrees with the
    damaged replica's metadata) is skipped.  Returns the name of the
    source that succeeded; raises :class:`RecoveryError` carrying every
    per-source failure when none could.
    """
    if not sources:
        raise RecoveryError(
            f"partition {partition_id}: no source replicas to repair from"
        )
    others = [source for source in sources if source.name != damaged.name]
    if not others:
        # Every candidate is the damaged replica itself — a distinct
        # condition from "all sources tried and failed": nothing was
        # tried, because a replica cannot repair itself from itself.
        raise RecoveryError(
            f"partition {partition_id}: no source replicas other than the "
            f"damaged replica {damaged.name!r} itself to repair from"
        )
    failures: list[str] = []
    for source in others:
        try:
            repair_partition(damaged, partition_id, source)
            return source.name
        except Exception as exc:  # noqa: BLE001 — every source failure is recorded
            failures.append(f"{source.name}: {exc}")
    raise RecoveryError(
        f"partition {partition_id}: every source replica failed ["
        + "; ".join(failures) + "]"
    )


def repair_replica(
    damaged: StoredReplica,
    partition_ids: list[int],
    source: StoredReplica,
) -> int:
    """Repair several damaged units; returns total records restored.

    Repairs are independent (canonical placement needs nothing from
    neighbour units), so any subset — including every unit at once — can
    be restored in any order.
    """
    return sum(repair_partition(damaged, pid, source) for pid in partition_ids)

"""Unified execution options for the query engine.

Every execution-facing entry point of :class:`~repro.storage.BlotStore`
— ``query()``, ``count()``, ``route_workload()`` and
``execute_workload()`` — accepts one :class:`ExecOptions` value instead
of a growing pile of ad-hoc keyword arguments.  The deprecated bare
``parallelism=`` keyword shim has been removed; spell it
``options=ExecOptions(parallelism=...)``.

Default instances hold only plain data (``sleep`` is None unless a test
injects a recorder), so an :class:`ExecOptions` pickles cleanly and can
cross a ``spawn`` process boundary inside a serving-tier request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.obs.distributed import TraceContext


@dataclass(frozen=True, slots=True)
class ExecOptions:
    """How a query or workload should be executed.

    - ``parallelism``: partition scans per query on the persistent
      thread pool (1 = serial).
    - ``use_cache``: consult/populate the store's decoded-partition
      cache when one is configured (False bypasses it for this call).
    - ``retries``: extra read attempts per partition after the first
      failure (transient faults, flaky object stores).  Whole-replica
      outages are never retried — the node is gone.
    - ``backoff_seconds``: base sleep before retry *k* (exponential:
      ``backoff_seconds * 2**(k-1)``); 0 retries immediately.
    - ``sleep``: the callable that performs the backoff sleep; None
      means ``time.sleep``.  Fault-injection tests and drills pass a
      no-op (or recording) sleeper so retried reads don't block
      wall-clock time.
    - ``failover``: on a failed partition read, re-route the query to
      the next-cheapest replica per the Eq. 6–7 cost ranking.
    - ``repair``: when every replica failed, attempt
      :func:`~repro.storage.recovery.repair_partition` from a surviving
      diverse replica before giving up with
      :class:`~repro.storage.faults.DegradedReadError`.
    - ``trace``: collect per-query spans into the store's
      :class:`~repro.obs.TraceRecorder` (requires an
      :class:`~repro.obs.Observability` attached to the store;
      a no-op otherwise).
    - ``trace_context``: a remote parent
      (:class:`~repro.obs.distributed.TraceContext`) for this call's
      root spans.  A shard worker sets it from the request frame so the
      engine's ``query``/``workload`` roots join the front door's
      trace instead of starting their own; None (the default) keeps
      roots local.  Plain frozen data, so the options still pickle
      across the spawn boundary.
    """

    parallelism: int = 1
    use_cache: bool = True
    retries: int = 2
    backoff_seconds: float = 0.0
    sleep: Callable[[float], None] | None = None
    failover: bool = True
    repair: bool = True
    trace: bool = False
    trace_context: "TraceContext | None" = None

    def __post_init__(self) -> None:
        if self.parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.backoff_seconds < 0:
            raise ValueError("backoff_seconds must be non-negative")


#: The default options every entry point starts from.
DEFAULT_EXEC_OPTIONS = ExecOptions()

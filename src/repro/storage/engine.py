"""The BLOT storage engine: replicas + query processing (Section II-D).

``BlotStore`` manages the diverse replicas of one dataset and processes
range queries by the paper's three-step mechanism: find involved
partitions via the partitioning index, read + decode each one, filter the
records by the query range.  When several replicas exist and a
:class:`~repro.costmodel.CostModel` is configured, each query is routed
to the replica with the lowest estimated cost (Figure 2's "replica
selection at query time").

Two execution paths exist:

- the per-query path (:meth:`BlotStore.query` / :meth:`BlotStore.count`),
  and
- the workload path (:meth:`BlotStore.execute_workload`), which routes a
  whole workload in one vectorized pass
  (:meth:`~repro.costmodel.CostModel.route_batch`), groups the plan by
  replica and decodes each replica's involved-partition *union* once.

Both share a persistent scan thread pool, an optional byte-budgeted
:class:`~repro.storage.cache.PartitionCache` of decoded partitions, and
one **failure path**: a partition read that stays failed after the
configured retries (an injected fault, a missing unit, corrupt bytes)
makes the query *fail over* to the next-cheapest replica per the
Eq. 6–7 cost ranking.  When every replica is exhausted the engine
attempts :func:`~repro.storage.recovery.repair_partition` from a
surviving diverse replica, and only then raises a structured
:class:`~repro.storage.faults.DegradedReadError` — degraded
configurations are a first-class state, not an exception trace.
Execution behavior (parallelism, cache policy, retry/failover policy)
is controlled uniformly by :class:`~repro.storage.options.ExecOptions`.

The whole read path is instrumented: with an
:class:`~repro.obs.Observability` bundle attached the engine publishes
counters/histograms into its metrics registry, records (predicted
Eq. 7, measured) cost pairs into its drift monitor, and — per call,
when ``ExecOptions.trace`` is set — collects ``route`` →
``scan[partition]`` → ``decode``/``cache``/``retry``/``failover``/
``repair`` spans into its trace recorder.  With no bundle attached the
engine holds the no-op recorder and skips every publication, so the
un-instrumented path costs one ``None`` check per call
(``docs/observability.md``).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace

from repro.costmodel.model import CostModel, RoutingPlan
from repro.data.dataset import Dataset
from repro.data.record import FIELDS
from repro.encoding.base import EncodingScheme
from repro.geometry import Box3
from repro.obs import Observability
from repro.obs.trace import NULL_RECORDER
from repro.partition.base import PartitioningScheme
from repro.storage.cache import CacheStats, PartitionCache
from repro.errors import ReplicaExists
from repro.storage.faults import (
    DegradedReadError,
    FaultInjector,
    InjectedFault,
    PartitionReadError,
)
from repro.storage.options import DEFAULT_EXEC_OPTIONS, ExecOptions
from repro.storage.recovery import RecoveryError, repair_partition_any
from repro.storage.replica import StoredReplica, build_replica
from repro.storage.unit import UnitStore
from repro.workload.query import Query, Workload

import numpy as np

#: Columns beyond the (x, y, t) filter set — what the lazy scan avoids
#: decoding when no row of a partition survives the range mask.
_N_OTHER_COLUMNS = len(FIELDS) - 3


@dataclass(frozen=True, slots=True)
class QueryStats:
    """Execution accounting for one range query.

    ``scanned_fraction`` is the paper's ``S`` (Figure 2): the share of the
    dataset's records that had to be scanned.  ``bytes_read`` counts bytes
    actually fetched from the unit store — partitions served from the
    decoded-partition cache contribute zero.  ``retries`` and
    ``failovers`` are 0 on a healthy read; a positive ``failovers`` means
    ``replica_name`` is not the replica routing originally chose.
    """

    replica_name: str
    partitions_involved: int
    records_scanned: int
    records_returned: int
    bytes_read: int
    seconds: float
    total_records: int
    retries: int = 0
    failovers: int = 0
    #: Ingest-path delta-buffer accounting, kept OUT of ``seconds`` /
    #: ``bytes_read`` so Eq. 7 calibration over measured replica scans
    #: never sees the brute-force buffer filter.  Zero on plain
    #: :class:`BlotStore` reads; only
    #: :class:`~repro.storage.ingest.IngestingBlotStore` sets them.
    buffer_seconds: float = 0.0
    buffer_bytes_scanned: int = 0

    @property
    def scanned_fraction(self) -> float:
        if self.total_records == 0:
            return 0.0
        return self.records_scanned / self.total_records


@dataclass(frozen=True, slots=True)
class QueryResult:
    """Records matching the query plus execution statistics."""

    records: Dataset
    stats: QueryStats


@dataclass(frozen=True, slots=True)
class WorkloadStats:
    """Aggregate accounting for one :meth:`BlotStore.execute_workload` run.

    ``bytes_read`` counts unique store fetches — a partition shared by
    several queries (or served from the cache) is charged once or not at
    all, which is the whole point of the batch path.  ``cache_hits`` /
    ``cache_misses`` are deltas over this run only; ``cache_hit_rate`` is
    0.0 when no cache is configured.

    The degradation fields report failure handling: ``retries`` (partition
    reads retried), ``failovers`` (query re-routes to a fallback replica),
    ``repairs`` (units restored from a diverse replica mid-run),
    ``failed_replicas`` (replicas observed down), and
    ``degraded_cost_delta`` — the estimated extra cost (Eq. 7 seconds) of
    the replicas that actually served versus the healthy routing plan.
    All are zero/empty on a healthy run.
    """

    n_queries: int
    seconds: float
    bytes_read: int
    records_scanned: int
    records_returned: int
    #: Partitions fetched from the unit store and decoded (cache hits and
    #: partitions shared across queries are not re-counted).
    partitions_decoded: int
    cache_hits: int
    cache_misses: int
    per_replica_queries: dict[str, int]
    retries: int = 0
    failovers: int = 0
    repairs: int = 0
    degraded_cost_delta: float = 0.0
    failed_replicas: tuple[str, ...] = ()
    #: Ingest delta-buffer accounting (see :class:`QueryStats`); zero
    #: outside the ingest path.
    buffer_seconds: float = 0.0
    buffer_bytes_scanned: int = 0

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        if lookups == 0:
            return 0.0
        return self.hits_over(lookups)

    def hits_over(self, lookups: int) -> float:
        return self.cache_hits / lookups

    @property
    def degraded(self) -> bool:
        """True when any failure handling happened during the run."""
        return bool(self.retries or self.failovers or self.repairs
                    or self.failed_replicas)


@dataclass(frozen=True, slots=True)
class WorkloadResult:
    """Per-query results (workload order), the routing plan that produced
    them, and the aggregate execution statistics."""

    results: tuple[QueryResult, ...]
    plan: RoutingPlan
    stats: WorkloadStats


class _Accounting:
    """Thread-safe degradation counters shared by one execution call
    (partition scans run on the pool, so increments race)."""

    __slots__ = ("retries", "failovers", "repairs", "_lock")

    def __init__(self) -> None:
        self.retries = 0
        self.failovers = 0
        self.repairs = 0
        self._lock = threading.Lock()

    def add_retry(self) -> None:
        with self._lock:
            self.retries += 1

    def add_failover(self) -> None:
        with self._lock:
            self.failovers += 1

    def add_repair(self) -> None:
        with self._lock:
            self.repairs += 1


class _DecodeTelemetry:
    """Per-column-block decode hook the engine hands to
    :meth:`EncodingScheme.open`: one counter bump and one histogram
    observation per column block actually decoded (metric objects are
    internally locked, so pool threads may call this concurrently)."""

    __slots__ = ("_metrics", "_by_kind")

    def __init__(self, metrics) -> None:
        self._metrics = metrics
        # Per-kind (counter, histogram) handles, resolved once: this
        # fires per column block, and registry lookups cost more than
        # the increment.  A racing first-miss resolves to the same
        # registry objects, so the benign overwrite is harmless.
        self._by_kind: dict[str, tuple] = {}

    def column_decoded(self, kind: str, seconds: float) -> None:
        pair = self._by_kind.get(kind)
        if pair is None:
            pair = (
                self._metrics.counter(
                    "repro_columns_decoded_total", labels={"kind": kind}),
                self._metrics.histogram(
                    "repro_decode_seconds", labels={"kind": kind}),
            )
            self._by_kind[kind] = pair
        pair[0].inc()
        pair[1].observe(seconds)


class BlotStore:
    """A single-node BLOT system instance over one logical dataset.

    ``cache_bytes`` enables the decoded-partition LRU cache shared by
    ``query()``, ``count()`` and ``execute_workload()``; ``None`` keeps
    the seed behavior of decoding on every access.  ``fault_injector``
    routes every storage unit read through a
    :class:`~repro.storage.faults.FaultInjector` (used by failure drills
    and tests; ``None`` — the default — costs nothing).
    """

    def __init__(
        self,
        dataset: Dataset,
        cost_model: CostModel | None = None,
        cache_bytes: int | None = None,
        fault_injector: FaultInjector | None = None,
        observability: Observability | None = None,
    ):
        if len(dataset) == 0:
            raise ValueError("BlotStore needs a non-empty dataset")
        self._dataset = dataset
        self._universe = dataset.bounding_box()
        self._replicas: dict[str, StoredReplica] = {}
        self._cost_model = cost_model
        self._obs = observability
        metrics = observability.metrics if observability is not None else None
        self._cache = (PartitionCache(cache_bytes, metrics=metrics)
                       if cache_bytes else None)
        self._faults = fault_injector
        if fault_injector is not None and metrics is not None:
            fault_injector.bind_metrics(metrics)
        self._decode_tel = (_DecodeTelemetry(metrics)
                            if metrics is not None else None)
        # Zone-map memo: (replica, pid) -> ((x, y, t) zones, or None for
        # formats without zone maps), recorded whenever a blob is opened.
        # Zones describe the partition's logical content, which is
        # immutable for a *given* replica (repair restores identical
        # records), so entries only invalidate when the replica itself is
        # retired or swapped (a rebuilt same-name replica partitions the
        # data differently).  Single-key dict ops are atomic under the
        # GIL.
        self._zone_info: dict[tuple[str, int], tuple | None] = {}
        # Hot-path counter handles by name (see _bump).
        self._counter_memo: dict[str, object] = {}
        self._pool: ThreadPoolExecutor | None = None
        self._pool_workers = 0

    def __reduce__(self):
        raise TypeError(
            "BlotStore holds live handles (mmap views, a scan thread pool, "
            "telemetry recorders) and cannot be pickled.  Ship a "
            "repro.storage.StoreConfig across the process boundary and "
            "rehydrate with open_store(config) in the worker instead."
        )

    # -- replica management -------------------------------------------------

    @property
    def dataset(self) -> Dataset:
        return self._dataset

    @property
    def universe(self) -> Box3:
        return self._universe

    @property
    def partition_cache(self) -> PartitionCache | None:
        return self._cache

    @property
    def fault_injector(self) -> FaultInjector | None:
        return self._faults

    @property
    def observability(self) -> Observability | None:
        """The telemetry bundle the engine publishes into (None when the
        store runs un-instrumented)."""
        return self._obs

    @property
    def cost_model(self) -> CostModel | None:
        """The routing cost model — exposed so the closed telemetry
        loop (``Observability.attach_recalibrator``) can hot-swap
        calibrated constants on the model the engine actually routes
        with."""
        return self._cost_model

    def set_fault_injector(self, injector: FaultInjector | None) -> None:
        """Attach (or detach, with None) a fault injector to the store
        and every registered replica."""
        self._faults = injector
        if injector is not None and self._obs is not None:
            injector.bind_metrics(self._obs.metrics)
        for stored in self._replicas.values():
            stored.attach_fault_injector(injector)

    def cache_stats(self) -> CacheStats | None:
        """Lifetime counters of the decoded-partition cache (None when
        no cache is configured)."""
        return self._cache.stats() if self._cache is not None else None

    def replica_names(self) -> list[str]:
        return list(self._replicas)

    def replica(self, name: str) -> StoredReplica:
        try:
            return self._replicas[name]
        except KeyError:
            raise KeyError(f"no replica named {name!r}; have {list(self._replicas)}") from None

    def add_replica(
        self,
        scheme: PartitioningScheme,
        encoding: EncodingScheme,
        store: UnitStore,
        name: str | None = None,
    ) -> StoredReplica:
        """Build and register a diverse replica of the dataset."""
        replica = build_replica(
            self._dataset, scheme, encoding, store, name=name, universe=self._universe
        )
        return self.register_replica(replica)

    def register_replica(self, replica: StoredReplica) -> StoredReplica:
        """Register an already-built replica (e.g. a mixed-encoding one
        from :func:`repro.storage.build_mixed_replica`, or a replica
        reopened from a manifest)."""
        if replica.name in self._replicas:
            raise ReplicaExists(f"replica {replica.name!r} already exists")
        self._replicas[replica.name] = replica
        if self._faults is not None:
            replica.attach_fault_injector(self._faults)
        if self._obs is not None:
            self._obs.metrics.counter(
                "repro_replica_changes_total",
                labels={"op": "register", "replica": replica.name}).inc()
        return replica

    def retire_replica(self, name: str) -> StoredReplica:
        """Hot-remove a replica from the serving set.

        The replica drops out of routing immediately (``route`` /
        ``route_workload`` recompute from the live set on every call);
        its decoded-partition cache entries and memoized zone bounds are
        invalidated so a later replica registered under the same name
        can never be served another replica's stale partitions.  In-
        flight batch plans that still assign queries to the retired
        name fail over down each query's Eq. 6-7 ranking instead of
        erroring.  Returns the retired replica (the caller owns the
        underlying storage units and decides when to delete them).
        """
        stored = self.replica(name)  # KeyError early on unknown names
        if len(self._replicas) == 1:
            raise ValueError(
                f"cannot retire {name!r}: it is the last replica")
        del self._replicas[name]
        self._forget_replica_state(name, op="retire")
        return stored

    def swap_replica(self, replica: StoredReplica) -> StoredReplica:
        """Atomically replace the same-name replica with a rebuilt one.

        The satellite bugfix this codifies: a rebuild under an existing
        name MUST evict that name's decoded-partition cache entries and
        zone-memo rows — both are keyed ``(replica_name, pid)``, and the
        rebuilt replica's partition ``pid`` generally holds different
        records in a different box, so a stale hit would silently serve
        the old replica's data.  Returns the displaced replica.
        """
        old = self.replica(replica.name)
        self._replicas[replica.name] = replica
        if self._faults is not None:
            replica.attach_fault_injector(self._faults)
        self._forget_replica_state(replica.name, op="swap")
        return old

    def _forget_replica_state(self, name: str, op: str) -> None:
        """Drop every piece of memoized per-replica read state: cache
        entries and zone-memo rows keyed on ``(name, pid)``."""
        if self._cache is not None:
            self._cache.invalidate_replica(name)
        for key in [k for k in self._zone_info if k[0] == name]:
            self._zone_info.pop(key, None)
        if self._obs is not None:
            self._obs.metrics.counter(
                "repro_replica_changes_total",
                labels={"op": op, "replica": name}).inc()

    def total_storage_bytes(self) -> int:
        """``Storage(R)`` over all registered replicas (Definition 5)."""
        return sum(r.storage_bytes() for r in self._replicas.values())

    # -- shared scan machinery ------------------------------------------------

    def close(self) -> None:
        """Shut down the persistent scan pool (idempotent).  The store
        remains usable; the pool is recreated on the next parallel scan."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_workers = 0

    def _executor(self, parallelism: int) -> ThreadPoolExecutor:
        """The lazily-created persistent scan pool, grown (never shrunk)
        to ``parallelism`` workers.  Reusing one pool avoids paying thread
        startup on every query, the seed behavior."""
        if self._pool is None or self._pool_workers < parallelism:
            if self._pool is not None:
                self._pool.shutdown(wait=False)
            self._pool = ThreadPoolExecutor(
                max_workers=parallelism, thread_name_prefix="blot-scan"
            )
            self._pool_workers = parallelism
        return self._pool

    @staticmethod
    def _get_blob(store: UnitStore, key: str):
        """Fetch one unit's bytes, zero-copy when the backend supports
        views (all built-in stores do; third-party stores fall back to
        ``get``)."""
        get_view = getattr(store, "get_view", None)
        return get_view(key) if get_view is not None else store.get(key)

    def _check_replica_up(self, stored: StoredReplica, pid: int | None) -> None:
        """Fail fast on a whole-replica outage — before the cache is
        consulted (the node's memory is as gone as its disks) and without
        retries."""
        faults = self._faults
        if faults is not None and faults.replica_failed(stored.name):
            fault = InjectedFault(stored.name, pid, scope="replica")
            raise PartitionReadError(stored.name, pid, fault) from fault

    def _read_unit(
        self,
        stored: StoredReplica,
        pid: int,
        options: ExecOptions,
        acct: _Accounting | None,
        rec,
        parent,
        work,
    ):
        """Run ``work(decode_span)`` — one unit's fetch+decode — under the
        engine's fault contract: injected faults fire first, transient
        failures are retried per ``options`` (sleeping through
        ``options.sleep``), and a read that stays failed raises
        :class:`~repro.storage.faults.PartitionReadError`.  Replica-scope
        faults are never retried.
        """
        faults = self._faults
        failures = 0
        while True:
            try:
                with rec.start("decode", parent=parent) as decode_span:
                    if faults is not None:
                        faults.on_read(stored.name, pid)
                    return work(decode_span)
            except Exception as exc:
                if isinstance(exc, InjectedFault) and exc.scope == "replica":
                    raise PartitionReadError(
                        stored.name, pid, exc, failures + 1) from exc
                failures += 1
                if failures > options.retries:
                    raise PartitionReadError(
                        stored.name, pid, exc, failures) from exc
                if acct is not None:
                    acct.add_retry()
                with rec.start("retry", parent=parent, attempt=failures,
                               cause=type(exc).__name__):
                    if options.backoff_seconds > 0:
                        sleep = options.sleep or time.sleep
                        sleep(options.backoff_seconds * 2 ** (failures - 1))

    def _fetch_decoded(
        self,
        stored: StoredReplica,
        pid: int,
        options: ExecOptions = DEFAULT_EXEC_OPTIONS,
        acct: _Accounting | None = None,
        rec=NULL_RECORDER,
        parent=None,
    ) -> tuple[Dataset, int] | None:
        """Decode one partition fully, through the cache when configured.

        Returns ``(records, bytes_read)`` where ``bytes_read`` is 0 on a
        cache hit, or None for empty partitions (no storage unit).
        Transiently failed reads are retried per ``options``
        (:meth:`_read_unit`); a whole-replica outage fails before the
        cache is consulted.  ``rec``/``parent`` attach
        ``cache``/``decode``/``retry`` spans under the caller's scan span
        when tracing.
        """
        key = stored.unit_keys[pid]
        if key is None:
            return None
        self._check_replica_up(stored, pid)
        use_cache = self._cache is not None and options.use_cache
        if use_cache:
            hit = self._cache.get((stored.name, pid))
            rec.event("cache", parent=parent,
                      outcome="hit" if hit is not None else "miss")
            if hit is not None:
                return hit, 0

        def work(decode_span):
            blob = self._get_blob(stored.store, key)
            reader = stored.encoding_for(pid).open(blob, self._decode_tel)
            self._remember_zones(stored, pid, reader)
            records = reader.dataset()
            decode_span.annotate(bytes=len(blob), records=len(records))
            return records, len(blob)

        records, nbytes = self._read_unit(stored, pid, options, acct,
                                          rec, parent, work)
        if use_cache:
            self._cache.put((stored.name, pid), records)
        return records, nbytes

    def _map_partitions(self, fn, pids, parallelism: int) -> list:
        """Apply ``fn`` over partition ids, on the persistent pool when
        ``parallelism`` > 1 and there is more than one partition."""
        pids = [int(p) for p in pids]
        if parallelism == 1 or len(pids) <= 1:
            return [fn(pid) for pid in pids]
        return list(self._executor(parallelism).map(fn, pids))

    def _note_read_failure(self, err: PartitionReadError) -> None:
        """Invalidate the cache entries a failed read makes suspect: the
        whole replica on a replica-level outage, the single unit
        otherwise."""
        if self._cache is None:
            return
        if err.replica_failed:
            self._cache.invalidate_replica(err.replica_name)
        elif err.partition_id is not None:
            self._cache.invalidate((err.replica_name, err.partition_id))

    # -- routing ---------------------------------------------------------------

    def route(self, query: Query) -> str:
        """Pick the replica with the lowest estimated cost for ``query``.

        Requires a cost model when more than one replica exists; with a
        single replica routing is trivial.  Equal-cost ties break
        deterministically toward the lexicographically smallest replica
        name (the same rule as
        :meth:`~repro.costmodel.CostModel.route_batch`), so routing never
        depends on replica registration order.
        """
        return self.route_ranked(query)[0]

    def route_ranked(self, query: Query) -> list[str]:
        """Every replica ranked by estimated Eq. 7 cost for ``query`` —
        cheapest first, ties toward the lexicographically smallest name.
        The head is what :meth:`route` returns; the tail is the failover
        order the engine walks when the assigned replica fails.
        """
        if not self._replicas:
            raise ValueError("no replicas registered")
        names = sorted(self._replicas)
        if len(names) == 1:
            return names
        if self._cost_model is None:
            raise ValueError(
                "multiple replicas but no cost model configured; "
                "pass replica= to query() or construct BlotStore with a cost model"
            )
        n = len(self._dataset)
        scored = [
            (self._cost_model.query_cost(
                query, self._replicas[name].profile(n_records=n)), name)
            for name in names
        ]
        scored.sort()
        return [name for _, name in scored]

    def _candidates(
        self, query: Query, replica: str | None, options: ExecOptions
    ) -> list[str]:
        """The replicas to try for one query, primary first.

        With an explicit ``replica`` the pin wins the first slot; the
        rest of the ranking (cost order when a model exists, name order
        otherwise) follows as failover targets when enabled.
        """
        if replica is not None:
            self.replica(replica)  # raise KeyError early on unknown names
            if not options.failover or len(self._replicas) == 1:
                return [replica]
            if self._cost_model is not None:
                ranked = self.route_ranked(query)
            else:
                ranked = sorted(self._replicas)
            return [replica] + [n for n in ranked if n != replica]
        ranked = self.route_ranked(query)
        return ranked if options.failover else ranked[:1]

    def route_workload(
        self, workload: Workload, options: ExecOptions | None = None
    ) -> RoutingPlan:
        """Batch-route a whole workload in one vectorized pass.

        Computes the queries x replicas Eq. 7 cost matrix with one ``Np``
        broadcast per replica (instead of per-query Python loops) and
        returns the argmin :class:`~repro.costmodel.RoutingPlan`.  Agrees
        with per-query :meth:`route` including tie-breaking; the full
        cost matrix also carries each query's failover ranking
        (:meth:`~repro.costmodel.RoutingPlan.ranking_for`).  ``options``
        is accepted for surface uniformity; routing itself is a pure
        cost computation and uses none of its fields.
        """
        del options  # uniform surface; routing has no execution knobs
        if not self._replicas:
            raise ValueError("no replicas registered")
        names = list(self._replicas)
        if len(names) == 1:
            m = len(workload)
            return RoutingPlan(
                replica_names=(names[0],),
                assignments=np.zeros(m, dtype=np.intp),
                costs=np.zeros((m, 1), dtype=np.float64),
            )
        if self._cost_model is None:
            raise ValueError(
                "multiple replicas but no cost model configured; "
                "cannot route a workload"
            )
        n = len(self._dataset)
        profiles = [self._replicas[name].profile(n_records=n) for name in names]
        return self._cost_model.route_batch(workload, profiles)

    # -- query processing ------------------------------------------------------

    def query(
        self,
        query: Query | Box3,
        replica: str | None = None,
        options: ExecOptions | None = None,
    ) -> QueryResult:
        """Process a range query (Section II-D).

        ``query`` may be a positioned :class:`Query` or a raw box.  When
        ``replica`` is None the engine routes by estimated cost.
        Execution behavior — scan parallelism, cache policy, retries,
        failover, repair — comes from ``options``
        (:class:`~repro.storage.options.ExecOptions`).  When the serving
        replica fails mid-read the query transparently fails over down
        the cost ranking; on exhaustion the engine tries a diverse-
        replica repair, then raises
        :class:`~repro.storage.faults.DegradedReadError`.

        When given a raw :class:`Box3` the scan uses those exact bounds;
        the positioned :class:`Query` derived from it is used only for
        routing.  (Re-deriving the box from the centered form can move
        a face by one ulp, dropping or admitting records that lie
        exactly on the query boundary.)
        """
        q = Query.from_box(query) if isinstance(query, Box3) else query
        box = query if isinstance(query, Box3) else query.box()
        opts = options if options is not None else DEFAULT_EXEC_OPTIONS
        acct = _Accounting()
        rec = self._recorder(opts)
        with rec.start("query", context=opts.trace_context,
                       kind="query", q_width=q.width,
                       q_height=q.height, q_duration=q.duration,
                       q_x=q.x, q_y=q.y, q_t=q.t) as root:
            with rec.start("route", parent=root) as route_span:
                candidates = self._candidates(q, replica, opts)
                route_span.annotate(candidates=list(candidates))
            attempts: list[tuple[str, Exception]] = []
            for name in candidates:
                stored = self._replicas.get(name)
                if stored is None:
                    # Retired between routing and serving: fail over.
                    attempts.append((name, KeyError(name)))
                    acct.add_failover()
                    rec.event("failover", parent=root, failed_replica=name,
                              cause="retired")
                    continue
                try:
                    result = self._scan_query(stored, q, opts, acct,
                                              rec=rec, root=root, box=box)
                except PartitionReadError as err:
                    self._note_read_failure(err)
                    attempts.append((name, err))
                    acct.add_failover()
                    rec.event("failover", parent=root, failed_replica=name)
                    continue
                root.annotate(replica=name)
                return self._finish_query(q, result, acct, "query")
            result = self._repair_and_rescan(q, opts, acct, attempts,
                                             rec=rec, root=root, box=box)
            if result is not None:
                root.annotate(replica=result.stats.replica_name)
                return self._finish_query(q, result, acct, "query")
            raise DegradedReadError(
                "range query could not be served by any replica",
                tuple(attempts))

    def _recorder(self, opts: ExecOptions):
        """The trace recorder for one call: the store's real recorder
        when telemetry is attached and ``opts.trace`` is set, the
        shared no-op recorder otherwise."""
        if self._obs is not None and opts.trace:
            return self._obs.tracer
        return NULL_RECORDER

    def _finish_query(self, q: Query, result: QueryResult,
                      acct: _Accounting, path: str) -> QueryResult:
        """Seal one served query: stamp degradation counters into the
        stats, publish metrics and the drift pair."""
        result = self._with_degradation(result, acct)
        obs = self._obs
        if obs is not None:
            self._publish_query(obs, result.stats, path, acct)
            self._record_drift(obs, q, result.stats.replica_name,
                               result.stats.seconds)
            obs.observe_query(q)
            self._after_telemetry(obs, result.stats.replica_name)
        return result

    def _after_telemetry(self, obs: Observability,
                         replica_name: str) -> None:
        """Closed-loop tail of every served call: offer the attached
        recalibrator a shot at the serving replica's drift flag (both
        no-ops on a bundle without the optional layers), then let the
        checkpointer persist a snapshot if its schedule says so."""
        stored = self._replicas.get(replica_name)
        if stored is not None:
            obs.maybe_recalibrate(replica_name, stored.encoding.name)
        obs.maybe_reselect()
        obs.maybe_checkpoint()

    def _publish_query(self, obs: Observability, stats: QueryStats,
                       path: str, acct: _Accounting | None) -> None:
        m = obs.metrics
        m.counter("repro_queries_total", labels={"path": path}).inc()
        m.counter("repro_queries_by_replica_total",
                  labels={"replica": stats.replica_name}).inc()
        m.counter("repro_bytes_read_total").inc(stats.bytes_read)
        m.counter("repro_records_scanned_total").inc(stats.records_scanned)
        m.counter("repro_partitions_involved_total").inc(
            stats.partitions_involved)
        m.histogram("repro_query_seconds").observe(stats.seconds)
        if acct is not None:
            self._publish_degradation(obs, acct)

    @staticmethod
    def _publish_degradation(obs: Observability, acct: _Accounting) -> None:
        m = obs.metrics
        if acct.retries:
            m.counter("repro_retries_total").inc(acct.retries)
        if acct.failovers:
            m.counter("repro_failovers_total").inc(acct.failovers)
        if acct.repairs:
            m.counter("repro_repairs_total").inc(acct.repairs)

    def _record_drift(self, obs: Observability, q: Query,
                      replica_name: str, measured_seconds: float) -> None:
        """Record the (predicted Eq. 7, measured) pair for the replica
        that actually served — the raw material of Section IV-B
        recalibration decisions."""
        if self._cost_model is None:
            return
        stored = self._replicas.get(replica_name)
        if stored is None:
            return
        try:
            predicted = self._cost_model.query_cost(
                q, stored.profile(n_records=len(self._dataset)))
        except KeyError:
            return  # no calibrated params for this encoding
        obs.drift.record(replica_name, predicted, measured_seconds)

    def _with_degradation(self, result: QueryResult, acct: _Accounting) -> QueryResult:
        """Stamp the call's retry/failover counters into the stats.
        Failovers that never led to a served result (the last candidate)
        are not counted — the loop only increments on a miss before
        moving on."""
        if acct.retries == 0 and acct.failovers == 0:
            return result
        return QueryResult(
            records=result.records,
            stats=replace(result.stats, retries=acct.retries,
                          failovers=acct.failovers),
        )

    def _repair_and_rescan(
        self,
        q: Query,
        opts: ExecOptions,
        acct: _Accounting,
        attempts: list[tuple[str, Exception]],
        rec=NULL_RECORDER,
        root=None,
        box: Box3 | None = None,
    ) -> QueryResult | None:
        """Exhaustion path: repair the cheapest partition-level-failed
        replica unit by unit from the surviving replicas, then rescan.

        Whole-replica outages are skipped (there is no unit to rewrite on
        a dead node).  Returns None — leaving ``attempts`` grown with the
        repair failures — when nothing could be restored.
        """
        if not opts.repair:
            return None
        target: StoredReplica | None = None
        for name, err in attempts:
            if isinstance(err, PartitionReadError) and not err.replica_failed:
                target = self.replica(name)
                break
        if target is None:
            return None
        sources = [self.replica(n) for n in sorted(self._replicas)
                   if n != target.name]
        # Each pass repairs the first failed unit the scan trips on; a
        # query involves finitely many partitions, so bound the loop.
        for _ in range(target.n_partitions + 1):
            try:
                return self._scan_query(target, q, opts, acct,
                                        rec=rec, root=root, box=box)
            except PartitionReadError as err:
                if err.replica_failed or err.partition_id is None:
                    attempts.append((target.name, err))
                    return None
                with rec.start("repair", parent=root,
                               replica=target.name,
                               partition=err.partition_id) as repair_span:
                    try:
                        repair_partition_any(target, err.partition_id, sources)
                    except (RecoveryError, ValueError) as recovery_err:
                        repair_span.annotate(outcome="failed")
                        attempts.append((target.name, recovery_err))
                        return None
                    repair_span.annotate(outcome="repaired")
                acct.add_repair()
                if self._faults is not None:
                    self._faults.heal_partition(target.name, err.partition_id)
                if self._cache is not None:
                    self._cache.invalidate((target.name, err.partition_id))
        return None

    def _bump(self, name: str, amount: int = 1) -> None:
        """Increment a fast-path counter (no-op without telemetry;
        metric objects are internally locked, safe from pool threads).
        Handles are memoized per name — pruning checks fire per
        partition per query, and the registry lookup dominates the
        increment (a racing first-miss resolves to the same registry
        object, so the benign overwrite is harmless)."""
        if self._obs is not None and amount:
            counter = self._counter_memo.get(name)
            if counter is None:
                counter = self._obs.metrics.counter(name)
                self._counter_memo[name] = counter
            counter.inc(amount)

    def _remember_zones(self, stored: StoredReplica, pid: int, reader):
        """Memoize a freshly opened reader's (x, y, t) zone bounds so
        later queries can prune this partition without re-fetching it."""
        zones = ((reader.zone("x"), reader.zone("y"), reader.zone("t"))
                 if reader.lazy else None)
        self._zone_info[(stored.name, pid)] = zones
        return zones

    @staticmethod
    def _zones_disjoint(zones, box: Box3) -> bool:
        """True when memoized zone bounds prove no record of the
        partition can fall inside the closed query box."""
        zx, zy, zt = zones
        return (
            (zx is not None and (zx[1] < box.x_min or zx[0] > box.x_max))
            or (zy is not None and (zy[1] < box.y_min or zy[0] > box.y_max))
            or (zt is not None and (zt[1] < box.t_min or zt[0] > box.t_max))
        )

    def _scan_partition(
        self,
        stored: StoredReplica,
        pid: int,
        box: Box3,
        opts: ExecOptions,
        acct: _Accounting,
        rec=NULL_RECORDER,
        parent=None,
    ) -> tuple[int, int, Dataset] | None:
        """Scan one partition for a range query, decoding as little as
        possible; returns ``(bytes_read, records_scanned, matched)`` or
        None for empty partitions.

        Fast paths, in order:

        - **zone-pruned** — the partition's zone map (read from the blob,
          or memoized from an earlier open) proves no record can fall in
          the box: zero column decodes, zero records scanned.
        - **contained** — the query box contains the partition box, so
          canonical placement guarantees every record matches: decode all
          columns, skip the mask entirely.
        - **lazy filter** (columnar v2, uncached) — decode only
          ``x``/``y``/``t``, evaluate the mask; when nothing survives the
          remaining columns are never decoded.  With a partition cache
          configured the full decode happens instead — the cache stores
          full partitions only, and its contract is that repeat queries
          read zero bytes.

        Row and columnar-v1 blobs take the eager decode+filter path.  The
        mask is the exact :meth:`Dataset.mask_box` expression and row
        order is preserved, so results are bit-identical to the eager
        path on every branch.
        """
        key = stored.unit_keys[pid]
        if key is None:
            return None
        self._check_replica_up(stored, pid)
        part_box = Box3(*stored.partitioning.box_array[pid])
        contained = box.contains_box(part_box)
        use_cache = self._cache is not None and opts.use_cache
        # The zone memo extends the cache's contract (repeat reads are
        # free) to partitions the cache never stores because the zone map
        # pruned them.  Without a cache every query pays its reads, so the
        # memo only short-circuits when caching is on.
        if use_cache and not contained:
            known = self._zone_info.get((stored.name, pid))
            if known is not None and self._zones_disjoint(known, box):
                self._bump("repro_partitions_pruned_total")
                rec.event("prune", parent=parent, source="zone-memo")
                return 0, 0, Dataset.empty()
        if use_cache:
            hit = self._cache.get((stored.name, pid))
            rec.event("cache", parent=parent,
                      outcome="hit" if hit is not None else "miss")
            if hit is not None:
                if contained:
                    return 0, len(hit), hit
                return 0, len(hit), hit.filter_box(box)

        def work(decode_span):
            blob = self._get_blob(stored.store, key)
            nbytes = len(blob)
            reader = stored.encoding_for(pid).open(blob, self._decode_tel)
            zones = self._remember_zones(stored, pid, reader)
            if contained:
                records = reader.dataset()
                decode_span.annotate(bytes=nbytes, records=len(records),
                                     mask_skipped=True)
                return records, (nbytes, len(records), records)
            if zones is not None and self._zones_disjoint(zones, box):
                self._bump("repro_partitions_pruned_total")
                decode_span.annotate(bytes=nbytes, records=0, pruned=True)
                return None, (nbytes, 0, Dataset.empty())
            if reader.lazy and not use_cache:
                x = reader.decode_column("x")
                y = reader.decode_column("y")
                t = reader.decode_column("t")
                mask = (
                    (x >= box.x_min) & (x <= box.x_max)
                    & (y >= box.y_min) & (y <= box.y_max)
                    & (t >= box.t_min) & (t <= box.t_max)
                )
                n = reader.n_records
                if not mask.any():
                    self._bump("repro_columns_skipped_total", _N_OTHER_COLUMNS)
                    decode_span.annotate(bytes=nbytes, records=n,
                                         columns_skipped=_N_OTHER_COLUMNS)
                    return None, (nbytes, n, Dataset.empty())
                records = reader.dataset()
                decode_span.annotate(bytes=nbytes, records=n)
                return records, (nbytes, n, records.take(mask))
            records = reader.dataset()
            decode_span.annotate(bytes=nbytes, records=len(records))
            return records, (nbytes, len(records), records.filter_box(box))

        full, outcome = self._read_unit(stored, pid, opts, acct,
                                        rec, parent, work)
        if use_cache and full is not None:
            self._cache.put((stored.name, pid), full)
        return outcome

    def _scan_query(
        self,
        stored: StoredReplica,
        q: Query,
        opts: ExecOptions,
        acct: _Accounting,
        rec=NULL_RECORDER,
        root=None,
        box: Box3 | None = None,
    ) -> QueryResult:
        """One attempt of the three-step mechanism on one replica.
        ``box`` carries the caller's exact bounds when the query came in
        as a raw :class:`Box3` (``q.box()`` may differ by one ulp).
        Raises :class:`PartitionReadError` when any involved partition
        stays unreadable after retries."""
        if box is None:
            box = q.box()
        start = time.perf_counter()
        involved = stored.involved_partitions(box)

        def scan_one(pid: int) -> tuple[int, int, Dataset] | None:
            with rec.start("scan", parent=root, replica=stored.name,
                           partition=pid) as scan_span:
                outcome = self._scan_partition(stored, pid, box, opts, acct,
                                               rec=rec, parent=scan_span)
                if outcome is not None:
                    scan_span.annotate(records=outcome[1], bytes=outcome[0])
                return outcome

        outcomes = self._map_partitions(scan_one, involved, opts.parallelism)

        parts: list[Dataset] = []
        scanned = 0
        bytes_read = 0
        for outcome in outcomes:
            if outcome is None:
                continue
            nbytes, nrecords, matched = outcome
            bytes_read += nbytes
            scanned += nrecords
            parts.append(matched)
        result = Dataset.concat(parts) if parts else Dataset.empty()
        elapsed = time.perf_counter() - start
        stats = QueryStats(
            replica_name=stored.name,
            partitions_involved=int(len(involved)),
            records_scanned=scanned,
            records_returned=len(result),
            bytes_read=bytes_read,
            seconds=elapsed,
            total_records=len(self._dataset),
        )
        return QueryResult(records=result, stats=stats)

    def count(
        self,
        query: Query | Box3,
        replica: str | None = None,
        options: ExecOptions | None = None,
    ) -> tuple[int, QueryStats]:
        """Count records in a range without materializing them.

        Partitions wholly *contained* by the query range contribute their
        metadata record count with no decoding at all (their canonical
        contents are inside the box by construction); only boundary
        partitions — intersected but not contained — are decoded and
        filtered.  For large ranges this touches a tiny fraction of the
        data: the count-query analogue of the paper's sequential-scan
        argument.  Accepts the same
        :class:`~repro.storage.options.ExecOptions` as :meth:`query`,
        with the same retry/failover/repair semantics on boundary-
        partition reads.  As with :meth:`query`, a raw :class:`Box3` is
        counted against its exact bounds.
        """
        q = Query.from_box(query) if isinstance(query, Box3) else query
        box = query if isinstance(query, Box3) else query.box()
        opts = options if options is not None else DEFAULT_EXEC_OPTIONS
        acct = _Accounting()
        rec = self._recorder(opts)
        with rec.start("query", context=opts.trace_context,
                       kind="count", q_width=q.width,
                       q_height=q.height, q_duration=q.duration,
                       q_x=q.x, q_y=q.y, q_t=q.t) as root:
            with rec.start("route", parent=root) as route_span:
                candidates = self._candidates(q, replica, opts)
                route_span.annotate(candidates=list(candidates))
            attempts: list[tuple[str, Exception]] = []
            for name in candidates:
                stored = self._replicas.get(name)
                if stored is None:
                    attempts.append((name, KeyError(name)))
                    acct.add_failover()
                    rec.event("failover", parent=root, failed_replica=name,
                              cause="retired")
                    continue
                try:
                    total, stats = self._scan_count(stored, q, opts, acct,
                                                    rec=rec, root=root,
                                                    box=box)
                except PartitionReadError as err:
                    self._note_read_failure(err)
                    attempts.append((name, err))
                    acct.add_failover()
                    rec.event("failover", parent=root, failed_replica=name)
                    continue
                if acct.retries or acct.failovers:
                    stats = replace(stats, retries=acct.retries,
                                    failovers=acct.failovers)
                root.annotate(replica=name)
                obs = self._obs
                if obs is not None:
                    self._publish_query(obs, stats, "count", acct)
                    self._record_drift(obs, q, name, stats.seconds)
                    obs.observe_query(q)
                    self._after_telemetry(obs, name)
                return total, stats
            raise DegradedReadError(
                "count query could not be served by any replica",
                tuple(attempts))

    def _count_partition(
        self,
        stored: StoredReplica,
        pid: int,
        box: Box3,
        opts: ExecOptions,
        acct: _Accounting,
        rec=NULL_RECORDER,
        parent=None,
    ) -> tuple[int, int, int] | None:
        """Count one boundary partition's records inside ``box``; returns
        ``(bytes_read, records_scanned, count)`` or None.

        Columnar v2 blobs never decode beyond ``x``/``y``/``t`` here — a
        count needs no payload columns — and zone-disjoint partitions
        decode nothing at all.  Partial decodes are not cached (the cache
        stores full partitions only); cached full partitions are counted
        in memory.
        """
        key = stored.unit_keys[pid]
        if key is None:
            return None
        self._check_replica_up(stored, pid)
        use_cache = self._cache is not None and opts.use_cache
        # Same cache-gated zone-memo short cut as _scan_partition.
        if use_cache:
            known = self._zone_info.get((stored.name, pid))
            if known is not None and self._zones_disjoint(known, box):
                self._bump("repro_partitions_pruned_total")
                rec.event("prune", parent=parent, source="zone-memo")
                return 0, 0, 0
        if use_cache:
            hit = self._cache.get((stored.name, pid))
            rec.event("cache", parent=parent,
                      outcome="hit" if hit is not None else "miss")
            if hit is not None:
                return 0, len(hit), hit.count_in_box(box)

        def work(decode_span):
            blob = self._get_blob(stored.store, key)
            nbytes = len(blob)
            reader = stored.encoding_for(pid).open(blob, self._decode_tel)
            zones = self._remember_zones(stored, pid, reader)
            if zones is not None and self._zones_disjoint(zones, box):
                self._bump("repro_partitions_pruned_total")
                decode_span.annotate(bytes=nbytes, records=0, pruned=True)
                return None, (nbytes, 0, 0)
            if reader.lazy and not use_cache:
                x = reader.decode_column("x")
                y = reader.decode_column("y")
                t = reader.decode_column("t")
                mask = (
                    (x >= box.x_min) & (x <= box.x_max)
                    & (y >= box.y_min) & (y <= box.y_max)
                    & (t >= box.t_min) & (t <= box.t_max)
                )
                n = reader.n_records
                self._bump("repro_columns_skipped_total", _N_OTHER_COLUMNS)
                decode_span.annotate(bytes=nbytes, records=n,
                                     columns_skipped=_N_OTHER_COLUMNS)
                return None, (nbytes, n, int(mask.sum()))
            records = reader.dataset()
            decode_span.annotate(bytes=nbytes, records=len(records))
            return records, (nbytes, len(records), records.count_in_box(box))

        full, outcome = self._read_unit(stored, pid, opts, acct,
                                        rec, parent, work)
        if use_cache and full is not None:
            self._cache.put((stored.name, pid), full)
        return outcome

    def _scan_count(
        self,
        stored: StoredReplica,
        q: Query,
        opts: ExecOptions,
        acct: _Accounting,
        rec=NULL_RECORDER,
        root=None,
        box: Box3 | None = None,
    ) -> tuple[int, QueryStats]:
        if box is None:
            box = q.box()
        faults = self._faults
        if faults is not None and faults.replica_failed(stored.name):
            # Fail fast even when the count needs no boundary decodes:
            # metadata-only answers must not be served from a dead node.
            fault = InjectedFault(stored.name, scope="replica")
            raise PartitionReadError(stored.name, None, fault) from fault
        start = time.perf_counter()
        involved = stored.involved_partitions(box)

        contained_total = 0
        metadata_partitions = 0
        boundary: list[int] = []
        for pid in involved:
            pid = int(pid)
            if stored.unit_keys[pid] is None:
                continue
            part_box = Box3(*stored.partitioning.box_array[pid])
            if box.contains_box(part_box):
                contained_total += int(stored.partitioning.counts[pid])
                metadata_partitions += 1
            else:
                boundary.append(pid)
        self._bump("repro_count_metadata_partitions_total",
                   metadata_partitions)

        def count_one(pid: int) -> tuple[int, int, int] | None:
            with rec.start("scan", parent=root, replica=stored.name,
                           partition=pid) as scan_span:
                outcome = self._count_partition(stored, pid, box, opts, acct,
                                                rec=rec, parent=scan_span)
                if outcome is not None:
                    scan_span.annotate(records=outcome[1], bytes=outcome[0])
                return outcome

        outcomes = self._map_partitions(count_one, boundary, opts.parallelism)

        total = contained_total
        scanned = 0
        bytes_read = 0
        decoded_partitions = 0
        for outcome in outcomes:
            if outcome is None:
                continue
            nbytes, nrecords, matched = outcome
            bytes_read += nbytes
            scanned += nrecords
            decoded_partitions += 1
            total += matched
        elapsed = time.perf_counter() - start
        stats = QueryStats(
            replica_name=stored.name,
            partitions_involved=decoded_partitions,
            records_scanned=scanned,
            records_returned=total,
            bytes_read=bytes_read,
            seconds=elapsed,
            total_records=len(self._dataset),
        )
        return total, stats

    # -- workload execution ----------------------------------------------------

    def execute_workload(
        self,
        workload: Workload,
        plan: RoutingPlan | None = None,
        options: ExecOptions | None = None,
    ) -> WorkloadResult:
        """Execute a whole workload of positioned queries in one batch.

        The workload is routed with :meth:`route_workload` (unless a
        ``plan`` is supplied), grouped by chosen replica, and each
        replica's involved-partition *union* is decoded exactly once —
        on the persistent thread pool when ``options.parallelism`` > 1 —
        before the per-query filters run against the decoded partitions.
        A query's records therefore match sequential
        ``query(q, replica=...)`` exactly, record order included, while
        partitions shared by overlapping queries are fetched and decoded
        once instead of once per query.

        Failure handling mirrors the per-query path, at batch
        granularity: queries touching a failed partition move as a group
        to each one's next-cheapest replica
        (:meth:`~repro.costmodel.RoutingPlan.ranking_for`) and join that
        replica's union scan in the next round.  A query that exhausts
        every replica goes through the repair path; if that also fails
        the whole call raises
        :class:`~repro.storage.faults.DegradedReadError` — never a
        partial result set.  The degradation is accounted in
        :class:`WorkloadStats` (retries, failovers, repairs, failed
        replicas, and the estimated cost delta vs. the healthy plan).

        Per-query ``bytes_read`` charges each store fetch to the first
        query that needed the partition; ``WorkloadStats.bytes_read``
        totals the unique fetches (including fetches whose queries later
        failed over, so the two can differ on a degraded run).
        """
        opts = options if options is not None else DEFAULT_EXEC_OPTIONS
        queries: list[Query] = []
        for i, (q, _) in enumerate(workload):
            if not isinstance(q, Query):
                raise ValueError(
                    f"execute_workload needs positioned queries; entry {i} is a "
                    f"grouped query {q!r} (position it with .at())"
                )
            queries.append(q)
        rec = self._recorder(opts)
        wl_root = rec.start("workload", context=opts.trace_context,
                            n_queries=len(queries))
        try:
            if plan is None:
                with rec.start("route", parent=wl_root, batch=True):
                    plan = self.route_workload(workload)
            elif plan.n_queries != len(workload):
                raise ValueError(
                    f"plan covers {plan.n_queries} queries, "
                    f"workload has {len(workload)}"
                )
            return self._execute_planned(queries, plan, opts, rec, wl_root)
        except BaseException as exc:
            wl_root.annotate(error=f"{type(exc).__name__}: {exc}")
            raise
        finally:
            rec.finish(wl_root)

    def _execute_planned(
        self,
        queries: list[Query],
        plan: RoutingPlan,
        opts: ExecOptions,
        rec,
        wl_root,
    ) -> WorkloadResult:
        """The batch execution loop behind :meth:`execute_workload`,
        with the workload-level trace span already open."""
        assigned = plan.assigned_names()
        cache_before = self._cache.stats() if self._cache is not None else None

        start = time.perf_counter()
        total_records = len(self._dataset)
        m = len(queries)
        acct = _Accounting()
        results: list[QueryResult | None] = [None] * m
        serving: list[str] = list(assigned)
        tried: list[set[str]] = [{assigned[i]} for i in range(m)]
        errors: list[list[tuple[str, Exception]]] = [[] for _ in range(m)]
        failed_replicas: set[str] = set()
        total_bytes = 0
        total_decoded = 0

        current: dict[str, list[int]] = {}
        for i, name in enumerate(assigned):
            current.setdefault(name, []).append(i)

        while current:
            next_round: dict[str, list[int]] = {}
            for name in sorted(current):
                idxs = current[name]
                stored = self._replicas.get(name)
                if stored is None:
                    # The plan predates a hot retire: move the whole
                    # group down each query's Eq. 6-7 ranking, exactly
                    # like a replica-scope read failure.
                    err = KeyError(name)
                    for i in idxs:
                        errors[i].append((name, err))
                        fallback = self._next_fallback(plan, i, tried[i],
                                                       opts)
                        if fallback is not None:
                            tried[i].add(fallback)
                            serving[i] = fallback
                            acct.add_failover()
                            rec.event("failover", parent=wl_root, query=i,
                                      failed_replica=name, fallback=fallback,
                                      cause="retired")
                            next_round.setdefault(fallback, []).append(i)
                            continue
                        results[i] = self._finish_exhausted(
                            plan, i, queries[i], opts, acct, errors[i],
                            rec=rec, root=wl_root)
                        serving[i] = results[i].stats.replica_name
                    continue
                boxes = {i: queries[i].box() for i in idxs}
                involved = {i: stored.involved_partitions(boxes[i]) for i in idxs}
                union: list[int] = sorted(
                    {int(pid) for pids in involved.values() for pid in pids}
                )

                def fetch_one(pid: int):
                    with rec.start("scan", parent=wl_root,
                                   replica=stored.name,
                                   partition=pid) as scan_span:
                        try:
                            fetched = self._fetch_decoded(
                                stored, pid, opts, acct,
                                rec=rec, parent=scan_span)
                        except PartitionReadError as err:
                            scan_span.annotate(
                                error=f"{type(err).__name__}: {err}")
                            return err
                        if fetched is not None:
                            scan_span.annotate(records=len(fetched[0]),
                                               bytes=fetched[1])
                        return fetched

                fetched = self._map_partitions(fetch_one, union, opts.parallelism)
                decoded: dict[int, Dataset] = {}
                read_bytes: dict[int, int] = {}
                failed_pids: dict[int, PartitionReadError] = {}
                for pid, outcome in zip(union, fetched):
                    if outcome is None:
                        continue
                    if isinstance(outcome, PartitionReadError):
                        failed_pids[pid] = outcome
                        self._note_read_failure(outcome)
                        if outcome.replica_failed:
                            failed_replicas.add(name)
                        continue
                    records, nbytes = outcome
                    decoded[pid] = records
                    read_bytes[pid] = nbytes
                    total_bytes += nbytes
                    if nbytes > 0:
                        total_decoded += 1

                charged: set[int] = set()
                for i in idxs:
                    bad = [int(pid) for pid in involved[i]
                           if int(pid) in failed_pids]
                    if bad:
                        errors[i].append((name, failed_pids[bad[0]]))
                        fallback = self._next_fallback(plan, i, tried[i], opts)
                        if fallback is not None:
                            tried[i].add(fallback)
                            serving[i] = fallback
                            acct.add_failover()
                            rec.event("failover", parent=wl_root, query=i,
                                      failed_replica=name, fallback=fallback)
                            next_round.setdefault(fallback, []).append(i)
                            continue
                        results[i] = self._finish_exhausted(
                            plan, i, queries[i], opts, acct, errors[i],
                            rec=rec, root=wl_root)
                        serving[i] = results[i].stats.replica_name
                        continue
                    q_start = time.perf_counter()
                    q_span = rec.start("query", parent=wl_root,
                                       kind="workload", query=i, replica=name)
                    box = boxes[i]
                    parts: list[Dataset] = []
                    scanned = 0
                    q_bytes = 0
                    for pid in involved[i]:
                        pid = int(pid)
                        records = decoded.get(pid)
                        if records is None:
                            continue
                        if pid not in charged:
                            charged.add(pid)
                            q_bytes += read_bytes[pid]
                        zones = self._zone_info.get((name, pid))
                        if zones is not None and self._zones_disjoint(zones, box):
                            # Scan parity with the sequential path, which
                            # zone-prunes this partition without scanning
                            # it.  The union read still happened, so the
                            # bytes stay charged.
                            self._bump("repro_partitions_pruned_total")
                            continue
                        scanned += len(records)
                        parts.append(records.filter_box(box))
                    result = Dataset.concat(parts) if parts else Dataset.empty()
                    stats = QueryStats(
                        replica_name=name,
                        partitions_involved=int(len(involved[i])),
                        records_scanned=scanned,
                        records_returned=len(result),
                        bytes_read=q_bytes,
                        seconds=time.perf_counter() - q_start,
                        total_records=total_records,
                        failovers=len(tried[i]) - 1,
                    )
                    q_span.annotate(records_returned=len(result))
                    rec.finish(q_span)
                    results[i] = QueryResult(records=result, stats=stats)
            current = next_round

        elapsed = time.perf_counter() - start
        final = [r for r in results if r is not None]
        assert len(final) == len(queries)
        if self._cache is not None and cache_before is not None:
            after = self._cache.stats()
            hits = after.hits - cache_before.hits
            misses = after.misses - cache_before.misses
        else:
            hits = misses = 0
        served_counts: dict[str, int] = {}
        for name in serving:
            served_counts[name] = served_counts.get(name, 0) + 1
        delta = sum(plan.degraded_delta(i, serving[i]) for i in range(m)
                    if serving[i] != assigned[i])
        stats = WorkloadStats(
            n_queries=len(queries),
            seconds=elapsed,
            bytes_read=total_bytes,
            records_scanned=sum(r.stats.records_scanned for r in final),
            records_returned=sum(r.stats.records_returned for r in final),
            partitions_decoded=total_decoded,
            cache_hits=hits,
            cache_misses=misses,
            per_replica_queries=served_counts,
            retries=acct.retries,
            failovers=acct.failovers,
            repairs=acct.repairs,
            degraded_cost_delta=float(delta),
            failed_replicas=tuple(sorted(failed_replicas)),
        )
        obs = self._obs
        if obs is not None:
            self._publish_workload(obs, stats, plan, queries, serving,
                                   final, acct)
        return WorkloadResult(results=tuple(final), plan=plan, stats=stats)

    def _publish_workload(
        self,
        obs: Observability,
        stats: WorkloadStats,
        plan: RoutingPlan,
        queries: list[Query],
        serving: list[str],
        results: list[QueryResult],
        acct: _Accounting,
    ) -> None:
        """Publish one batch run into the telemetry bundle: aggregate
        counters, the run histogram, and one drift pair per query (the
        plan's Eq. 7 prediction for the replica that actually served,
        against that query's measured filter/decode seconds)."""
        m = obs.metrics
        m.counter("repro_workloads_total").inc()
        m.counter("repro_queries_total", labels={"path": "workload"}).inc(
            stats.n_queries)
        for name, count in stats.per_replica_queries.items():
            m.counter("repro_queries_by_replica_total",
                      labels={"replica": name}).inc(count)
        m.counter("repro_bytes_read_total").inc(stats.bytes_read)
        m.counter("repro_records_scanned_total").inc(stats.records_scanned)
        m.counter("repro_partitions_involved_total").inc(
            sum(r.stats.partitions_involved for r in results))
        m.histogram("repro_workload_seconds").observe(stats.seconds)
        self._publish_degradation(obs, acct)
        for q in queries:
            obs.observe_query(q)
        if self._cost_model is None:
            return
        # Single-replica plans carry an all-zeros cost matrix (routing is
        # trivial), so fall back to a direct Eq. 7 evaluation there —
        # vectorized per serving replica, since one scalar evaluation
        # per query dominates the whole telemetry path on large batches.
        if len(plan.replica_names) > 1:
            for i in range(len(queries)):
                obs.drift.record(serving[i], plan.cost_for(i, serving[i]),
                                 results[i].stats.seconds)
        else:
            self._record_drift_batch(
                obs, queries, serving,
                [r.stats.seconds for r in results])
        for name in sorted(stats.per_replica_queries):
            self._after_telemetry(obs, name)

    def _record_drift_batch(
        self, obs: Observability, queries: list[Query],
        serving: list[str], measured: list[float],
    ) -> None:
        """The batch form of :meth:`_record_drift`: group queries by
        serving replica and predict each group's Eq. 7 costs in one
        vectorized pass."""
        by_name: dict[str, list[int]] = {}
        for i, name in enumerate(serving):
            by_name.setdefault(name, []).append(i)
        for name, idxs in by_name.items():
            stored = self._replicas.get(name)
            if stored is None:
                continue
            try:
                costs = self._cost_model.query_costs(
                    [queries[i] for i in idxs],
                    stored.profile(n_records=len(self._dataset)))
            except KeyError:
                continue  # no calibrated params for this encoding
            for j, i in enumerate(idxs):
                obs.drift.record(name, float(costs[j]), measured[i])

    def _next_fallback(
        self, plan: RoutingPlan, i: int, tried: set[str], opts: ExecOptions
    ) -> str | None:
        """The next untried replica in query ``i``'s cost ranking, or
        None when failover is disabled or the ranking is exhausted."""
        if not opts.failover:
            return None
        for name in plan.ranking_for(i):
            if name not in tried:
                return name
        return None

    def _finish_exhausted(
        self,
        plan: RoutingPlan,
        i: int,
        q: Query,
        opts: ExecOptions,
        acct: _Accounting,
        attempts: list[tuple[str, Exception]],
        rec=NULL_RECORDER,
        root=None,
    ) -> QueryResult:
        """Last resort for a query that failed on every replica: the
        repair path, else a structured :class:`DegradedReadError`."""
        result = self._repair_and_rescan(q, opts, acct, attempts,
                                         rec=rec, root=root)
        if result is not None:
            return result
        raise DegradedReadError(
            f"workload query {i} could not be served by any replica",
            tuple(attempts))


def open_store(
    dataset,
    replicas: tuple = (),
    *,
    cost_model: CostModel | None = None,
    cache_bytes: int | None = None,
    fault_injector: FaultInjector | None = None,
    observability: Observability | None = None,
) -> BlotStore:
    """Build a :class:`BlotStore` and register replicas in one call —
    the stable entry point examples and applications should use.

    ``dataset`` is either an in-memory :class:`~repro.data.Dataset` or a
    :class:`~repro.storage.config.StoreConfig` — the picklable handle a
    ``spawn``-started worker rehydrates a store from.  With a config, no
    other argument may be passed (the config *is* the full recipe: it
    carries the dataset path, replica manifests, cost constants, cache
    budget, fault schedule and observability flag).

    With a :class:`~repro.data.Dataset`, each item of ``replicas`` is
    either an already-built
    :class:`~repro.storage.replica.StoredReplica` (e.g. reopened from a
    manifest) or a ``(scheme, encoding, store)`` /
    ``(scheme, encoding, store, name)`` tuple to build fresh.
    """
    from repro.storage.config import StoreConfig, hydrate_store

    if isinstance(dataset, StoreConfig):
        if (replicas or cost_model is not None or cache_bytes is not None
                or fault_injector is not None or observability is not None):
            raise TypeError(
                "open_store(StoreConfig) takes no other arguments — the "
                "config already carries the full store recipe"
            )
        return hydrate_store(dataset)
    blot = BlotStore(dataset, cost_model=cost_model, cache_bytes=cache_bytes,
                     fault_injector=fault_injector, observability=observability)
    for spec in replicas:
        if isinstance(spec, StoredReplica):
            blot.register_replica(spec)
            continue
        if not isinstance(spec, (tuple, list)) or not 3 <= len(spec) <= 4:
            raise TypeError(
                "each replica must be a StoredReplica or a "
                "(scheme, encoding, store[, name]) tuple; got "
                f"{spec!r}"
            )
        scheme, encoding, store, *rest = spec
        blot.add_replica(scheme, encoding, store,
                         name=rest[0] if rest else None)
    return blot

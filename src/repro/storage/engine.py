"""The BLOT storage engine: replicas + query processing (Section II-D).

``BlotStore`` manages the diverse replicas of one dataset and processes
range queries by the paper's three-step mechanism: find involved
partitions via the partitioning index, read + decode each one, filter the
records by the query range.  When several replicas exist and a
:class:`~repro.costmodel.CostModel` is configured, each query is routed
to the replica with the lowest estimated cost (Figure 2's "replica
selection at query time").
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.costmodel.model import CostModel
from repro.data.dataset import Dataset
from repro.encoding.base import EncodingScheme
from repro.geometry import Box3
from repro.partition.base import PartitioningScheme
from repro.storage.replica import StoredReplica, build_replica
from repro.storage.unit import UnitStore
from repro.workload.query import Query


@dataclass(frozen=True, slots=True)
class QueryStats:
    """Execution accounting for one range query.

    ``scanned_fraction`` is the paper's ``S`` (Figure 2): the share of the
    dataset's records that had to be scanned.
    """

    replica_name: str
    partitions_involved: int
    records_scanned: int
    records_returned: int
    bytes_read: int
    seconds: float
    total_records: int

    @property
    def scanned_fraction(self) -> float:
        if self.total_records == 0:
            return 0.0
        return self.records_scanned / self.total_records


@dataclass(frozen=True, slots=True)
class QueryResult:
    """Records matching the query plus execution statistics."""

    records: Dataset
    stats: QueryStats


class ReplicaExists(ValueError):
    """Raised when adding a replica under a name already in use."""


class BlotStore:
    """A single-node BLOT system instance over one logical dataset."""

    def __init__(self, dataset: Dataset, cost_model: CostModel | None = None):
        if len(dataset) == 0:
            raise ValueError("BlotStore needs a non-empty dataset")
        self._dataset = dataset
        self._universe = dataset.bounding_box()
        self._replicas: dict[str, StoredReplica] = {}
        self._cost_model = cost_model

    # -- replica management -------------------------------------------------

    @property
    def dataset(self) -> Dataset:
        return self._dataset

    @property
    def universe(self) -> Box3:
        return self._universe

    def replica_names(self) -> list[str]:
        return list(self._replicas)

    def replica(self, name: str) -> StoredReplica:
        try:
            return self._replicas[name]
        except KeyError:
            raise KeyError(f"no replica named {name!r}; have {list(self._replicas)}") from None

    def add_replica(
        self,
        scheme: PartitioningScheme,
        encoding: EncodingScheme,
        store: UnitStore,
        name: str | None = None,
    ) -> StoredReplica:
        """Build and register a diverse replica of the dataset."""
        replica = build_replica(
            self._dataset, scheme, encoding, store, name=name, universe=self._universe
        )
        return self.register_replica(replica)

    def register_replica(self, replica: StoredReplica) -> StoredReplica:
        """Register an already-built replica (e.g. a mixed-encoding one
        from :func:`repro.storage.build_mixed_replica`, or a replica
        reopened from a manifest)."""
        if replica.name in self._replicas:
            raise ReplicaExists(f"replica {replica.name!r} already exists")
        self._replicas[replica.name] = replica
        return replica

    def total_storage_bytes(self) -> int:
        """``Storage(R)`` over all registered replicas (Definition 5)."""
        return sum(r.storage_bytes() for r in self._replicas.values())

    # -- query processing ------------------------------------------------------

    def route(self, query: Query) -> str:
        """Pick the replica with the lowest estimated cost for ``query``.

        Requires a cost model when more than one replica exists; with a
        single replica routing is trivial.
        """
        if not self._replicas:
            raise ValueError("no replicas registered")
        names = list(self._replicas)
        if len(names) == 1:
            return names[0]
        if self._cost_model is None:
            raise ValueError(
                "multiple replicas but no cost model configured; "
                "pass replica= to query() or construct BlotStore with a cost model"
            )
        n = len(self._dataset)
        best_name, best_cost = None, float("inf")
        for name, replica in self._replicas.items():
            cost = self._cost_model.query_cost(query, replica.profile(n_records=n))
            if cost < best_cost:
                best_name, best_cost = name, cost
        assert best_name is not None
        return best_name

    def query(
        self,
        query: Query | Box3,
        replica: str | None = None,
        parallelism: int = 1,
    ) -> QueryResult:
        """Process a range query (Section II-D).

        ``query`` may be a positioned :class:`Query` or a raw box.  When
        ``replica`` is None the engine routes by estimated cost.
        ``parallelism`` > 1 scans involved partitions with a thread pool
        ("it is straightforward to conduct parallel query processing by
        scanning multiple partitions simultaneously"); zlib/LZMA release
        the GIL during decompression, so compressed replicas genuinely
        overlap.
        """
        q = Query.from_box(query) if isinstance(query, Box3) else query
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        name = replica or self.route(q)
        stored = self.replica(name)
        box = q.box()
        start = time.perf_counter()
        involved = stored.involved_partitions(box)

        def scan_one(pid: int) -> tuple[int, int, Dataset] | None:
            key = stored.unit_keys[pid]
            if key is None:
                return None
            blob = stored.store.get(key)
            records = stored.encoding_for(pid).decode(blob)
            return len(blob), len(records), records.filter_box(box)

        if parallelism == 1 or len(involved) <= 1:
            outcomes = [scan_one(int(pid)) for pid in involved]
        else:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=parallelism) as pool:
                outcomes = list(pool.map(scan_one, (int(p) for p in involved)))

        parts: list[Dataset] = []
        scanned = 0
        bytes_read = 0
        for outcome in outcomes:
            if outcome is None:
                continue
            nbytes, nrecords, matched = outcome
            bytes_read += nbytes
            scanned += nrecords
            parts.append(matched)
        result = Dataset.concat(parts) if parts else Dataset.empty()
        elapsed = time.perf_counter() - start
        stats = QueryStats(
            replica_name=name,
            partitions_involved=int(len(involved)),
            records_scanned=scanned,
            records_returned=len(result),
            bytes_read=bytes_read,
            seconds=elapsed,
            total_records=len(self._dataset),
        )
        return QueryResult(records=result, stats=stats)

    def count(self, query: Query | Box3, replica: str | None = None) -> tuple[int, QueryStats]:
        """Count records in a range without materializing them.

        Partitions wholly *contained* by the query range contribute their
        metadata record count with no decoding at all (their canonical
        contents are inside the box by construction); only boundary
        partitions — intersected but not contained — are decoded and
        filtered.  For large ranges this touches a tiny fraction of the
        data: the count-query analogue of the paper's sequential-scan
        argument.
        """
        q = Query.from_box(query) if isinstance(query, Box3) else query
        name = replica or self.route(q)
        stored = self.replica(name)
        box = q.box()
        start = time.perf_counter()
        involved = stored.involved_partitions(box)
        total = 0
        scanned = 0
        bytes_read = 0
        decoded_partitions = 0
        for pid in involved:
            pid = int(pid)
            key = stored.unit_keys[pid]
            if key is None:
                continue
            part_box = Box3(*stored.partitioning.box_array[pid])
            if box.contains_box(part_box):
                total += int(stored.partitioning.counts[pid])
                continue
            blob = stored.store.get(key)
            bytes_read += len(blob)
            records = stored.encoding_for(pid).decode(blob)
            scanned += len(records)
            decoded_partitions += 1
            total += records.count_in_box(box)
        elapsed = time.perf_counter() - start
        stats = QueryStats(
            replica_name=name,
            partitions_involved=decoded_partitions,
            records_scanned=scanned,
            records_returned=total,
            bytes_read=bytes_read,
            seconds=elapsed,
            total_records=len(self._dataset),
        )
        return total, stats

"""The BLOT storage engine: replicas + query processing (Section II-D).

``BlotStore`` manages the diverse replicas of one dataset and processes
range queries by the paper's three-step mechanism: find involved
partitions via the partitioning index, read + decode each one, filter the
records by the query range.  When several replicas exist and a
:class:`~repro.costmodel.CostModel` is configured, each query is routed
to the replica with the lowest estimated cost (Figure 2's "replica
selection at query time").

Two execution paths exist:

- the per-query path (:meth:`BlotStore.query` / :meth:`BlotStore.count`),
  and
- the workload path (:meth:`BlotStore.execute_workload`), which routes a
  whole workload in one vectorized pass
  (:meth:`~repro.costmodel.CostModel.route_batch`), groups the plan by
  replica and decodes each replica's involved-partition *union* once.

Both share a persistent scan thread pool and an optional byte-budgeted
:class:`~repro.storage.cache.PartitionCache` of decoded partitions, so
overlapping queries decode each hot partition once.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.costmodel.model import CostModel, RoutingPlan
from repro.data.dataset import Dataset
from repro.encoding.base import EncodingScheme
from repro.geometry import Box3
from repro.partition.base import PartitioningScheme
from repro.storage.cache import CacheStats, PartitionCache
from repro.storage.replica import StoredReplica, build_replica
from repro.storage.unit import UnitStore
from repro.workload.query import Query, Workload

import numpy as np


@dataclass(frozen=True, slots=True)
class QueryStats:
    """Execution accounting for one range query.

    ``scanned_fraction`` is the paper's ``S`` (Figure 2): the share of the
    dataset's records that had to be scanned.  ``bytes_read`` counts bytes
    actually fetched from the unit store — partitions served from the
    decoded-partition cache contribute zero.
    """

    replica_name: str
    partitions_involved: int
    records_scanned: int
    records_returned: int
    bytes_read: int
    seconds: float
    total_records: int

    @property
    def scanned_fraction(self) -> float:
        if self.total_records == 0:
            return 0.0
        return self.records_scanned / self.total_records


@dataclass(frozen=True, slots=True)
class QueryResult:
    """Records matching the query plus execution statistics."""

    records: Dataset
    stats: QueryStats


@dataclass(frozen=True, slots=True)
class WorkloadStats:
    """Aggregate accounting for one :meth:`BlotStore.execute_workload` run.

    ``bytes_read`` counts unique store fetches — a partition shared by
    several queries (or served from the cache) is charged once or not at
    all, which is the whole point of the batch path.  ``cache_hits`` /
    ``cache_misses`` are deltas over this run only; ``cache_hit_rate`` is
    0.0 when no cache is configured.
    """

    n_queries: int
    seconds: float
    bytes_read: int
    records_scanned: int
    records_returned: int
    #: Partitions fetched from the unit store and decoded (cache hits and
    #: partitions shared across queries are not re-counted).
    partitions_decoded: int
    cache_hits: int
    cache_misses: int
    per_replica_queries: dict[str, int]

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        if lookups == 0:
            return 0.0
        return self.cache_hits / lookups


@dataclass(frozen=True, slots=True)
class WorkloadResult:
    """Per-query results (workload order), the routing plan that produced
    them, and the aggregate execution statistics."""

    results: tuple[QueryResult, ...]
    plan: RoutingPlan
    stats: WorkloadStats


class ReplicaExists(ValueError):
    """Raised when adding a replica under a name already in use."""


class BlotStore:
    """A single-node BLOT system instance over one logical dataset.

    ``cache_bytes`` enables the decoded-partition LRU cache shared by
    ``query()``, ``count()`` and ``execute_workload()``; ``None`` keeps
    the seed behavior of decoding on every access.
    """

    def __init__(
        self,
        dataset: Dataset,
        cost_model: CostModel | None = None,
        cache_bytes: int | None = None,
    ):
        if len(dataset) == 0:
            raise ValueError("BlotStore needs a non-empty dataset")
        self._dataset = dataset
        self._universe = dataset.bounding_box()
        self._replicas: dict[str, StoredReplica] = {}
        self._cost_model = cost_model
        self._cache = PartitionCache(cache_bytes) if cache_bytes else None
        self._pool: ThreadPoolExecutor | None = None
        self._pool_workers = 0

    # -- replica management -------------------------------------------------

    @property
    def dataset(self) -> Dataset:
        return self._dataset

    @property
    def universe(self) -> Box3:
        return self._universe

    @property
    def partition_cache(self) -> PartitionCache | None:
        return self._cache

    def cache_stats(self) -> CacheStats | None:
        """Lifetime counters of the decoded-partition cache (None when
        no cache is configured)."""
        return self._cache.stats() if self._cache is not None else None

    def replica_names(self) -> list[str]:
        return list(self._replicas)

    def replica(self, name: str) -> StoredReplica:
        try:
            return self._replicas[name]
        except KeyError:
            raise KeyError(f"no replica named {name!r}; have {list(self._replicas)}") from None

    def add_replica(
        self,
        scheme: PartitioningScheme,
        encoding: EncodingScheme,
        store: UnitStore,
        name: str | None = None,
    ) -> StoredReplica:
        """Build and register a diverse replica of the dataset."""
        replica = build_replica(
            self._dataset, scheme, encoding, store, name=name, universe=self._universe
        )
        return self.register_replica(replica)

    def register_replica(self, replica: StoredReplica) -> StoredReplica:
        """Register an already-built replica (e.g. a mixed-encoding one
        from :func:`repro.storage.build_mixed_replica`, or a replica
        reopened from a manifest)."""
        if replica.name in self._replicas:
            raise ReplicaExists(f"replica {replica.name!r} already exists")
        self._replicas[replica.name] = replica
        return replica

    def total_storage_bytes(self) -> int:
        """``Storage(R)`` over all registered replicas (Definition 5)."""
        return sum(r.storage_bytes() for r in self._replicas.values())

    # -- shared scan machinery ------------------------------------------------

    def close(self) -> None:
        """Shut down the persistent scan pool (idempotent).  The store
        remains usable; the pool is recreated on the next parallel scan."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_workers = 0

    def _executor(self, parallelism: int) -> ThreadPoolExecutor:
        """The lazily-created persistent scan pool, grown (never shrunk)
        to ``parallelism`` workers.  Reusing one pool avoids paying thread
        startup on every query, the seed behavior."""
        if self._pool is None or self._pool_workers < parallelism:
            if self._pool is not None:
                self._pool.shutdown(wait=False)
            self._pool = ThreadPoolExecutor(
                max_workers=parallelism, thread_name_prefix="blot-scan"
            )
            self._pool_workers = parallelism
        return self._pool

    def _fetch_decoded(
        self, stored: StoredReplica, pid: int
    ) -> tuple[Dataset, int] | None:
        """Decode one partition, through the cache when configured.

        Returns ``(records, bytes_read)`` where ``bytes_read`` is 0 on a
        cache hit, or None for empty partitions (no storage unit).
        """
        key = stored.unit_keys[pid]
        if key is None:
            return None
        if self._cache is not None:
            hit = self._cache.get((stored.name, pid))
            if hit is not None:
                return hit, 0
        blob = stored.store.get(key)
        records = stored.encoding_for(pid).decode(blob)
        if self._cache is not None:
            self._cache.put((stored.name, pid), records)
        return records, len(blob)

    def _map_partitions(self, fn, pids, parallelism: int) -> list:
        """Apply ``fn`` over partition ids, on the persistent pool when
        ``parallelism`` > 1 and there is more than one partition."""
        pids = [int(p) for p in pids]
        if parallelism == 1 or len(pids) <= 1:
            return [fn(pid) for pid in pids]
        return list(self._executor(parallelism).map(fn, pids))

    # -- query processing ------------------------------------------------------

    def route(self, query: Query) -> str:
        """Pick the replica with the lowest estimated cost for ``query``.

        Requires a cost model when more than one replica exists; with a
        single replica routing is trivial.  Equal-cost ties break
        deterministically toward the lexicographically smallest replica
        name (the same rule as
        :meth:`~repro.costmodel.CostModel.route_batch`), so routing never
        depends on replica registration order.
        """
        if not self._replicas:
            raise ValueError("no replicas registered")
        names = list(self._replicas)
        if len(names) == 1:
            return names[0]
        if self._cost_model is None:
            raise ValueError(
                "multiple replicas but no cost model configured; "
                "pass replica= to query() or construct BlotStore with a cost model"
            )
        n = len(self._dataset)
        best_name, best_cost = None, float("inf")
        for name in sorted(names):
            cost = self._cost_model.query_cost(
                query, self._replicas[name].profile(n_records=n)
            )
            if cost < best_cost:
                best_name, best_cost = name, cost
        assert best_name is not None
        return best_name

    def route_workload(self, workload: Workload) -> RoutingPlan:
        """Batch-route a whole workload in one vectorized pass.

        Computes the queries x replicas Eq. 7 cost matrix with one ``Np``
        broadcast per replica (instead of per-query Python loops) and
        returns the argmin :class:`~repro.costmodel.RoutingPlan`.  Agrees
        with per-query :meth:`route` including tie-breaking.
        """
        if not self._replicas:
            raise ValueError("no replicas registered")
        names = list(self._replicas)
        if len(names) == 1:
            m = len(workload)
            return RoutingPlan(
                replica_names=(names[0],),
                assignments=np.zeros(m, dtype=np.intp),
                costs=np.zeros((m, 1), dtype=np.float64),
            )
        if self._cost_model is None:
            raise ValueError(
                "multiple replicas but no cost model configured; "
                "cannot route a workload"
            )
        n = len(self._dataset)
        profiles = [self._replicas[name].profile(n_records=n) for name in names]
        return self._cost_model.route_batch(workload, profiles)

    def query(
        self,
        query: Query | Box3,
        replica: str | None = None,
        parallelism: int = 1,
    ) -> QueryResult:
        """Process a range query (Section II-D).

        ``query`` may be a positioned :class:`Query` or a raw box.  When
        ``replica`` is None the engine routes by estimated cost.
        ``parallelism`` > 1 scans involved partitions with the persistent
        thread pool ("it is straightforward to conduct parallel query
        processing by scanning multiple partitions simultaneously");
        zlib/LZMA release the GIL during decompression, so compressed
        replicas genuinely overlap.
        """
        q = Query.from_box(query) if isinstance(query, Box3) else query
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        name = replica or self.route(q)
        stored = self.replica(name)
        box = q.box()
        start = time.perf_counter()
        involved = stored.involved_partitions(box)

        def scan_one(pid: int) -> tuple[int, int, Dataset] | None:
            fetched = self._fetch_decoded(stored, pid)
            if fetched is None:
                return None
            records, nbytes = fetched
            return nbytes, len(records), records.filter_box(box)

        outcomes = self._map_partitions(scan_one, involved, parallelism)

        parts: list[Dataset] = []
        scanned = 0
        bytes_read = 0
        for outcome in outcomes:
            if outcome is None:
                continue
            nbytes, nrecords, matched = outcome
            bytes_read += nbytes
            scanned += nrecords
            parts.append(matched)
        result = Dataset.concat(parts) if parts else Dataset.empty()
        elapsed = time.perf_counter() - start
        stats = QueryStats(
            replica_name=name,
            partitions_involved=int(len(involved)),
            records_scanned=scanned,
            records_returned=len(result),
            bytes_read=bytes_read,
            seconds=elapsed,
            total_records=len(self._dataset),
        )
        return QueryResult(records=result, stats=stats)

    def count(
        self,
        query: Query | Box3,
        replica: str | None = None,
        parallelism: int = 1,
    ) -> tuple[int, QueryStats]:
        """Count records in a range without materializing them.

        Partitions wholly *contained* by the query range contribute their
        metadata record count with no decoding at all (their canonical
        contents are inside the box by construction); only boundary
        partitions — intersected but not contained — are decoded and
        filtered.  For large ranges this touches a tiny fraction of the
        data: the count-query analogue of the paper's sequential-scan
        argument.  ``parallelism`` > 1 decodes boundary partitions on the
        persistent thread pool, exactly like :meth:`query`.
        """
        q = Query.from_box(query) if isinstance(query, Box3) else query
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        name = replica or self.route(q)
        stored = self.replica(name)
        box = q.box()
        start = time.perf_counter()
        involved = stored.involved_partitions(box)

        contained_total = 0
        boundary: list[int] = []
        for pid in involved:
            pid = int(pid)
            if stored.unit_keys[pid] is None:
                continue
            part_box = Box3(*stored.partitioning.box_array[pid])
            if box.contains_box(part_box):
                contained_total += int(stored.partitioning.counts[pid])
            else:
                boundary.append(pid)

        def count_one(pid: int) -> tuple[int, int, int] | None:
            fetched = self._fetch_decoded(stored, pid)
            if fetched is None:
                return None
            records, nbytes = fetched
            return nbytes, len(records), records.count_in_box(box)

        outcomes = self._map_partitions(count_one, boundary, parallelism)

        total = contained_total
        scanned = 0
        bytes_read = 0
        decoded_partitions = 0
        for outcome in outcomes:
            if outcome is None:
                continue
            nbytes, nrecords, matched = outcome
            bytes_read += nbytes
            scanned += nrecords
            decoded_partitions += 1
            total += matched
        elapsed = time.perf_counter() - start
        stats = QueryStats(
            replica_name=name,
            partitions_involved=decoded_partitions,
            records_scanned=scanned,
            records_returned=total,
            bytes_read=bytes_read,
            seconds=elapsed,
            total_records=len(self._dataset),
        )
        return total, stats

    # -- workload execution ----------------------------------------------------

    def execute_workload(
        self,
        workload: Workload,
        parallelism: int = 1,
        plan: RoutingPlan | None = None,
    ) -> WorkloadResult:
        """Execute a whole workload of positioned queries in one batch.

        The workload is routed with :meth:`route_workload` (unless a
        ``plan`` is supplied), grouped by chosen replica, and each
        replica's involved-partition *union* is decoded exactly once —
        on the persistent thread pool when ``parallelism`` > 1 — before
        the per-query filters run against the decoded partitions.  A
        query's records therefore match sequential
        ``query(q, replica=...)`` exactly, record order included, while
        partitions shared by overlapping queries are fetched and decoded
        once instead of once per query.

        Per-query ``bytes_read`` charges each store fetch to the first
        query that needed the partition; ``WorkloadStats.bytes_read``
        totals the unique fetches.
        """
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        queries: list[Query] = []
        for i, (q, _) in enumerate(workload):
            if not isinstance(q, Query):
                raise ValueError(
                    f"execute_workload needs positioned queries; entry {i} is a "
                    f"grouped query {q!r} (position it with .at())"
                )
            queries.append(q)
        if plan is None:
            plan = self.route_workload(workload)
        elif plan.n_queries != len(workload):
            raise ValueError(
                f"plan covers {plan.n_queries} queries, workload has {len(workload)}"
            )
        assigned = plan.assigned_names()
        cache_before = self._cache.stats() if self._cache is not None else None

        start = time.perf_counter()
        total_records = len(self._dataset)
        results: list[QueryResult | None] = [None] * len(queries)
        total_bytes = 0
        total_decoded = 0

        by_replica: dict[str, list[int]] = {}
        for i, name in enumerate(assigned):
            by_replica.setdefault(name, []).append(i)

        for name, idxs in by_replica.items():
            stored = self.replica(name)
            boxes = {i: queries[i].box() for i in idxs}
            involved = {i: stored.involved_partitions(boxes[i]) for i in idxs}
            union: list[int] = sorted(
                {int(pid) for pids in involved.values() for pid in pids}
            )

            def fetch_one(pid: int):
                return self._fetch_decoded(stored, pid)

            fetched = self._map_partitions(fetch_one, union, parallelism)
            decoded: dict[int, Dataset] = {}
            read_bytes: dict[int, int] = {}
            for pid, outcome in zip(union, fetched):
                if outcome is None:
                    continue
                records, nbytes = outcome
                decoded[pid] = records
                read_bytes[pid] = nbytes
                total_bytes += nbytes
                if nbytes > 0:
                    total_decoded += 1

            charged: set[int] = set()
            for i in idxs:
                q_start = time.perf_counter()
                box = boxes[i]
                parts: list[Dataset] = []
                scanned = 0
                q_bytes = 0
                for pid in involved[i]:
                    pid = int(pid)
                    records = decoded.get(pid)
                    if records is None:
                        continue
                    scanned += len(records)
                    if pid not in charged:
                        charged.add(pid)
                        q_bytes += read_bytes[pid]
                    parts.append(records.filter_box(box))
                result = Dataset.concat(parts) if parts else Dataset.empty()
                stats = QueryStats(
                    replica_name=name,
                    partitions_involved=int(len(involved[i])),
                    records_scanned=scanned,
                    records_returned=len(result),
                    bytes_read=q_bytes,
                    seconds=time.perf_counter() - q_start,
                    total_records=total_records,
                )
                results[i] = QueryResult(records=result, stats=stats)

        elapsed = time.perf_counter() - start
        final = [r for r in results if r is not None]
        assert len(final) == len(queries)
        if self._cache is not None and cache_before is not None:
            after = self._cache.stats()
            hits = after.hits - cache_before.hits
            misses = after.misses - cache_before.misses
        else:
            hits = misses = 0
        stats = WorkloadStats(
            n_queries=len(queries),
            seconds=elapsed,
            bytes_read=total_bytes,
            records_scanned=sum(r.stats.records_scanned for r in final),
            records_returned=sum(r.stats.records_returned for r in final),
            partitions_decoded=total_decoded,
            cache_hits=hits,
            cache_misses=misses,
            per_replica_queries=plan.query_counts(),
        )
        return WorkloadResult(results=tuple(final), plan=plan, stats=stats)

"""Command-line interface for the BLOT reproduction.

Usage (after ``pip install -e .``)::

    python -m repro info
    python -m repro generate --records 50000 --out taxis.csv
    python -m repro ratios --records 20000
    python -m repro calibrate --environment local-hadoop
    python -m repro advise --records-target 65e6 --budget-copies 3 --method exact
    python -m repro query --input taxis.csv --frac 0.1 --encoding COL-GZIP
    python -m repro run-workload --queries 500 --replicas 3
    python -m repro drill --fail-replica kd16t4/COL-SNAPPY
    python -m repro stats --queries 200 --json
    python -m repro verify-store --store units/ --manifest kd.json --manifest grid.json

Every subcommand is deterministic given ``--seed``.  Shared argument
groups (``--seed``, the ``--input/--records/--header`` data source, the
workload shape, the fault schedule) are defined once as argparse parent
parsers, so every subcommand spells them identically.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_info(args: argparse.Namespace) -> int:
    import repro
    from repro.cluster import ENVIRONMENTS
    from repro.encoding import paper_encoding_schemes
    from repro.partition import paper_partitioning_schemes

    print(f"repro {repro.__version__} — BLOT diverse replicas (ICDCS 2014)")
    print(f"environments: {', '.join(sorted(ENVIRONMENTS))}")
    print(f"encodings ({len(paper_encoding_schemes())}): "
          + ", ".join(s.name for s in paper_encoding_schemes()))
    schemes = paper_partitioning_schemes()
    print(f"paper partitioning grid: {len(schemes)} schemes "
          f"({schemes[0].name} .. {schemes[-1].name})")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.data import dataset_to_csv, synthetic_shanghai_taxis

    data = synthetic_shanghai_taxis(args.records, seed=args.seed,
                                    num_taxis=args.taxis)
    dataset_to_csv(data, args.out, header=args.header)
    bb = data.bounding_box()
    print(f"wrote {len(data):,} records to {args.out}")
    print(f"bbox lon [{bb.x_min:.4f}, {bb.x_max:.4f}] "
          f"lat [{bb.y_min:.4f}, {bb.y_max:.4f}] "
          f"time [{bb.t_min:.0f}, {bb.t_max:.0f}]")
    return 0


def _load_or_generate(args: argparse.Namespace):
    from repro.data import dataset_from_csv, synthetic_shanghai_taxis

    if getattr(args, "input", None):
        return dataset_from_csv(args.input, header=args.header)
    return synthetic_shanghai_taxis(args.records, seed=args.seed)


def _cmd_ratios(args: argparse.Namespace) -> int:
    from repro.encoding import all_encoding_schemes, measure_compression_ratio

    sample = _load_or_generate(args).sorted_by_time()
    print(f"compression ratios vs uncompressed row binary "
          f"({len(sample):,} records):")
    for scheme in all_encoding_schemes():
        ratio = measure_compression_ratio(scheme, sample)
        print(f"  {scheme.name:11s} {ratio:6.3f}")
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.cluster import calibrate_environment, make_cluster
    from repro.encoding import paper_encoding_schemes

    cluster = make_cluster(args.environment, seed=args.seed)
    names = args.encodings or [s.name for s in paper_encoding_schemes()]
    fits = calibrate_environment(cluster, names)
    print(f"[{args.environment}] fitted Eq. 6 parameters:")
    print(f"  {'encoding':11s} {'us/record':>10s} {'ExtraTime s':>12s} {'R^2':>7s}")
    for name in names:
        fit = fits[name]
        print(f"  {name:11s} {1e6 / fit.params.scan_rate:10.2f} "
              f"{fit.params.extra_time:12.2f} {fit.r_squared:7.4f}")
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    from repro.cluster import cost_model_for, make_cluster
    from repro.core import AdvisorConfig, ReplicaAdvisor
    from repro.encoding import paper_encoding_schemes
    from repro.partition import paper_partitioning_schemes, small_partitioning_schemes
    from repro.workload import paper_workload

    sample = _load_or_generate(args)
    cluster = make_cluster(args.environment, seed=args.seed)
    encodings = paper_encoding_schemes()
    model = cost_model_for(cluster, [s.name for s in encodings])
    schemes = (paper_partitioning_schemes() if args.full_grid
               else small_partitioning_schemes((4, 16, 64, 256), (4, 16, 64)))
    advisor = ReplicaAdvisor(
        sample, schemes, encodings, model,
        AdvisorConfig(n_records=args.records_target),
    )
    workload = paper_workload(advisor.universe)
    budget = advisor.single_replica_budget(workload, copies=args.budget_copies)
    report = advisor.recommend(workload, budget, method=args.method)
    print(f"candidates: {len(advisor.candidates)}  "
          f"budget: {budget / 1e9:.2f} GB "
          f"({args.budget_copies} copies of {report.single_name})")
    print(f"selected ({report.selection.solver}):")
    for name in report.replica_names:
        print(f"  {name}")
    print(f"workload cost: {report.cost:.1f}s | single replica: "
          f"{report.single_cost:.1f}s | ideal: {report.ideal_cost:.1f}s")
    print(f"speedup vs single: {report.speedup_vs_single:.2f}x | "
          f"approximation ratio: {report.approximation_ratio:.3f}")
    print("routing:")
    for label, replica in report.assignment.items():
        print(f"  {label} -> {replica}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.encoding import encoding_scheme_by_name
    from repro.partition import CompositeScheme, KdTreePartitioner
    from repro.storage import BlotStore, ExecOptions, InMemoryStore
    from repro.workload import Query

    data = _load_or_generate(args)
    store = BlotStore(data)
    store.add_replica(
        CompositeScheme(KdTreePartitioner(args.spatial_leaves), args.time_slices),
        encoding_scheme_by_name(args.encoding),
        InMemoryStore(),
    )
    bb = data.bounding_box()
    c = bb.centroid
    q = Query(bb.width * args.frac, bb.height * args.frac,
              bb.duration * args.frac, c.x, c.y, c.t)
    result = store.query(q, options=ExecOptions(parallelism=args.parallelism))
    s = result.stats
    print(f"replica {s.replica_name}: {s.records_returned:,} of "
          f"{s.total_records:,} records returned")
    print(f"scanned {s.records_scanned:,} records "
          f"({s.scanned_fraction:.1%}) across {s.partitions_involved} "
          f"partitions, {s.bytes_read / 1e6:.2f} MB read, {s.seconds * 1e3:.1f} ms")
    return 0


#: (kd-tree leaves, time slices, encoding) per replica built by
#: ``run-workload``, diverse in both granularity and codec so routing has
#: genuinely different options to choose from.
_WORKLOAD_REPLICA_SPECS: tuple[tuple[int, int, str], ...] = (
    (4, 2, "ROW-PLAIN"),
    (16, 4, "COL-SNAPPY"),
    (64, 8, "COL-GZIP"),
    (256, 8, "COL-LZMA2"),
    (16, 16, "ROW-SNAPPY"),
    (64, 2, "ROW-GZIP"),
)


def _build_workload_store(args: argparse.Namespace, observability=None,
                          quiet: bool = False):
    """Build the diverse-replica store shared by ``run-workload``,
    ``drill`` and ``stats``: ``args.replicas`` kd-tree/time-slice
    combinations over one dataset, with an optional decoded-partition
    cache and (when more than one replica exists) a calibrated cost
    model for routing.  ``observability`` attaches a telemetry bundle;
    ``quiet`` suppresses the banner (machine-readable output modes).

    Returns ``(store, 0)`` or ``(None, exit_code)`` on bad arguments.
    """
    from repro.cluster import cost_model_for, make_cluster
    from repro.encoding import encoding_scheme_by_name
    from repro.partition import CompositeScheme, KdTreePartitioner
    from repro.storage import BlotStore, InMemoryStore

    if not 1 <= args.replicas <= len(_WORKLOAD_REPLICA_SPECS):
        print(f"--replicas must be 1..{len(_WORKLOAD_REPLICA_SPECS)}",
              file=sys.stderr)
        return None, 2
    if args.queries < 1:
        print("--queries must be >= 1", file=sys.stderr)
        return None, 2
    data = _load_or_generate(args)
    specs = _WORKLOAD_REPLICA_SPECS[:args.replicas]
    model = None
    if args.replicas > 1:
        cluster = make_cluster(args.environment, seed=args.seed)
        model = cost_model_for(cluster, sorted({enc for _, _, enc in specs}))
    cache_bytes = int(args.cache_mb * 1e6) if args.cache_mb > 0 else None
    store = BlotStore(data, cost_model=model, cache_bytes=cache_bytes,
                      observability=observability)
    for leaves, slices, enc in specs:
        store.add_replica(
            CompositeScheme(KdTreePartitioner(leaves), slices),
            encoding_scheme_by_name(enc), InMemoryStore(),
        )
    if not quiet:
        print(f"{len(data):,} records, {args.replicas} replicas: "
              + ", ".join(store.replica_names()))
    return store, 0


def _make_injector(args: argparse.Namespace, store):
    """A :class:`FaultInjector` per the shared fault arguments, or an
    error exit code when a ``--fail-replica`` names an unknown replica."""
    from repro.storage import FaultInjector

    injector = FaultInjector(
        seed=args.fault_seed,
        partition_fail_rate=args.fault_rate,
        slow_seconds=args.slow_ms / 1e3,
    )
    for name in args.fail_replica or []:
        if name not in store.replica_names():
            print(f"--fail-replica: no replica named {name!r}; have "
                  + ", ".join(store.replica_names()), file=sys.stderr)
            return None, 2
        injector.fail_replica(name)
    return injector, 0


def _exec_options(args: argparse.Namespace, trace: bool | None = None):
    from repro.storage import ExecOptions

    if trace is None:
        trace = bool(getattr(args, "trace", False))
    return ExecOptions(parallelism=args.parallelism,
                       retries=getattr(args, "retries", 2),
                       trace=trace)


def _print_workload_pass(label: str, s, cache_enabled: bool) -> None:
    print(f"[{label}] {s.n_queries} queries in {s.seconds * 1e3:.1f} ms "
          f"({s.n_queries / s.seconds:,.0f} q/s)")
    print(f"  read {s.bytes_read / 1e6:.2f} MB across "
          f"{s.partitions_decoded} partition decodes, scanned "
          f"{s.records_scanned:,} records, returned {s.records_returned:,}")
    if cache_enabled:
        print(f"  cache hit rate {s.cache_hit_rate:.1%} "
              f"({s.cache_hits} hits / {s.cache_misses} misses)")
    routed = ", ".join(f"{name}={count}" for name, count in
                       sorted(s.per_replica_queries.items()))
    print(f"  routing: {routed}")
    if s.degraded:
        failed = ", ".join(s.failed_replicas) or "none"
        print(f"  degraded: {s.failovers} failovers, {s.retries} retries, "
              f"{s.repairs} repairs; failed replicas: {failed}; "
              f"est. extra cost {s.degraded_cost_delta:+.2f}s")


def _print_telemetry(obs) -> None:
    """The human-readable telemetry block shared by ``stats``,
    ``run-workload --trace`` and ``drill``."""
    m = obs.metrics
    print("telemetry:")
    hits = m.counter_value("repro_cache_hits_total")
    misses = m.counter_value("repro_cache_misses_total")
    lookups = hits + misses
    if lookups:
        print(f"  cache: {hits:.0f} of {lookups:.0f} lookups hit "
              f"({hits / lookups:.1%})")
    print(f"  degradation: {m.counter_value('repro_retries_total'):.0f} "
          f"retries, {m.counter_value('repro_failovers_total'):.0f} "
          f"failovers, {m.counter_value('repro_repairs_total'):.0f} repairs")
    counts = obs.tracer.span_counts()
    if counts:
        spans = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        print(f"  trace: {obs.tracer.recorded} spans ({spans})")
    for st in obs.drift.statuses():
        verdict = "DRIFTING — recalibrate" if st.flagged else "ok"
        print(f"  drift[{st.replica_name}]: {st.samples} samples, "
              f"mean rel. error {st.mean_relative_error:.2f}, "
              f"measured/predicted x{st.scale_factor:.2f} ({verdict})")


def _cmd_run_workload(args: argparse.Namespace) -> int:
    from repro.obs import Observability
    from repro.storage import DegradedReadError
    from repro.workload import positioned_random_workload

    if args.repeat < 1:
        print("--repeat must be >= 1", file=sys.stderr)
        return 2
    obs = Observability.create() if args.trace else None
    store, err = _build_workload_store(args, observability=obs)
    if store is None:
        return err
    if args.inject_faults:
        injector, err = _make_injector(args, store)
        if injector is None:
            return err
        store.set_fault_injector(injector)

    rng = np.random.default_rng(args.seed)
    workload = positioned_random_workload(
        store.dataset.bounding_box(), args.queries, rng,
        max_fraction=args.max_frac)
    opts = _exec_options(args)
    cache_enabled = store.partition_cache is not None
    for pass_no in range(1, args.repeat + 1):
        label = f"pass {pass_no}/{args.repeat}" if args.repeat > 1 else "workload"
        try:
            result = store.execute_workload(workload, options=opts)
        except DegradedReadError as exc:
            print(f"[{label}] degraded beyond recovery: {exc}", file=sys.stderr)
            store.close()
            return 1
        _print_workload_pass(label, result.stats, cache_enabled)
    if obs is not None:
        _print_telemetry(obs)
        if args.trace_out:
            obs.tracer.dump_jsonl(args.trace_out)
            print(f"wrote {len(obs.tracer.spans())} spans to {args.trace_out}")
    store.close()
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """Run a workload with full telemetry and report the engine's
    metrics, trace summary and cost-model drift — as text, JSON
    (``--json``) or Prometheus exposition text (``--prom``)."""
    import json

    from repro.obs import Observability
    from repro.storage import DegradedReadError
    from repro.workload import positioned_random_workload

    if args.repeat < 1:
        print("--repeat must be >= 1", file=sys.stderr)
        return 2
    machine = args.json or args.prom
    obs = Observability.create(drift_threshold=args.drift_threshold)
    store, err = _build_workload_store(args, observability=obs, quiet=machine)
    if store is None:
        return err
    if args.inject_faults:
        injector, err = _make_injector(args, store)
        if injector is None:
            return err
        store.set_fault_injector(injector)
    rng = np.random.default_rng(args.seed)
    workload = positioned_random_workload(
        store.dataset.bounding_box(), args.queries, rng,
        max_fraction=args.max_frac)
    opts = _exec_options(args, trace=True)
    try:
        for _ in range(args.repeat):
            result = store.execute_workload(workload, options=opts)
    except DegradedReadError as exc:
        print(f"degraded beyond recovery: {exc}", file=sys.stderr)
        store.close()
        return 1
    store.close()
    if args.prom:
        print(obs.metrics.render_prometheus(), end="")
        return 0
    if args.json:
        print(json.dumps(obs.snapshot(), indent=2, sort_keys=True))
        return 0
    _print_workload_pass("workload", result.stats,
                         store.partition_cache is not None)
    _print_telemetry(obs)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Run a seeded workload under full telemetry and render the
    operational report — optionally persisting history to an on-disk
    timeseries store (``--timeseries``), deliberately staling the
    routing model (``--stale-factor``), and letting the closed loop
    heal it (``--recalibrate``)."""
    import json

    from repro.obs import Observability, TimeseriesStore, build_report
    from repro.obs.report import render_report_text
    from repro.storage import DegradedReadError
    from repro.workload import positioned_random_workload

    if args.repeat < 1:
        print("--repeat must be >= 1", file=sys.stderr)
        return 2
    if args.dry_run and not args.recalibrate:
        print("--dry-run requires --recalibrate", file=sys.stderr)
        return 2
    obs = Observability.create(drift_threshold=args.drift_threshold)
    store, err = _build_workload_store(args, observability=obs,
                                       quiet=args.json)
    if store is None:
        return err
    if args.inject_faults:
        injector, err = _make_injector(args, store)
        if injector is None:
            return err
        store.set_fault_injector(injector)

    model = store.cost_model
    if (args.stale_factor != 1.0 or args.recalibrate) and model is None:
        print("--stale-factor/--recalibrate need a routing cost model; "
              "use --replicas >= 2", file=sys.stderr)
        store.close()
        return 2
    if args.stale_factor != 1.0:
        # Deliberately mis-calibrate the live model in place (the
        # drift-detection / self-healing demonstration).
        from repro.costmodel import EncodingCostParams

        if args.stale_factor <= 0:
            print("--stale-factor must be positive", file=sys.stderr)
            store.close()
            return 2
        for enc in model.encoding_names:
            p = model.params_for(enc)
            model.update_params(enc, EncodingCostParams(
                scan_rate=p.scan_rate * args.stale_factor,
                extra_time=p.extra_time))

    ts = None
    if args.timeseries:
        ts = TimeseriesStore(args.timeseries, retention=args.retention,
                             rollup_every=args.rollup_every)
        obs.attach_checkpointer(ts, interval_seconds=5.0)
        obs.maybe_checkpoint(force=True)  # the "before" point of trends
    rec = None
    if args.recalibrate:
        # The CLI routes on simulated-cluster constants but measures
        # local in-process scans, so the honest correction can be
        # orders of magnitude: no step clamp here.
        rec = obs.attach_recalibrator(
            model, min_samples=args.min_samples, max_step_factor=None,
            dry_run=args.dry_run, timeseries=ts)

    rng = np.random.default_rng(args.seed)
    workload = positioned_random_workload(
        store.dataset.bounding_box(), args.queries, rng,
        max_fraction=args.max_frac)
    opts = _exec_options(args, trace=True)
    try:
        for _ in range(args.repeat):
            store.execute_workload(workload, options=opts)
    except DegradedReadError as exc:
        print(f"degraded beyond recovery: {exc}", file=sys.stderr)
        store.close()
        return 1
    store.close()
    if ts is not None:
        obs.maybe_checkpoint(force=True)  # the "after" point

    report = build_report(obs, timeseries=ts, recalibrator=rec)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_report_text(report))
    return 0


def _cmd_drill(args: argparse.Namespace) -> int:
    """Failure drill: run a workload healthy, impose a failure schedule,
    run it again, and report the degradation (failovers, retries,
    repairs, extra estimated cost) plus a result-integrity check."""
    from repro.obs import Observability
    from repro.storage import DegradedReadError
    from repro.workload import positioned_random_workload

    obs = Observability.create()
    store, err = _build_workload_store(args, observability=obs)
    if store is None:
        return err
    rng = np.random.default_rng(args.seed)
    workload = positioned_random_workload(
        store.dataset.bounding_box(), args.queries, rng,
        max_fraction=args.max_frac)
    opts = _exec_options(args, trace=True)
    cache_enabled = store.partition_cache is not None

    healthy = store.execute_workload(workload, options=opts)
    _print_workload_pass("healthy", healthy.stats, cache_enabled)

    injector, err = _make_injector(args, store)
    if injector is None:
        store.close()
        return err
    if not args.fail_replica and args.fault_rate == 0 and args.slow_ms == 0:
        # No schedule given: take down the replica the healthy routing
        # leaned on hardest — the most informative single-node drill.
        victim = max(healthy.stats.per_replica_queries.items(),
                     key=lambda kv: (kv[1], kv[0]))[0]
        injector.fail_replica(victim)
        print(f"no failure schedule given; failing busiest replica {victim!r}")
    store.set_fault_injector(injector)
    if store.partition_cache is not None:
        # A drill measures the degraded read path, not yesterday's cache.
        store.partition_cache.clear()

    try:
        degraded = store.execute_workload(workload, options=opts)
    except DegradedReadError as exc:
        print("drill FAILED: workload cannot be served under this schedule",
              file=sys.stderr)
        print(f"  {exc}", file=sys.stderr)
        store.close()
        return 1
    _print_workload_pass("degraded", degraded.stats, cache_enabled)

    per_query_ok = all(
        h.stats.records_returned == d.stats.records_returned
        for h, d in zip(healthy.results, degraded.results)
    )
    hs, ds = healthy.stats, degraded.stats
    print("degradation report:")
    print(f"  results identical: {'yes' if per_query_ok else 'NO'} "
          f"({ds.records_returned:,} records, healthy {hs.records_returned:,})")
    print(f"  failovers: {ds.failovers}  retries: {ds.retries}  "
          f"repairs: {ds.repairs}")
    print(f"  failed replicas: {', '.join(ds.failed_replicas) or 'none'}")
    print(f"  est. extra cost vs healthy plan: {ds.degraded_cost_delta:+.2f}s")
    print(f"  wall clock: healthy {hs.seconds * 1e3:.1f} ms -> "
          f"degraded {ds.seconds * 1e3:.1f} ms")
    if injector.stats().faults_injected:
        fstats = injector.stats()
        print(f"  injector: {fstats.faults_injected} faults over "
              f"{fstats.reads_checked} read checks")
    _print_telemetry(obs)
    store.close()
    return 0 if per_query_ok else 1


def _cmd_reselect(args: argparse.Namespace) -> int:
    """Workload-drift reselection drill: deploy the Eq. 1-5 selection
    for a wide-scan baseline workload, serve a deliberately drifted
    hot-spot workload, and let the attached controller detect the
    drift, re-solve warm from the incumbent, and swap the serving set
    online — verifying bit-equal reads across the transition."""
    import json

    from repro.core import (
        AdvisorConfig,
        ReplicaAdvisor,
        ReselectionConfig,
        ReselectionController,
        replica_builder,
    )
    from repro.costmodel import CostModel, EncodingCostParams
    from repro.encoding import encoding_scheme_by_name
    from repro.obs import Observability, TimeseriesStore, build_report
    from repro.obs.report import render_report_text
    from repro.partition import small_partitioning_schemes
    from repro.storage import BlotStore
    from repro.workload import GroupedQuery, Query, Workload

    if args.budget_copies < 1:
        print("--budget-copies must be >= 1", file=sys.stderr)
        return 2
    if args.min_queries < 1:
        print("--min-queries must be >= 1", file=sys.stderr)
        return 2
    if not 0.0 < args.drift_threshold <= 1.0:
        print("--drift-threshold must be in (0, 1]", file=sys.stderr)
        return 2
    if args.min_improvement < 0.0:
        print("--min-improvement must be >= 0", file=sys.stderr)
        return 2

    data = _load_or_generate(args)
    bb = data.bounding_box()
    rng = np.random.default_rng(args.seed)

    encodings = [encoding_scheme_by_name(n)
                 for n in ("ROW-PLAIN", "COL-GZIP")]
    schemes = small_partitioning_schemes((4, 16, 64), (2, 4))
    # A scan-bound cost regime (low per-partition overhead): wide scans
    # favor coarse row-plain replicas, hot-spot probes favor fine
    # compressed ones — so a workload shift genuinely moves the Eq. 5
    # optimum, which is the point of the drill.
    model = CostModel({
        "ROW-PLAIN": EncodingCostParams(scan_rate=250_000,
                                        extra_time=0.004),
        "COL-GZIP": EncodingCostParams(scan_rate=100_000,
                                       extra_time=0.001),
    })
    advisor = ReplicaAdvisor(data, schemes, encodings, model,
                             AdvisorConfig(n_records=len(data)))
    baseline = Workload([
        (GroupedQuery(bb.width * 0.6, bb.height * 0.6, bb.duration * 0.6),
         0.9),
        (GroupedQuery(bb.width * 0.2, bb.height * 0.2, bb.duration * 0.2),
         0.1),
    ])
    budget = advisor.single_replica_budget(baseline,
                                           copies=args.budget_copies)
    initial = advisor.recommend(baseline, budget, method="local-search")
    build = replica_builder(data, schemes, encodings,
                            universe=advisor.universe)

    obs = Observability.create()
    cache_bytes = int(args.cache_mb * 1e6) if args.cache_mb > 0 else None
    store = BlotStore(data, cost_model=model, cache_bytes=cache_bytes,
                      observability=obs)
    for name in initial.replica_names:
        store.register_replica(build(name))
    incumbent = list(store.replica_names())

    ts = None
    if args.timeseries:
        ts = TimeseriesStore(args.timeseries)
    controller = obs.attach_reselector(ReselectionController(
        store, advisor, budget, baseline,
        build=build,
        config=ReselectionConfig(
            drift_threshold=args.drift_threshold,
            min_queries=args.min_queries,
            min_improvement=args.min_improvement,
        ),
        obs=obs, timeseries=ts, rng=np.random.default_rng(args.seed),
    ))

    def positioned(frac: float, center=None) -> Query:
        w, h, t = bb.width * frac, bb.height * frac, bb.duration * frac
        if center is None:
            return Query(
                w, h, t,
                rng.uniform(bb.x_min + w / 2, bb.x_max - w / 2),
                rng.uniform(bb.y_min + h / 2, bb.y_max - h / 2),
                rng.uniform(bb.t_min + t / 2, bb.t_max - t / 2))
        return Query(w, h, t, *center)

    # Fixed probes re-run across the transition: results must stay
    # bit-equal to the brute-force oracle at every point.
    probes = [positioned(0.25) for _ in range(3)]
    oracles = [sorted(zip(data.filter_box(p.box()).column("oid"),
                          data.filter_box(p.box()).column("t")))
               for p in probes]

    def check_probes() -> bool:
        for p, want in zip(probes, oracles):
            got = store.query(p).records
            if sorted(zip(got.column("oid"), got.column("t"))) != want:
                return False
        return True

    # Phase 1: traffic shaped like the baseline — no drift expected.
    for _ in range(args.min_queries):
        frac = 0.6 if rng.uniform() < 0.9 else 0.2
        store.query(positioned(frac))
    ok_before = check_probes()

    # Phase 2: the hot-spot shift — tiny probes in one corner of the
    # universe.  The engine hook trips the controller automatically.
    hot = (bb.x_min + bb.width * 0.25, bb.y_min + bb.height * 0.25,
           bb.t_min + bb.duration * 0.25)
    for _ in range(args.min_queries * 2):
        store.query(positioned(0.02, center=(
            hot[0] + rng.uniform(-bb.width, bb.width) * 0.05,
            hot[1] + rng.uniform(-bb.height, bb.height) * 0.05,
            hot[2] + rng.uniform(-bb.duration, bb.duration) * 0.05)))
    controller.wait()
    ok_after = check_probes()

    applied = [u for u in controller.audit_log if u.action == "applied"]
    verified = ok_before and ok_after
    summary = {
        "epoch": controller.epoch,
        "evaluations": len(controller.audit_log),
        "applied": len(applied),
        "incumbent": incumbent,
        "serving": store.replica_names(),
        "verified_bit_equal": verified,
        "audit": controller.audit_dicts(),
    }
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(f"initial set ({len(incumbent)}): {', '.join(incumbent)}")
        for u in controller.audit_log:
            if u.action == "applied":
                print(f"[epoch {u.epoch}] drift {u.divergence:.3f} >= "
                      f"{u.drift_threshold}: cost {u.incumbent_cost:.4g} "
                      f"-> {u.candidate_cost:.4g} "
                      f"(+{u.improvement:.1%})")
                print(f"  built:   {', '.join(u.built) or '-'}")
                print(f"  retired: {', '.join(u.retired) or '-'}")
            else:
                print(f"[{u.action}] drift {u.divergence:.3f}: "
                      f"{u.reason or ''}")
        print(f"serving set ({len(store.replica_names())}): "
              + ", ".join(store.replica_names()))
        print("probe reads bit-equal across transition: "
              + ("yes" if verified else "NO"))
    if args.report:
        report = build_report(obs, timeseries=ts, reselector=controller)
        print(render_report_text(report))
    store.close()
    if not verified:
        return 1
    if args.expect_applied and not applied:
        print("no reselection was applied", file=sys.stderr)
        return 1
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.data import (
        od_matrix,
        split_trips,
        trajectories_of,
        trajectory_stats,
    )

    data = _load_or_generate(args)
    trajs = trajectories_of(data)
    stats = [trajectory_stats(oid, t) for oid, t in trajs.items()]
    n_trips = sum(len(split_trips(t)) for t in trajs.values())
    total_km = sum(s.length_km for s in stats)
    print(f"fleet: {len(trajs)} vehicles, {len(data):,} samples, "
          f"{n_trips:,} trips, {total_km:,.0f} km driven")
    mean_occ = np.mean([s.occupied_fraction for s in stats])
    print(f"mean occupancy {mean_occ:.0%}, mean speed "
          f"{np.mean([s.mean_speed_kmh for s in stats]):.1f} km/h")
    top = sorted(stats, key=lambda s: -s.length_km)[:args.top]
    print(f"top {args.top} vehicles by distance:")
    for s in top:
        print(f"  taxi {s.oid:4d}: {s.length_km:8.1f} km over "
              f"{s.duration_seconds / 3600:.1f} h, occupied "
              f"{s.occupied_fraction:.0%}")
    od = od_matrix(data, args.grid, args.grid)
    flows = np.argsort(od, axis=None)[::-1]
    print(f"top origin->destination flows ({args.grid}x{args.grid} grid):")
    shown = 0
    for flat in flows:
        o, d = np.unravel_index(flat, od.shape)
        if od[o, d] == 0 or shown >= args.top:
            break
        print(f"  cell {int(o):3d} -> cell {int(d):3d}: {int(od[o, d]):5d} trips")
        shown += 1
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    import json

    from repro.storage import DirectoryStore, load_replica, verify_replica

    with open(args.manifest, "r", encoding="utf-8") as f:
        manifest = json.load(f)
    replica = load_replica(manifest, DirectoryStore(args.store))
    damaged = verify_replica(replica, manifest)
    if not damaged:
        print(f"replica {replica.name!r}: all "
              f"{sum(1 for k in replica.unit_keys if k)} units verified OK")
        return 0
    print(f"replica {replica.name!r}: {len(damaged)} damaged units: "
          + ", ".join(str(p) for p in damaged[:20])
          + (" ..." if len(damaged) > 20 else ""))
    return 1


def _cmd_verify_store(args: argparse.Namespace) -> int:
    """Differential oracle sweep over an on-disk store: CRC integrity,
    cross-replica content recovery, and bit-identical query answers.
    Exits non-zero on any mismatch."""
    import json

    from repro.data import dataset_from_csv
    from repro.obs import MetricsRegistry
    from repro.storage import DirectoryStore
    from repro.verify import verify_store

    reference = None
    if args.input:
        reference = dataset_from_csv(args.input, header=args.header)
    metrics = MetricsRegistry()
    result = verify_store(
        DirectoryStore(args.store),
        list(args.manifest),
        n_queries=args.queries,
        seed=args.seed,
        reference=reference,
        metrics=metrics,
    )
    if args.json:
        print(json.dumps({
            "ok": result.ok,
            "checks": result.checks,
            "queries": result.n_queries,
            "replicas": [
                {
                    "name": r.name,
                    "ok": r.ok,
                    "units": r.units,
                    "damaged_units": list(r.damaged),
                    "content_ok": r.content_ok,
                    "read_errors": list(r.read_errors),
                }
                for r in result.replicas
            ],
            "mismatches": [m.describe() for m in result.mismatches],
            "metrics": metrics.snapshot(),
        }, indent=2))
    else:
        print(result.summary())
    return 0 if result.ok else 1


def _cmd_repair(args: argparse.Namespace) -> int:
    import json

    from repro.storage import (
        DirectoryStore,
        load_replica,
        repair_replica,
        verify_replica,
    )

    with open(args.manifest, "r", encoding="utf-8") as f:
        manifest = json.load(f)
    damaged_replica = load_replica(manifest, DirectoryStore(args.store))
    source = load_replica(args.source_manifest,
                          DirectoryStore(args.source_store))
    damaged = verify_replica(damaged_replica, manifest)
    if not damaged:
        print("nothing to repair")
        return 0
    restored = repair_replica(damaged_replica, damaged, source)
    remaining = verify_replica(damaged_replica, manifest)
    print(f"repaired {len(damaged)} units ({restored:,} records) from "
          f"{source.name!r}; {len(remaining)} still damaged")
    return 0 if not remaining else 1


def _cmd_ingest(args: argparse.Namespace) -> int:
    """Stream a dataset into an always-on ingesting store.

    The store is durable under ``--wal-dir``: re-running with the same
    directory resumes from the WAL (crash-safe), which is also how the
    recovery path is exercised from the command line.  Each appended
    batch is verified queryable; the final summary reports compactions,
    sealed windows and WAL traffic.
    """
    import json

    from repro.storage import IngestConfig, hydrate_ingest_store
    from repro.storage.wal import wal_state_exists
    from repro.verify.oracle import canonical, datasets_identical

    if args.batch_size < 1:
        print("--batch-size must be >= 1", file=sys.stderr)
        return 2
    if args.auto_compact_at < 1:
        print("--auto-compact-at must be >= 1", file=sys.stderr)
        return 2
    if args.window_seconds is not None and args.window_seconds <= 0:
        print("--window-seconds must be positive", file=sys.stderr)
        return 2
    schemes = args.scheme or ["kd:16/t:4"]
    encodings = args.encoding or ["COL-GZIP"] * len(schemes)
    if len(schemes) != len(encodings):
        print("need as many --encoding values as --scheme values",
              file=sys.stderr)
        return 2
    quiet = args.json
    data = _load_or_generate(args).sorted_by_time()
    specs = tuple(
        (scheme, encoding,
         f"r{i}-{scheme.replace(':', '').replace('/', '-')}")
        for i, (scheme, encoding) in enumerate(zip(schemes, encodings))
    )
    config = IngestConfig(
        wal_dir=args.wal_dir,
        replica_specs=specs,
        auto_compact_at=args.auto_compact_at,
        background_compaction=not args.sync,
        window_seconds=args.window_seconds,
        fsync_wal=args.fsync,
        observability=True,
    )
    resuming = wal_state_exists(args.wal_dir)
    n_initial = max(1, len(data) // 2)
    initial = data.take(np.arange(0, n_initial))
    store = hydrate_ingest_store(config, initial=initial)
    if resuming and not quiet:
        print(f"resumed from {args.wal_dir}: {len(store):,} records "
              f"({store.buffered_records:,} replayed into the buffer)")

    appended = 0
    start = n_initial if not resuming else 0
    for lo in range(start, len(data), args.batch_size):
        batch = data.take(np.arange(lo, min(lo + args.batch_size,
                                            len(data))))
        store.append(batch)
        appended += len(batch)
    store.wait_for_compaction()

    # Every record ever acknowledged must come back bit-equal.
    box = store.dataset().bounding_box()
    got = canonical(store.query(box).records)
    want = canonical(store.dataset().filter_box(box))
    if not datasets_identical(got, want):
        print("ingest verification FAILED: full-range query does not "
              "match the logical dataset", file=sys.stderr)
        store.close()
        return 1

    reports = store.anti_entropy() if args.anti_entropy else []
    bad = [r for r in reports if not r.ok]
    summary = {
        "records": len(store),
        "appended": appended,
        "buffered": store.buffered_records,
        "compactions": store.compactions,
        "compaction_failures": store.compaction_failures,
        "windows": len(store.windows),
        "anti_entropy_ok": not bad if reports else None,
        "wal_dir": args.wal_dir,
        "wal_segments": len(store.wal.segment_ids()),
    }
    store.close()
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0 if not bad else 1
    print(f"ingested {appended:,} records in batches of "
          f"{args.batch_size:,} -> {summary['records']:,} total")
    print(f"  compactions: {summary['compactions']} "
          f"({summary['compaction_failures']} failed), "
          f"buffered: {summary['buffered']:,}")
    print(f"  sealed windows: {summary['windows']}, "
          f"wal segments live: {summary['wal_segments']}")
    if reports:
        verdict = "OK" if not bad else f"{len(bad)} window(s) FAILED"
        print(f"  anti-entropy sweep: {verdict}")
    print("  full-range query verified bit-equal against the logical "
          "dataset")
    return 0 if not bad else 1


def _serve_replica_specs(n_replicas: int):
    """The ``(scheme, encoding, name)`` triples ``serve`` and ``fleet``
    materialize — the same diversity ladder as ``run-workload``."""
    from repro.encoding import encoding_scheme_by_name
    from repro.partition import CompositeScheme, KdTreePartitioner

    return [
        (CompositeScheme(KdTreePartitioner(leaves), slices),
         encoding_scheme_by_name(enc),
         f"kd{leaves}t{slices}-{enc.lower()}")
        for leaves, slices, enc in _WORKLOAD_REPLICA_SPECS[:n_replicas]
    ]


def _materialize_serve_store(args: argparse.Namespace):
    """Materialize the on-disk store ``serve``/``fleet`` run against and
    return its :class:`~repro.storage.StoreConfig` (or ``(None, code)``
    on bad arguments)."""
    import tempfile

    from repro.storage import FaultSpec, materialize_store

    if not 1 <= args.replicas <= len(_WORKLOAD_REPLICA_SPECS):
        print(f"--replicas must be 1..{len(_WORKLOAD_REPLICA_SPECS)}",
              file=sys.stderr)
        return None, 2
    data = _load_or_generate(args)
    specs = _serve_replica_specs(args.replicas)
    faults = None
    if (getattr(args, "fail_replica", None)
            or getattr(args, "fault_rate", 0.0)):
        known = {name for _, _, name in specs}
        unknown = [n for n in (args.fail_replica or []) if n not in known]
        if unknown:
            print(f"--fail-replica: no replica named {unknown[0]!r}; have "
                  + ", ".join(sorted(known)), file=sys.stderr)
            return None, 2
        faults = FaultSpec(
            seed=args.fault_seed,
            partition_fail_rate=args.fault_rate,
            slow_seconds=args.slow_ms / 1e3,
            fail_replicas=tuple(args.fail_replica or ()),
        )
    root = args.store_root or tempfile.mkdtemp(prefix="repro-serve-")
    config = materialize_store(data, specs, root, faults=faults,
                               observability=True)
    print(f"materialized {len(data):,} records x {args.replicas} replicas "
          f"under {root}")
    return config, 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Boot the sharded serving tier against a materialized store, drive
    a simulated fleet through it, and optionally verify every answer
    bit-equal against a single-process engine (exit 1 on mismatch)."""
    import asyncio
    import dataclasses
    import json

    from repro.errors import DegradedReadError
    from repro.serve import (
        FleetSpec,
        QuotaConfig,
        ShardServer,
        TenantQuotas,
        fleet_queries,
        run_fleet,
    )
    from repro.storage import hydrate_store
    from repro.verify.oracle import canonical, datasets_identical

    tracing = args.trace_dir is not None
    if (args.stitch or args.trace_out or args.min_stitch is not None) \
            and not tracing:
        print("--stitch/--trace-out/--min-stitch need --trace-dir",
              file=sys.stderr)
        return 2
    config, err = _materialize_serve_store(args)
    if config is None:
        return err
    spec = FleetSpec(
        n_queries=args.queries,
        tenants=tuple(f"tenant-{i}" for i in range(args.tenants)),
        concurrency=args.concurrency,
        seed=args.seed,
    )
    quotas = None
    if args.quota_rate > 0:
        quotas = TenantQuotas(QuotaConfig(rate=args.quota_rate,
                                          burst=args.quota_burst))

    # The bit-equality referee answers from a fault-free hydration: the
    # true result of a query does not depend on the fault schedule.
    baselines = None
    queries = None
    if args.verify:
        referee = hydrate_store(dataclasses.replace(config, faults=None))
        try:
            queries = fleet_queries(referee.universe, spec)
            baselines = [canonical(referee.query(q).records)
                         for q in queries]
        finally:
            referee.close()

    async def go():
        async with ShardServer(
            config,
            n_shards=args.shards,
            sharding=args.sharding,
            worker_mode=args.worker_mode,
            max_inflight=args.max_inflight,
            quotas=quotas,
            tracing=tracing,
        ) as server:
            report = await run_fleet(server, spec)
            verified = mismatched = degraded = 0
            if args.verify:
                server.quotas = None  # the referee pass is not traffic
                for q, want in zip(queries, baselines):
                    try:
                        got = await server.query(q, tenant="verify")
                    except DegradedReadError:
                        degraded += 1
                        continue
                    if datasets_identical(canonical(got), want):
                        verified += 1
                    else:
                        mismatched += 1
            stats = server.server_stats()
            snapshot = await server.metrics_snapshot()
            trace_paths = (await server.dump_traces(args.trace_dir)
                           if tracing else [])
        return report, stats, snapshot, trace_paths, \
            (verified, mismatched, degraded)

    report, stats, snapshot, trace_paths, (verified, mismatched, degraded) \
        = asyncio.run(go())

    print(f"[fleet] {report.n_queries} queries over {args.tenants} tenants: "
          f"{report.served} served ({report.records_returned:,} records), "
          f"{report.shed} shed, {report.quota_rejected} quota-rejected, "
          f"{report.degraded} degraded")
    print(f"[server] {args.shards} {args.worker_mode} shards "
          f"({args.sharding} sharding): {stats['batches_flushed']} batches "
          f"for {stats['queries_batched']} queries, "
          f"{stats['failovers']} failovers")
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as f:
            json.dump(snapshot, f, indent=2, sort_keys=True)
        print(f"wrote shard metrics to {args.metrics_out}")
    if tracing:
        print(f"[trace] wrote {len(trace_paths)} span streams "
              f"under {args.trace_dir}")
    if args.stitch:
        from repro.obs import stitch_files, validate_trace_tree

        stitched = stitch_files(trace_paths)
        try:
            for tree in stitched.requests:
                validate_trace_tree(tree)
        except ValueError as exc:
            print(f"stitched trace tree INVALID: {exc}", file=sys.stderr)
            return 1
        print(f"[stitch] {len(stitched.requests)} request trees, "
              f"{stitched.engine_spans} engine spans "
              f"({stitched.stitched_engine_spans} stitched, ratio "
              f"{stitched.engine_stitch_ratio:.3f}), "
              f"{stitched.orphans} orphans")
        if args.trace_out:
            with open(args.trace_out, "w", encoding="utf-8") as f:
                json.dump(stitched.to_dict(), f, indent=2, sort_keys=True)
            print(f"wrote stitched trace forest to {args.trace_out}")
        if (args.min_stitch is not None
                and stitched.engine_stitch_ratio < args.min_stitch):
            print(f"stitch ratio {stitched.engine_stitch_ratio:.3f} below "
                  f"--min-stitch {args.min_stitch}", file=sys.stderr)
            return 1
    if args.verify:
        print(f"[verify] {verified} bit-equal, {mismatched} MISMATCHED, "
              f"{degraded} degraded (skipped)")
        if mismatched or not verified:
            print("verification FAILED: sharded answers are not bit-equal "
                  "to the single-process engine", file=sys.stderr)
            return 1
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    """The single-process baseline for ``serve``: the identical fleet
    traffic batch-executed through one engine, no sharding, no front
    door — the number the serving tier's throughput is judged against."""
    import time

    from repro.serve import FleetSpec, fleet_queries
    from repro.storage import hydrate_store
    from repro.workload import Workload

    config, err = _materialize_serve_store(args)
    if config is None:
        return err
    store = hydrate_store(config)
    try:
        spec = FleetSpec(
            n_queries=args.queries,
            tenants=tuple(f"tenant-{i}" for i in range(args.tenants)),
            concurrency=args.concurrency,
            seed=args.seed,
        )
        queries = fleet_queries(store.universe, spec)
        start = time.perf_counter()
        result = store.execute_workload(Workload.unweighted(queries))
        seconds = time.perf_counter() - start
    finally:
        store.close()
    s = result.stats
    print(f"[baseline] {s.n_queries} queries in {seconds * 1e3:.1f} ms "
          f"({s.n_queries / seconds:,.0f} q/s), "
          f"{s.records_returned:,} records returned")
    routed = ", ".join(f"{name}={count}" for name, count in
                       sorted(s.per_replica_queries.items()))
    print(f"  routing: {routed}")
    return 0


def _quantile_ms(entry: dict, q: str) -> str:
    value = (entry.get("quantiles") or {}).get(q)
    if value is None:
        return "-"
    return f"{value * 1e3:.1f}ms"


def _render_top(snapshot: dict) -> str:
    """The serving snapshot as a text board: front-door counters,
    per-tenant latency quantiles, per-shard dispatch quantiles, SLO
    state."""
    lines: list[str] = []
    server = snapshot.get("server", {})
    lines.append(
        f"served {server.get('queries_served', 0)}  "
        f"shed {server.get('shed', 0)}  "
        f"quota-rejected {server.get('quota_rejected', 0)}  "
        f"failovers {server.get('failovers', 0)}  "
        f"degraded {server.get('degraded', 0)}  "
        f"batches {server.get('batches_flushed', 0)}")
    merged = snapshot.get("merged", {})
    outcomes: dict[tuple[str, str], float] = {}
    for counter in merged.get("counters", []):
        if counter.get("name") != "repro_requests_total":
            continue
        labels = counter.get("labels") or {}
        key = (labels.get("tenant", "?"), labels.get("outcome", "?"))
        outcomes[key] = outcomes.get(key, 0.0) + counter.get("value", 0.0)
    request_sketches = []
    shard_sketches = []
    for entry in merged.get("quantiles", []):
        if entry.get("name") == "repro_request_seconds":
            request_sketches.append(entry)
        elif entry.get("name") == "repro_shard_dispatch_seconds":
            shard_sketches.append(entry)
    if request_sketches:
        lines.append("tenant latencies (merged sketches):")
        for entry in request_sketches:
            tenant = (entry.get("labels") or {}).get("tenant", "?")
            tallies = " ".join(
                f"{outcome}={int(n)}" for (t, outcome), n
                in sorted(outcomes.items()) if t == tenant)
            lines.append(
                f"  {tenant:<12} n={entry.get('count', 0):<6} "
                f"p50={_quantile_ms(entry, '0.5'):<9} "
                f"p95={_quantile_ms(entry, '0.95'):<9} "
                f"p99={_quantile_ms(entry, '0.99'):<9} {tallies}")
    if shard_sketches:
        lines.append("shard dispatch:")
        for entry in shard_sketches:
            shard = (entry.get("labels") or {}).get("shard", "?")
            lines.append(
                f"  shard-{shard:<6} n={entry.get('count', 0):<6} "
                f"p50={_quantile_ms(entry, '0.5'):<9} "
                f"p99={_quantile_ms(entry, '0.99'):<9}")
    slo = snapshot.get("slo")
    if slo is not None:
        firing = slo.get("firing", [])
        if firing:
            lines.append("SLO: FIRING " + ", ".join(
                f"{f['tenant']}/{f['objective']}" for f in firing))
        else:
            lines.append(
                f"SLO: healthy ({len(slo.get('objectives', []))} "
                "objectives)")
        for status in slo.get("status", []):
            burns = " ".join(
                f"{w['seconds']:g}s:{w['burn_rate']:.2f}x"
                for w in status.get("windows", []))
            flag = "FIRING" if status.get("firing") else "ok"
            lines.append(f"  {status['tenant']}/{status['objective']}: "
                         f"{flag} burn {burns}")
    return "\n".join(lines)


def _cmd_top(args: argparse.Namespace) -> int:
    """Render a serving metrics snapshot (``repro serve --metrics-out``)
    as a refreshing text board — ``top`` for the serving tier."""
    import json
    import time

    iterations = 1 if args.once else args.iterations
    shown = 0
    while True:
        try:
            with open(args.snapshot, encoding="utf-8") as f:
                snapshot = json.load(f)
        except FileNotFoundError:
            print(f"no snapshot at {args.snapshot} (yet)", file=sys.stderr)
            snapshot = None
        except json.JSONDecodeError:
            snapshot = None  # torn mid-write; retry next refresh
        if snapshot is not None:
            if sys.stdout.isatty() and not args.once:  # pragma: no cover
                print("\x1b[2J\x1b[H", end="")
            print(_render_top(snapshot))
        shown += 1
        if iterations and shown >= iterations:
            return 0 if snapshot is not None else 1
        print("-" * 64)
        time.sleep(args.interval)


def _cmd_slo(args: argparse.Namespace) -> int:
    """SLO drill: serve fleet traffic (optionally under an injected
    fault schedule), evaluate per-tenant burn-rate objectives, and exit
    by SLO health — 0 healthy / 1 firing, inverted by
    ``--expect-alert`` for deterministic alert drills in CI."""
    import asyncio
    import json

    from repro.obs import (
        Observability,
        SLOEngine,
        SLObjective,
        build_report,
        parse_slo_config,
        validate_report,
    )
    from repro.obs.report import render_report_text
    from repro.serve import FleetSpec, ShardServer, run_fleet

    objectives: list[SLObjective] = []
    if args.slo_config:
        with open(args.slo_config, encoding="utf-8") as f:
            objectives.extend(parse_slo_config(json.load(f)))
    if args.availability is not None:
        objectives.append(SLObjective(tenant="*", kind="availability",
                                      target=args.availability))
    if args.latency_p99_ms is not None:
        objectives.append(SLObjective(tenant="*", kind="latency",
                                      target=0.99,
                                      latency_seconds=args.latency_p99_ms
                                      / 1e3))
    if not objectives:
        print("declare at least one objective: --availability, "
              "--latency-p99-ms or --slo-config", file=sys.stderr)
        return 2

    config, err = _materialize_serve_store(args)
    if config is None:
        return err
    obs = Observability.create()
    engine = SLOEngine(objectives, metrics=obs.metrics,
                       min_events=args.min_events)
    spec = FleetSpec(
        n_queries=args.queries,
        tenants=tuple(f"tenant-{i}" for i in range(args.tenants)),
        concurrency=args.concurrency,
        seed=args.seed,
    )

    async def go():
        async with ShardServer(
            config,
            n_shards=args.shards,
            worker_mode=args.worker_mode,
            observability=obs,
            slo=engine,
        ) as server:
            fleet = await run_fleet(server, spec)
            engine.evaluate()
            snapshot = await server.metrics_snapshot()
        return fleet, snapshot

    fleet, snapshot = asyncio.run(go())

    report = build_report(obs, slo=engine)
    validate_report(report)
    if args.report_out:
        with open(args.report_out, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2, sort_keys=True)
    firing = engine.firing
    if args.json:
        print(json.dumps({
            "served": fleet.served,
            "degraded": fleet.degraded,
            "objectives": engine.objective_dicts(),
            "status": engine.status_dicts(),
            "firing": [{"tenant": t, "objective": o} for t, o in firing],
            "audit": engine.audit_dicts(),
        }, indent=2, sort_keys=True))
    else:
        print(f"[fleet] {fleet.n_queries} queries: {fleet.served} served, "
              f"{fleet.degraded} degraded")
        print(_render_top(snapshot))
        print(render_report_text(report))
    if args.report_out and not args.json:
        print(f"wrote v{report['schema_version']} report "
              f"to {args.report_out}")
    if args.expect_alert:
        if firing:
            return 0
        print("expected an SLO alert but none is firing", file=sys.stderr)
        return 1
    return 1 if firing else 0


def _seed_parent(default: int = 7) -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument("--seed", type=int, default=default)
    return p


def _data_parent(records_default: int = 20_000,
                 with_input: bool = True) -> argparse.ArgumentParser:
    """The ``--input/--records/--header`` data-source group shared by
    every subcommand that reads or synthesizes a taxi log."""
    p = argparse.ArgumentParser(add_help=False)
    if with_input:
        p.add_argument("--input", help="CSV file (default: synthesize)")
        p.add_argument("--records", type=int, default=records_default,
                       help="records to synthesize when no --input")
    else:
        p.add_argument("--records", type=int, default=records_default)
    p.add_argument("--header", action="store_true",
                   help="CSV files carry a header row")
    return p


def _workload_parent() -> argparse.ArgumentParser:
    """The workload-shape group shared by ``run-workload`` and ``drill``."""
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument("--queries", type=int, default=500,
                   help="positioned queries to generate")
    p.add_argument("--replicas", type=int, default=3,
                   help="diverse replicas to build (1..6)")
    p.add_argument("--max-frac", type=float, default=0.3,
                   help="largest query extent as a fraction of the universe")
    p.add_argument("--parallelism", type=int, default=4,
                   help="partition-scan threads in the persistent pool")
    p.add_argument("--cache-mb", type=float, default=64.0,
                   help="decoded-partition cache budget in MB (0 disables)")
    p.add_argument("--environment", default="amazon-s3-emr")
    return p


def _faults_parent() -> argparse.ArgumentParser:
    """The fault-schedule group shared by ``run-workload --inject-faults``
    and ``drill``."""
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument("--fault-rate", type=float, default=0.0,
                   help="fail this fraction of (replica, partition) units, "
                        "deterministically per --fault-seed")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="seed of the deterministic fault schedule")
    p.add_argument("--fail-replica", action="append", default=None,
                   metavar="NAME",
                   help="mark a whole replica down (repeatable)")
    p.add_argument("--slow-ms", type=float, default=0.0,
                   help="injected latency per storage read, in ms")
    p.add_argument("--retries", type=int, default=2,
                   help="extra read attempts per partition before failover")
    return p


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BLOT diverse-replica storage (ICDCS 2014 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    seed = _seed_parent()
    data = _data_parent()
    workload_shape = _workload_parent()
    faults = _faults_parent()

    p = sub.add_parser("info", help="version, environments, scheme registry")
    p.set_defaults(handler=_cmd_info)

    p = sub.add_parser("generate", help="synthesize a taxi GPS log as CSV",
                       parents=[_data_parent(50_000, with_input=False), seed])
    p.add_argument("--taxis", type=int, default=64)
    p.add_argument("--out", required=True)
    p.set_defaults(handler=_cmd_generate)

    p = sub.add_parser("ratios", help="Table I: compression ratios",
                       parents=[data, seed])
    p.set_defaults(handler=_cmd_ratios)

    p = sub.add_parser("calibrate", help="Table II: ScanRate/ExtraTime fits",
                       parents=[seed])
    p.add_argument("--environment", default="amazon-s3-emr")
    p.add_argument("--encodings", nargs="*", default=None)
    p.set_defaults(handler=_cmd_calibrate)

    p = sub.add_parser("advise", help="recommend a diverse replica set",
                       parents=[data, seed])
    p.add_argument("--records-target", type=float, default=65e6,
                   help="size of the full dataset being planned for")
    p.add_argument("--environment", default="amazon-s3-emr")
    p.add_argument("--budget-copies", type=int, default=3)
    p.add_argument("--method", default="greedy",
                   choices=["greedy", "exact", "mip"])
    p.add_argument("--full-grid", action="store_true",
                   help="use the paper's full 25-scheme grid (slow)")
    p.set_defaults(handler=_cmd_advise)

    p = sub.add_parser("verify", help="CRC-check a replica against its manifest")
    p.add_argument("--manifest", required=True)
    p.add_argument("--store", required=True, help="replica unit directory")
    p.set_defaults(handler=_cmd_verify)

    p = sub.add_parser(
        "verify-store",
        help="differential oracle sweep over an on-disk store "
             "(CRC + cross-replica content + query answers)",
        parents=[seed])
    p.add_argument("--manifest", required=True, action="append",
                   help="replica manifest JSON (repeat per replica)")
    p.add_argument("--store", required=True, help="replica unit directory")
    p.add_argument("--queries", type=int, default=12,
                   help="random oracle queries per replica")
    p.add_argument("--input", default=None,
                   help="reference CSV (ground truth; default: "
                        "cross-replica majority)")
    p.add_argument("--header", action="store_true",
                   help="reference CSV carries a header row")
    p.add_argument("--json", action="store_true",
                   help="machine-readable report (includes metrics)")
    p.set_defaults(handler=_cmd_verify_store)

    p = sub.add_parser("repair",
                       help="repair damaged units from a diverse replica")
    p.add_argument("--manifest", required=True)
    p.add_argument("--store", required=True)
    p.add_argument("--source-manifest", required=True)
    p.add_argument("--source-store", required=True)
    p.set_defaults(handler=_cmd_repair)

    p = sub.add_parser("analyze", help="fleet analytics (trips, OD flows)",
                       parents=[data, seed])
    p.add_argument("--top", type=int, default=5)
    p.add_argument("--grid", type=int, default=4)
    p.set_defaults(handler=_cmd_analyze)

    p = sub.add_parser(
        "run-workload",
        help="batch-route and execute a whole query workload",
        parents=[data, seed, workload_shape, faults],
    )
    p.add_argument("--repeat", type=int, default=2,
                   help="execute the workload this many times "
                        "(second pass shows the cache effect)")
    p.add_argument("--inject-faults", action="store_true",
                   help="apply the fault schedule (--fault-rate, "
                        "--fail-replica, --slow-ms) to every pass")
    p.add_argument("--trace", action="store_true",
                   help="collect per-query trace spans and print the "
                        "telemetry summary")
    p.add_argument("--trace-out", default=None, metavar="PATH",
                   help="with --trace, dump the retained spans as "
                        "JSON lines to PATH")
    p.set_defaults(handler=_cmd_run_workload)

    p = sub.add_parser(
        "stats",
        help="run a workload with full telemetry and report metrics, "
             "traces and cost-model drift",
        parents=[data, seed, workload_shape, faults],
    )
    p.add_argument("--repeat", type=int, default=2,
                   help="workload passes to accumulate telemetry over")
    p.add_argument("--inject-faults", action="store_true",
                   help="apply the fault schedule before the passes")
    p.add_argument("--drift-threshold", type=float, default=0.5,
                   help="mean relative error above which a replica's "
                        "cost model is flagged as drifting")
    fmt = p.add_mutually_exclusive_group()
    fmt.add_argument("--json", action="store_true",
                     help="emit the full telemetry snapshot as JSON")
    fmt.add_argument("--prom", action="store_true",
                     help="emit the metrics in Prometheus text format")
    p.set_defaults(handler=_cmd_stats)

    p = sub.add_parser(
        "report",
        help="run a seeded workload and render the operational report "
             "(cache, degradation, drift, recalibration audit, trends)",
        parents=[data, seed, workload_shape, faults],
    )
    p.add_argument("--repeat", type=int, default=2,
                   help="workload passes to accumulate telemetry over")
    p.add_argument("--inject-faults", action="store_true",
                   help="apply the fault schedule before the passes")
    p.add_argument("--drift-threshold", type=float, default=0.5,
                   help="mean relative error above which a replica's "
                        "cost model is flagged as drifting")
    p.add_argument("--stale-factor", type=float, default=1.0,
                   help="scale every ScanRate by this factor before "
                        "serving (deliberate mis-calibration; 4 = the "
                        "paper's drift scenario)")
    p.add_argument("--recalibrate", action="store_true",
                   help="attach the auto-recalibrator: flagged replicas "
                        "re-fit Section V-B from measured scan spans and "
                        "hot-swap the routing constants")
    p.add_argument("--dry-run", action="store_true",
                   help="with --recalibrate, audit proposed updates "
                        "without applying them")
    p.add_argument("--min-samples", type=int, default=8,
                   help="scan measurements required before an update")
    p.add_argument("--timeseries", default=None, metavar="PATH",
                   help="persist snapshots + calibration audit to this "
                        "JSONL history file (survives restarts)")
    p.add_argument("--retention", type=int, default=512,
                   help="max history entries kept before rollup "
                        "compaction")
    p.add_argument("--rollup-every", type=int, default=8,
                   help="raw entries folded into one rollup when "
                        "compacting")
    p.add_argument("--json", action="store_true",
                   help="emit the schema-versioned report as JSON")
    p.set_defaults(handler=_cmd_report)

    p = sub.add_parser(
        "drill",
        help="failure drill: healthy pass, inject faults, degraded pass, "
             "degradation report",
        parents=[data, seed, workload_shape, faults],
    )
    p.set_defaults(handler=_cmd_drill)

    p = sub.add_parser(
        "reselect",
        help="workload-drift drill: serve a shifted workload and let the "
             "controller re-solve Eq. 1-5 warm and swap replicas online",
        parents=[data, seed],
    )
    p.add_argument("--budget-copies", type=int, default=3,
                   help="storage budget as copies of the best single "
                        "replica (paper Section V-C)")
    p.add_argument("--min-queries", type=int, default=24,
                   help="observed queries per drift evaluation window")
    p.add_argument("--drift-threshold", type=float, default=0.2,
                   help="Jensen-Shannon divergence (0..1) that counts "
                        "as workload drift")
    p.add_argument("--min-improvement", type=float, default=0.02,
                   help="relative Eq. 5 improvement required to swap")
    p.add_argument("--cache-mb", type=float, default=32.0,
                   help="decoded-partition cache budget in MB (0 disables)")
    p.add_argument("--timeseries", default=None, metavar="PATH",
                   help="persist the reselection audit trail to this "
                        "JSONL history file")
    p.add_argument("--expect-applied", action="store_true",
                   help="exit nonzero unless a reselection was applied "
                        "(CI gate)")
    p.add_argument("--report", action="store_true",
                   help="print the full operational report (with its "
                        "reselection section) after the drill")
    p.add_argument("--json", action="store_true",
                   help="emit the drill summary as JSON")
    p.set_defaults(handler=_cmd_reselect)

    serving_shape = argparse.ArgumentParser(add_help=False)
    serving_shape.add_argument("--replicas", type=int, default=2,
                               help="diverse replicas to materialize (1..6)")
    serving_shape.add_argument("--store-root", default=None, metavar="DIR",
                               help="materialize the store here "
                                    "(default: a fresh temp dir)")
    serving_shape.add_argument("--queries", type=int, default=100,
                               help="fleet queries to issue")
    serving_shape.add_argument("--tenants", type=int, default=2,
                               help="simulated tenants issuing traffic")
    serving_shape.add_argument("--concurrency", type=int, default=16,
                               help="concurrent in-flight client queries")

    p = sub.add_parser(
        "serve",
        help="boot the sharded multi-worker serving tier and drive a "
             "simulated fleet through it",
        parents=[data, seed, serving_shape, faults],
    )
    p.add_argument("--shards", type=int, default=2,
                   help="shard workers to start")
    p.add_argument("--sharding", default="hash",
                   choices=["hash", "spatial"],
                   help="unit-to-shard assignment mode")
    p.add_argument("--worker-mode", default="process",
                   choices=["process", "thread"],
                   help="spawn real worker processes or in-process threads")
    p.add_argument("--max-inflight", type=int, default=256,
                   help="admission limit before queries are shed")
    p.add_argument("--quota-rate", type=float, default=0.0,
                   help="per-tenant sustained queries/second "
                        "(0 disables quotas)")
    p.add_argument("--quota-burst", type=float, default=20.0,
                   help="per-tenant burst allowance")
    p.add_argument("--verify", action="store_true",
                   help="re-answer every fleet query on a single-process "
                        "engine and exit 1 unless all answers are bit-equal")
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="write the per-shard + merged metrics snapshot "
                        "as JSON")
    p.add_argument("--trace-dir", default=None, metavar="DIR",
                   help="enable end-to-end tracing and dump per-worker "
                        "span streams (JSONL) here")
    p.add_argument("--stitch", action="store_true",
                   help="reassemble the dumped span streams into one "
                        "tree per request and print stitch stats")
    p.add_argument("--trace-out", default=None, metavar="PATH",
                   help="write the stitched trace forest as JSON "
                        "(with --stitch)")
    p.add_argument("--min-stitch", type=float, default=None,
                   metavar="RATIO",
                   help="exit 1 unless at least this fraction of "
                        "worker-side engine spans stitched under a "
                        "request root (with --stitch)")
    p.set_defaults(handler=_cmd_serve)

    p = sub.add_parser(
        "top",
        help="render a `serve --metrics-out` snapshot as a refreshing "
             "text board (latency quantiles, outcomes, SLO state)",
    )
    p.add_argument("--snapshot", required=True, metavar="PATH",
                   help="metrics snapshot JSON to watch")
    p.add_argument("--once", action="store_true",
                   help="render once and exit")
    p.add_argument("--interval", type=float, default=2.0,
                   help="seconds between refreshes")
    p.add_argument("--iterations", type=int, default=0,
                   help="refreshes before exiting (0 = forever)")
    p.set_defaults(handler=_cmd_top)

    p = sub.add_parser(
        "slo",
        help="SLO drill: serve fleet traffic under per-tenant "
             "objectives and exit by burn-rate alert state",
        parents=[data, seed, serving_shape, faults],
    )
    p.add_argument("--shards", type=int, default=2,
                   help="shard workers to start")
    p.add_argument("--worker-mode", default="thread",
                   choices=["process", "thread"],
                   help="spawn real worker processes or in-process threads")
    p.add_argument("--availability", type=float, default=None,
                   metavar="FRACTION",
                   help="availability objective for every tenant "
                        "(e.g. 0.999)")
    p.add_argument("--latency-p99-ms", type=float, default=None,
                   metavar="MS",
                   help="p99 latency objective for every tenant")
    p.add_argument("--slo-config", default=None, metavar="PATH",
                   help='declarative objectives JSON ({"tenants": ...})')
    p.add_argument("--min-events", type=int, default=10,
                   help="events a window needs before it may fire")
    p.add_argument("--report-out", default=None, metavar="PATH",
                   help="write the schema-v4 operational report as JSON")
    p.add_argument("--json", action="store_true",
                   help="emit the drill result as JSON")
    p.add_argument("--expect-alert", action="store_true",
                   help="invert the exit code: 0 when an alert is "
                        "firing (for deterministic CI drills)")
    p.set_defaults(handler=_cmd_slo)

    p = sub.add_parser(
        "fleet",
        help="single-process baseline: the identical fleet traffic "
             "through one engine (compare against `serve`)",
        parents=[data, seed, serving_shape],
    )
    p.set_defaults(handler=_cmd_fleet)

    p = sub.add_parser(
        "ingest",
        help="stream records into an always-on store (WAL + background "
             "compaction); re-run with the same --wal-dir to resume",
        parents=[data, seed],
    )
    p.add_argument("--wal-dir", required=True,
                   help="durable state directory (WAL segments, compaction "
                        "snapshot, sealed windows)")
    p.add_argument("--batch-size", type=int, default=1000,
                   help="records per appended batch")
    p.add_argument("--scheme", action="append",
                   default=None, metavar="SPEC",
                   help="replica partitioning spec like 'kd:16/t:4' or "
                        "'grid:8x8' (repeatable; default kd:16/t:4)")
    p.add_argument("--encoding", action="append", default=None,
                   help="encoding per --scheme (default COL-GZIP)")
    p.add_argument("--auto-compact-at", type=int, default=4000,
                   help="buffered records that trigger a compaction")
    p.add_argument("--sync", action="store_true",
                   help="compact inline on the appending thread instead of "
                        "the background worker")
    p.add_argument("--window-seconds", type=float, default=None,
                   help="seal records older than the open window into "
                        "read-only on-disk replica sets of this span")
    p.add_argument("--anti-entropy", action="store_true",
                   help="run the CRC + majority-vote sweep over every "
                        "sealed window before exiting")
    p.add_argument("--fsync", action="store_true",
                   help="fsync every WAL frame (power-loss durability)")
    p.add_argument("--json", action="store_true",
                   help="emit the ingest summary as JSON")
    p.set_defaults(handler=_cmd_ingest)

    p = sub.add_parser("query", help="run one range query through the engine",
                       parents=[data, seed])
    p.add_argument("--frac", type=float, default=0.1,
                   help="query extent as a fraction of the universe per axis")
    p.add_argument("--encoding", default="COL-GZIP")
    p.add_argument("--spatial-leaves", type=int, default=16)
    p.add_argument("--time-slices", type=int, default=8)
    p.add_argument("--parallelism", type=int, default=1)
    p.set_defaults(handler=_cmd_query)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

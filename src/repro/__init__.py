"""BLOT: diverse replicas for big location tracking data.

A full reproduction of Ding, Tan, Luo and Ni, *"Exploring the Use of
Diverse Replicas for Big Location Tracking Data"* (ICDCS 2014): the BLOT
storage abstraction (spatio-temporal partitioning + per-partition
encoding + scan-based range queries), the query cost model, and the
replica selection problem with exact and greedy solvers.

Quickstart::

    import numpy as np
    from repro import (
        AdvisorConfig, ReplicaAdvisor, cost_model_for, make_cluster,
        paper_encoding_schemes, paper_workload, small_partitioning_schemes,
        synthetic_shanghai_taxis,
    )

    sample = synthetic_shanghai_taxis(20_000)
    cluster = make_cluster("amazon-s3-emr")
    model = cost_model_for(cluster, [s.name for s in paper_encoding_schemes()])
    advisor = ReplicaAdvisor(
        sample, small_partitioning_schemes(), paper_encoding_schemes(),
        model, AdvisorConfig(n_records=65_000_000),
    )
    workload = paper_workload(advisor.universe)
    report = advisor.recommend(
        workload, advisor.single_replica_budget(workload), method="exact",
    )
    print(report.replica_names, report.speedup_vs_single)

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.cluster import (
    EMR_S3,
    ENVIRONMENTS,
    LOCAL_HADOOP,
    SimulatedCluster,
    calibrate_environment,
    cost_model_for,
    make_cluster,
    simulate_query,
    simulate_routed_query,
)
from repro.core import (
    AdvisorConfig,
    ReplicaAdvisor,
    Selection,
    SelectionInstance,
    SelectionReport,
    branch_and_bound_select,
    brute_force_select,
    build_mip,
    greedy_select,
    local_search_select,
    prune_dominated,
    reduce_workload,
    solve_mip,
)
from repro.costmodel import (
    CostModel,
    EncodingCostParams,
    ReplicaProfile,
    RoutingPlan,
    batch_expected_partitions,
    calibrate_encoding,
    expected_partitions,
    fit_cost_params,
    measure_encoding_ratios,
)
from repro.data import Dataset, FleetConfig, TaxiFleetGenerator, synthetic_shanghai_taxis
from repro.errors import (
    InjectedFault,
    OverloadError,
    QuotaExceededError,
    ReplicaExists,
)
from repro.encoding import (
    EncodingScheme,
    all_encoding_schemes,
    encoding_scheme_by_name,
    measure_compression_ratio,
    paper_encoding_schemes,
)
from repro.geometry import Box3, Point3
from repro.obs import (
    Checkpointer,
    DriftMonitor,
    DriftStatus,
    MetricsRegistry,
    Observability,
    Recalibrator,
    TimeseriesStore,
    TraceRecorder,
    build_report,
)
from repro.partition import (
    CompositeScheme,
    GridPartitioner,
    KdTreePartitioner,
    PartitionIndex,
    QuadtreePartitioner,
    TemporalSlicer,
    paper_partitioning_schemes,
    small_partitioning_schemes,
)
from repro.serve import (
    FleetReport,
    FleetSpec,
    QuotaConfig,
    ShardServer,
    TenantQuotas,
    run_fleet,
)
from repro.storage import (
    BlotStore,
    DegradedReadError,
    DirectoryStore,
    ExecOptions,
    FaultInjector,
    FaultSpec,
    InMemoryStore,
    PartitionCache,
    PartitionReadError,
    QueryResult,
    QueryStats,
    ReplicaRef,
    StoreConfig,
    WorkloadResult,
    WorkloadStats,
    build_replica,
    materialize_store,
    open_store,
)
from repro.workload import (
    GroupedQuery,
    Query,
    Workload,
    grouped_random_workload,
    paper_workload,
    positioned_random_workload,
)

__version__ = "1.0.0"

__all__ = [
    "AdvisorConfig",
    "BlotStore",
    "Box3",
    "Checkpointer",
    "CompositeScheme",
    "CostModel",
    "Dataset",
    "DegradedReadError",
    "DirectoryStore",
    "DriftMonitor",
    "DriftStatus",
    "EMR_S3",
    "ENVIRONMENTS",
    "EncodingCostParams",
    "EncodingScheme",
    "ExecOptions",
    "FaultInjector",
    "FaultSpec",
    "FleetConfig",
    "FleetReport",
    "FleetSpec",
    "GridPartitioner",
    "GroupedQuery",
    "InMemoryStore",
    "InjectedFault",
    "OverloadError",
    "PartitionCache",
    "PartitionReadError",
    "QueryResult",
    "QueryStats",
    "QuotaConfig",
    "QuotaExceededError",
    "KdTreePartitioner",
    "LOCAL_HADOOP",
    "MetricsRegistry",
    "Observability",
    "PartitionIndex",
    "Point3",
    "QuadtreePartitioner",
    "Query",
    "Recalibrator",
    "ReplicaExists",
    "ReplicaRef",
    "ReplicaAdvisor",
    "ReplicaProfile",
    "RoutingPlan",
    "Selection",
    "SelectionInstance",
    "SelectionReport",
    "ShardServer",
    "SimulatedCluster",
    "StoreConfig",
    "TaxiFleetGenerator",
    "TenantQuotas",
    "TemporalSlicer",
    "TimeseriesStore",
    "TraceRecorder",
    "Workload",
    "WorkloadResult",
    "WorkloadStats",
    "all_encoding_schemes",
    "batch_expected_partitions",
    "branch_and_bound_select",
    "brute_force_select",
    "build_mip",
    "build_replica",
    "build_report",
    "calibrate_encoding",
    "calibrate_environment",
    "cost_model_for",
    "encoding_scheme_by_name",
    "expected_partitions",
    "fit_cost_params",
    "greedy_select",
    "local_search_select",
    "grouped_random_workload",
    "make_cluster",
    "materialize_store",
    "measure_compression_ratio",
    "measure_encoding_ratios",
    "open_store",
    "run_fleet",
    "paper_encoding_schemes",
    "paper_partitioning_schemes",
    "paper_workload",
    "positioned_random_workload",
    "prune_dominated",
    "reduce_workload",
    "simulate_query",
    "simulate_routed_query",
    "small_partitioning_schemes",
    "solve_mip",
    "synthetic_shanghai_taxis",
]

"""Spatio-temporal histograms for result-size (selectivity) estimation.

The paper's cost model predicts how many records a query *scans*; a
storage layer also wants to know how many it will *return* — for memory
budgeting, for choosing between serving a query from replicas vs the
ingest buffer, and for advisor reports.  A classic equi-width 3-D
histogram with uniform-within-cell interpolation does the job: build it
once from a sample, then estimate any range count in O(cells overlapped).
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.geometry import Box3, centroid_range
from repro.workload.query import AnyQuery, GroupedQuery, Query


class Histogram3D:
    """Equi-width (x, y, t) histogram with fractional-overlap estimates."""

    def __init__(self, counts: np.ndarray, universe: Box3, total: int):
        if counts.ndim != 3:
            raise ValueError("counts must be 3-D")
        self.counts = counts.astype(np.float64)
        self.universe = universe
        self.total = int(total)
        self._edges = (
            np.linspace(universe.x_min, universe.x_max, counts.shape[0] + 1),
            np.linspace(universe.y_min, universe.y_max, counts.shape[1] + 1),
            np.linspace(universe.t_min, universe.t_max, counts.shape[2] + 1),
        )

    @staticmethod
    def build(
        dataset: Dataset,
        resolution: tuple[int, int, int] = (16, 16, 16),
        universe: Box3 | None = None,
    ) -> "Histogram3D":
        """Bin a dataset (or a sample of it) into an equi-width grid."""
        if len(dataset) == 0:
            raise ValueError("cannot build a histogram from an empty dataset")
        if min(resolution) < 1:
            raise ValueError("resolution must be >= 1 per axis")
        u = universe or dataset.bounding_box()
        sample = np.stack([
            dataset.column("x"), dataset.column("y"), dataset.column("t"),
        ], axis=1)
        counts, _ = np.histogramdd(
            sample,
            bins=resolution,
            range=[(u.x_min, u.x_max), (u.y_min, u.y_max), (u.t_min, u.t_max)],
        )
        return Histogram3D(counts, u, len(dataset))

    def scaled(self, n_records: float) -> "Histogram3D":
        """The same shape re-normalized to a dataset of ``n_records``
        (estimating the full data from a sample histogram)."""
        if n_records <= 0:
            raise ValueError("n_records must be positive")
        factor = n_records / max(self.total, 1)
        return Histogram3D(self.counts * factor, self.universe, int(n_records))

    # -- estimation ---------------------------------------------------------

    def _axis_overlap(self, axis: int, lo: float, hi: float) -> np.ndarray:
        """Fractional overlap of [lo, hi] with every bin along ``axis``."""
        edges = self._edges[axis]
        left = np.maximum(edges[:-1], lo)
        right = np.minimum(edges[1:], hi)
        width = edges[1] - edges[0]
        if width <= 0:
            # Degenerate axis: the universe is flat here; any query
            # reaching it covers the single coordinate entirely.
            return np.ones(len(edges) - 1)
        return np.clip(right - left, 0.0, width) / width

    def estimate_count(self, box: Box3) -> float:
        """Expected records inside ``box`` (uniform-within-cell model)."""
        fx = self._axis_overlap(0, box.x_min, box.x_max)
        fy = self._axis_overlap(1, box.y_min, box.y_max)
        ft = self._axis_overlap(2, box.t_min, box.t_max)
        return float(np.einsum("i,j,k,ijk->", fx, fy, ft, self.counts))

    def estimate_query(self, query: AnyQuery, rng: np.random.Generator | None = None,
                       samples: int = 64, seed: int = 0) -> float:
        """Expected result size of a query.

        Positioned queries evaluate directly; grouped queries average
        :meth:`estimate_count` over sampled centroid positions.  Grouped
        extents are clamped to the universe first — the same convention
        as :meth:`GroupedQuery.selectivity`, so an over-wide dimension
        behaves as "covers the whole universe" rather than spilling the
        sampled box past the data bounds.  ``seed`` makes the centroid
        sampling reproducible-by-choice; pass ``rng`` to share a
        generator instead.
        """
        if isinstance(query, Query):
            return self.estimate_count(query.box())
        if rng is None:
            rng = np.random.default_rng(seed)
        u = self.universe
        size = (
            min(query.width, u.width),
            min(query.height, u.height),
            min(query.duration, u.duration),
        )
        cr = centroid_range(u, size)
        total = 0.0
        for _ in range(samples):
            center = (
                rng.uniform(cr.x_min, cr.x_max) if cr.width > 0 else cr.x_min,
                rng.uniform(cr.y_min, cr.y_max) if cr.height > 0 else cr.y_min,
                rng.uniform(cr.t_min, cr.t_max) if cr.duration > 0 else cr.t_min,
            )
            total += self.estimate_count(Box3.from_center_size(center, *size))
        return total / samples

    def selectivity(self, box: Box3) -> float:
        """Estimated fraction of the dataset inside ``box``."""
        if self.total == 0:
            return 0.0
        return self.estimate_count(box) / self.total

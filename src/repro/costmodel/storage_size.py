"""Replica storage-size estimation (paper Definition 5 / Section III-A).

``Storage(r)`` is estimated from the compression ratio of the replica's
encoding scheme, measured once on a small sample: "Since compression
ratio is stable in most situations, it can be effectively measured with a
small sample of D."
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.encoding import ROW_BYTES, EncodingScheme, measure_compression_ratio
from repro.partition.base import PartitioningScheme


def measure_encoding_ratios(
    schemes: list[EncodingScheme],
    sample: Dataset,
) -> dict[str, float]:
    """Compression ratio (relative to uncompressed row binary) per scheme,
    measured on a time-sorted sample as stored partitions would be."""
    ordered = sample.sorted_by_time()
    return {s.name: measure_compression_ratio(s, ordered) for s in schemes}


def estimate_replica_storage(
    n_records: float,
    encoding_ratio: float,
    per_partition_overhead_bytes: float = 0.0,
    n_partitions: int = 1,
) -> float:
    """``Storage(r)`` in bytes for ``n_records`` records encoded at
    ``encoding_ratio`` times the row-binary footprint, plus optional fixed
    per-storage-unit overhead (headers, object metadata)."""
    if n_records <= 0:
        raise ValueError("n_records must be positive")
    if encoding_ratio <= 0:
        raise ValueError("encoding_ratio must be positive")
    return n_records * ROW_BYTES * encoding_ratio + per_partition_overhead_bytes * n_partitions

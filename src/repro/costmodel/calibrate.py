"""Calibration of ScanRate and ExtraTime (paper Section V-B).

The paper measures ``Cost(q, p)`` for "5 sets of partitions with each set
containing 20 partitions", where partition sizes are equal within a set
and differ across sets, then fits Eq. 6 by linear regression: the slope
is ``1/ScanRate`` and the intercept is ``ExtraTime``.  This module holds
the environment-agnostic pieces: the measurement plan and the
least-squares fit; the environment-specific measurement runners live in
:mod:`repro.cluster` (simulated clusters) and :mod:`repro.storage`
(local wall-clock).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.costmodel.model import EncodingCostParams

#: Partition sizes (records) of the paper-style measurement plan; five
#: sizes spanning the "hundreds of KB to several MB" storage-unit regime
#: (Section II-B), matching Figure 5's x-axis scale of 10^5 records.  The
#: span must be wide enough for the regression slope to stand above the
#: per-task startup jitter.
DEFAULT_MEASUREMENT_SIZES: tuple[int, ...] = (5_000, 20_000, 50_000, 100_000, 200_000)

#: Mappers per measurement job ("20 mappers with each scanning a
#: partition").
DEFAULT_PARTITIONS_PER_SET: int = 20


@dataclass(frozen=True, slots=True)
class MeasurementPoint:
    """One averaged measurement: a partition size and the mean seconds to
    scan one partition of that size."""

    partition_records: int
    seconds: float


@dataclass(frozen=True)
class CalibrationResult:
    """A fitted cost model for one (environment, encoding) pair."""

    encoding_name: str
    params: EncodingCostParams
    points: tuple[MeasurementPoint, ...]
    r_squared: float

    def predicted(self, partition_records: float) -> float:
        """Eq. 6 with the fitted parameters."""
        return self.params.partition_cost(partition_records)

    def max_relative_error(self) -> float:
        """Worst fit error over the measured points — the paper's evidence
        that 'Cost(q, p) is well-fitted by Equation 6'."""
        worst = 0.0
        for p in self.points:
            pred = self.predicted(p.partition_records)
            worst = max(worst, abs(pred - p.seconds) / max(p.seconds, 1e-12))
        return worst


def fit_cost_params(points: list[MeasurementPoint]) -> CalibrationResult:
    """Least-squares fit of Eq. 6 to measurement points.

    Returns a :class:`CalibrationResult` with ``scan_rate = 1/slope`` and
    ``extra_time = intercept``.  Raises ``ValueError`` when the points
    cannot identify both parameters (fewer than two distinct sizes) or the
    fitted slope is non-positive (measurements inconsistent with a scan
    model).
    """
    if len(points) < 2:
        raise ValueError("need at least two measurement points to fit Eq. 6")
    sizes = np.array([p.partition_records for p in points], dtype=np.float64)
    times = np.array([p.seconds for p in points], dtype=np.float64)
    if np.unique(sizes).size < 2:
        raise ValueError("measurement points must span at least two partition sizes")
    design = np.stack([sizes, np.ones_like(sizes)], axis=1)
    (slope, intercept), *_ = np.linalg.lstsq(design, times, rcond=None)
    if slope <= 0:
        raise ValueError(
            f"fitted 1/ScanRate is non-positive ({slope:.3g}); "
            "measurements do not follow a linear scan model"
        )
    intercept = max(float(intercept), 0.0)
    predictions = design @ np.array([slope, intercept])
    ss_res = float(np.sum((times - predictions) ** 2))
    ss_tot = float(np.sum((times - times.mean()) ** 2))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return CalibrationResult(
        encoding_name="",
        params=EncodingCostParams(scan_rate=1.0 / float(slope), extra_time=intercept),
        points=tuple(points),
        r_squared=r_squared,
    )


def calibrate_encoding(
    encoding_name: str,
    measure_partition_seconds,
    sizes: tuple[int, ...] = DEFAULT_MEASUREMENT_SIZES,
    partitions_per_set: int = DEFAULT_PARTITIONS_PER_SET,
) -> CalibrationResult:
    """Run the paper's measurement procedure against any backend.

    ``measure_partition_seconds(encoding_name, partition_records,
    partitions_per_set)`` must return the *average* seconds to process one
    partition — e.g. by launching a map-only job with
    ``partitions_per_set`` mappers and averaging their task times.
    """
    points = [
        MeasurementPoint(size, float(measure_partition_seconds(
            encoding_name, size, partitions_per_set)))
        for size in sizes
    ]
    fit = fit_cost_params(points)
    return CalibrationResult(
        encoding_name=encoding_name,
        params=fit.params,
        points=fit.points,
        r_squared=fit.r_squared,
    )
